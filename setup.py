"""Legacy setup shim.

Kept so ``pip install -e . --no-use-pep517`` works on offline machines
that lack the ``wheel`` package; all real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
