"""One validator for every committed ``BENCH_*.json`` artifact.

Each benchmark harness used to carry its own ``validate_results`` copy;
five near-identical validators drifted independently and CI imported
each one by path.  This module is the single source of truth:
:func:`validate_bench` dispatches on the document's ``schema`` field and
enforces the same invariants the per-bench validators did — field
tables, non-negative measurements, ``match`` flags, summary keys and
the cross-field consistency checks (serve request accounting, stream
tail bar, checkpoint round-trips).

The ``benchmarks/bench_*.py`` modules keep their public
``validate_results`` names (CI and tests import them) but delegate
here, so a schema change lands in exactly one place.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

#: bench_stream: appended tail may be at most this fraction of the trace.
STREAM_TAIL_BAR = 0.01

#: bench_parallel: the only engines that bench measures.
PARALLEL_ENGINES = ("vectorized", "parallel", "parallel-shm")

#: bench_serve latency-block fields.
SERVE_PHASE_FIELDS = ("count", "p50_s", "p95_s", "p99_s", "max_s")

#: bench_serve server-counter fields.
SERVE_SERVER_FIELDS = (
    "requests_total",
    "computations_total",
    "dedup_hits_total",
    "store_hits_total",
    "store_misses_total",
)

#: bench_stream checkpoint fields.
STREAM_CHECKPOINT_FIELDS = ("bytes", "encode_s", "decode_s", "roundtrip_ok")

_POSTLUDE_ROW = {
    "engine": str,
    "trace": str,
    "N": int,
    "N_prime": int,
    "levels": int,
    "wall_s": float,
    "peak_mem": int,
    "match": bool,
}

_PRELUDE_ROW = {
    "pipeline": str,
    "trace": str,
    "N": int,
    "N_prime": int,
    "strip_s": float,
    "zerosets_s": float,
    "mrct_s": float,
    "postlude_s": float,
    "total_s": float,
    "match": bool,
}

_PRELUDE_STAGES = ("strip_s", "zerosets_s", "mrct_s", "postlude_s")

_STORE_ROW = {
    "trace": str,
    "N": int,
    "N_prime": int,
    "engine": str,
    "cold_wall_s": float,
    "warm_wall_s": float,
    "speedup": float,
    "store_bytes": int,
    "warm_hits": int,
    "match": bool,
}

_PARALLEL_ROW = {
    "engine": str,
    "trace": str,
    "N": int,
    "N_prime": int,
    "wall_s": float,
    "match": bool,
}


def _check_header(document: Mapping, repeats: bool = True) -> None:
    """The common ``python``/``repeats``/``platform``/``numpy`` header."""
    fields: Tuple[Tuple[str, type], ...] = (("python", str), ("platform", str))
    if repeats:
        fields = (("python", str), ("repeats", int), ("platform", str))
    for key, kind in fields:
        if not isinstance(document.get(key), kind):
            raise ValueError(f"missing or mistyped field {key!r}")
    if not isinstance(document.get("numpy"), (str, type(None))):
        raise ValueError("field 'numpy' must be a string or null")


def _check_rows(document: Mapping, row_fields: Dict[str, type]) -> list:
    """Row-shaped ``results``: exact field set, types, non-negative walls."""
    results = document.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("'results' must be a non-empty list")
    for row in results:
        if not isinstance(row, dict) or set(row) != set(row_fields):
            raise ValueError(
                f"result fields {sorted(row) if isinstance(row, dict) else row} "
                f"!= schema"
            )
        for field, kind in row_fields.items():
            value = row[field]
            if kind is float:
                ok = isinstance(value, (int, float)) and not isinstance(value, bool)
            elif kind is int:
                ok = isinstance(value, int) and not isinstance(value, bool)
            else:
                ok = isinstance(value, kind)
            if not ok:
                raise ValueError(f"result field {field!r} must be {kind.__name__}")
        if not row["match"]:
            raise ValueError(
                f"row for {row['trace']!r} diverged from its reference "
                f"(match is false)"
            )
    return results


def _check_summary_keys(summary: object, keys: Tuple[str, ...]) -> None:
    if not isinstance(summary, dict):
        raise ValueError("'summary' is required")
    for key in keys:
        if key not in summary:
            raise ValueError(f"summary missing {key!r}")


def _validate_postlude(document: Mapping) -> None:
    _check_header(document)
    for row in _check_rows(document, _POSTLUDE_ROW):
        if row["wall_s"] < 0 or row["N"] < 0 or row["peak_mem"] < 0:
            raise ValueError("negative measurement")
    summary = document.get("summary")
    if summary is not None:
        _check_summary_keys(
            summary,
            (
                "largest_synthetic_trace",
                "serial_wall_s",
                "vectorized_wall_s",
                "vectorized_speedup",
            ),
        )


def _validate_prelude(document: Mapping) -> None:
    _check_header(document)
    for row in _check_rows(document, _PRELUDE_ROW):
        if row["pipeline"] not in ("python", "fast"):
            raise ValueError(f"unknown pipeline {row['pipeline']!r}")
        if any(row[stage] < 0 for stage in _PRELUDE_STAGES) or row["N"] < 0:
            raise ValueError("negative measurement")
    summary = document.get("summary")
    if summary is not None:
        _check_summary_keys(summary, ("target_trace", "speedups"))
        if not isinstance(summary["speedups"], dict):
            raise ValueError("summary 'speedups' must be a mapping")


def _validate_store(document: Mapping) -> None:
    _check_header(document)
    for row in _check_rows(document, _STORE_ROW):
        if row["cold_wall_s"] < 0 or row["warm_wall_s"] < 0:
            raise ValueError("negative measurement")
        if row["warm_hits"] < 1:
            raise ValueError(
                f"warm pass on {row['trace']!r} never hit the store"
            )
    _check_summary_keys(
        document.get("summary"),
        ("min_speedup", "max_speedup", "geomean_speedup", "threshold", "pass"),
    )


def _validate_parallel(document: Mapping) -> None:
    _check_header(document)
    for row in _check_rows(document, _PARALLEL_ROW):
        if row["wall_s"] < 0 or row["N"] < 0:
            raise ValueError("negative measurement")
        if row["engine"] not in PARALLEL_ENGINES:
            raise ValueError(f"unexpected engine {row['engine']!r}")
    warm = document.get("warm_start")
    if not isinstance(warm, dict):
        raise ValueError("'warm_start' must be present")
    for key, kind in (
        ("trace", str),
        ("matrix_bytes", int),
        ("decode_peak_bytes", int),
        ("mmap_hits", int),
        ("zero_copy", bool),
    ):
        if not isinstance(warm.get(key), kind):
            raise ValueError(f"warm_start field {key!r} must be {kind.__name__}")
    _check_summary_keys(
        document.get("summary"),
        (
            "largest_trace",
            "N",
            "parallel_wall_s",
            "parallel_shm_wall_s",
            "shm_speedup",
        ),
    )


def _validate_serve(document: Mapping) -> None:
    _check_header(document, repeats=False)
    config = document.get("config")
    if not isinstance(config, dict):
        raise ValueError("'config' is required")
    for key in ("total_requests", "unique_requests", "client_threads", "workers"):
        value = config.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ValueError(f"config field {key!r} must be a positive int")
    if not isinstance(config.get("pool"), str):
        raise ValueError("config field 'pool' must be a string")
    results = document.get("results")
    if not isinstance(results, dict):
        raise ValueError("'results' is required")
    for phase in ("cold", "warm"):
        block = results.get(phase)
        if not isinstance(block, dict) or set(block) != set(SERVE_PHASE_FIELDS):
            raise ValueError(f"results.{phase} fields != {SERVE_PHASE_FIELDS}")
        for key in SERVE_PHASE_FIELDS:
            value = block[key]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"results.{phase}.{key} must be numeric")
            if value < 0:
                raise ValueError(f"results.{phase}.{key} is negative")
    server = results.get("server")
    if not isinstance(server, dict) or set(server) != set(SERVE_SERVER_FIELDS):
        raise ValueError(f"results.server fields != {SERVE_SERVER_FIELDS}")
    for key in SERVE_SERVER_FIELDS:
        value = server[key]
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"results.server.{key} must be a non-negative int")
    total = config["total_requests"]
    if server["requests_total"] != total:
        raise ValueError(
            f"server answered {server['requests_total']} requests, "
            f"expected {total}"
        )
    if server["store_hits_total"] < 1:
        raise ValueError("the warm burst never hit the artifact store")
    covered = results["warm"]["count"] + results["cold"]["count"]
    if covered + results.get("errors", 0) < total:
        raise ValueError("latency samples + errors do not cover every request")
    summary = document.get("summary")
    _check_summary_keys(summary, ("warm_p99_s", "threshold_s", "errors", "pass"))
    if summary["errors"] != 0:
        raise ValueError(f"{summary['errors']} requests failed or diverged")


def _validate_stream(document: Mapping) -> None:
    _check_header(document, repeats=False)
    config = document.get("config")
    if not isinstance(config, dict):
        raise ValueError("'config' is required")
    for key in ("total_refs", "unique_refs", "tail_refs", "repeats", "address_bits"):
        value = config.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ValueError(f"config field {key!r} must be a positive int")
    if not isinstance(config.get("cold_engine"), str):
        raise ValueError("config field 'cold_engine' must be a string")
    if not isinstance(config.get("budgets"), list) or not config["budgets"]:
        raise ValueError("config field 'budgets' must be a non-empty list")
    tail_bar = config["total_refs"] * STREAM_TAIL_BAR
    if config["tail_refs"] > max(1, tail_bar):
        raise ValueError(
            f"appended tail of {config['tail_refs']} refs exceeds "
            f"{100 * STREAM_TAIL_BAR:.0f}% of the "
            f"{config['total_refs']}-ref trace"
        )
    results = document.get("results")
    if not isinstance(results, dict):
        raise ValueError("'results' is required")
    for key in ("cold_s", "warm_s", "speedup"):
        value = results.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"results.{key} must be numeric")
        if value < 0:
            raise ValueError(f"results.{key} is negative")
    for key in ("cold_samples_s", "warm_samples_s"):
        samples = results.get(key)
        if not isinstance(samples, list) or len(samples) != config["repeats"]:
            raise ValueError(f"results.{key} must list one sample per repeat")
    checkpoint = results.get("checkpoint")
    if (
        not isinstance(checkpoint, dict)
        or set(checkpoint) != set(STREAM_CHECKPOINT_FIELDS)
    ):
        raise ValueError(
            f"results.checkpoint fields != {STREAM_CHECKPOINT_FIELDS}"
        )
    if checkpoint["roundtrip_ok"] is not True:
        raise ValueError("checkpoint round-trip diverged")
    summary = document.get("summary")
    _check_summary_keys(summary, ("speedup", "floor", "errors", "pass"))
    if summary["errors"] != 0:
        raise ValueError(f"{summary['errors']} warm results diverged from cold")


#: schema identifier -> validator.  The registry CI round-trips against.
BENCH_SCHEMAS: Dict[str, object] = {
    "repro-bench-postlude/1": _validate_postlude,
    "repro-bench-prelude/1": _validate_prelude,
    "repro-bench-store/1": _validate_store,
    "repro-bench-parallel/1": _validate_parallel,
    "repro-bench-serve/1": _validate_serve,
    "repro-bench-stream/1": _validate_stream,
}


def validate_bench(document: object, expect: Optional[str] = None) -> str:
    """Validate any committed bench document; returns its schema id.

    Args:
        document: a parsed ``BENCH_*.json`` payload.
        expect: when given, the document's ``schema`` must equal it
            (harness delegates pass their own schema so a renamed file
            cannot silently validate under the wrong table).

    Raises:
        ValueError: unknown schema, schema mismatch, or any invariant
            the per-bench validators enforced.
    """
    if not isinstance(document, dict):
        raise ValueError("bench document must be a JSON object")
    schema = document.get("schema")
    if expect is not None and schema != expect:
        raise ValueError(f"schema must be {expect!r}")
    if schema not in BENCH_SCHEMAS:
        raise ValueError(
            f"unknown bench schema {schema!r}; expected one of "
            f"{sorted(BENCH_SCHEMAS)}"
        )
    BENCH_SCHEMAS[schema](document)
    return schema
