"""Dependency-aware sweep execution with retries and quarantine.

:class:`SweepScheduler` walks a :class:`repro.sweep.planner.Plan` in
topological order under bounded worker concurrency.  Three backends
mirror the serve pool's kinds (and the thread/inline kinds literally
run on :class:`repro.serve.pool.BoundedPool`):

* ``process`` — the default: each cell attempt runs in its own
  ``multiprocessing.Process``, so a hung cell can actually be *killed*
  at its deadline (an executor pool cannot terminate one task).
* ``thread`` — cells run on a bounded thread pool; a deadline marks the
  attempt failed but the thread is abandoned, not killed (documented
  trade-off; used where process startup is too heavy for the matrix).
* ``inline`` — cells run synchronously in plan order; fully
  deterministic, no timeout enforcement.  The test battery's default.

Failure story: an attempt that raises (or times out) is retried with
exponential backoff up to ``retries`` times; a cell that exhausts its
retries is **quarantined** — recorded with its error and the partial
manifest of the killed attempt — and its transitive dependents are
marked ``skipped``, while unrelated sibling cells keep running.

Each successful cell carries a validated ``repro-run-manifest/1``
manifest produced *inside* the worker by the same recorder machinery as
``repro profile``, so a sweep is also a profiling pass over the matrix.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sweep.planner import Cell, Plan

#: Scheduler backends (mirrors :data:`repro.serve.pool.POOL_KINDS`).
SCHEDULER_KINDS = ("process", "thread", "inline")

#: Terminal cell statuses.
CELL_STATUSES = ("ok", "quarantined", "skipped")

#: Seconds between scheduler poll iterations.
POLL_INTERVAL_S = 0.02


def resolve_trace(entry: str, scale: str = "tiny", default_seed: int = 0):
    """Materialize one trace-axis entry into a :class:`repro.trace.Trace`.

    Workload entries run (and cache) the named PowerStone kernel at
    ``scale`` and take its data trace; synthetic entries call the
    deterministic generators with every parameter (seed included)
    pinned by the entry itself.  Names follow the benchmark harnesses'
    conventions (``loop-1024x100``, ``zipf-4000-300``...) so sweep
    cells line up with committed ``BENCH_*.json`` baseline rows.
    """
    from repro.sweep.spec import parse_trace_entry
    from repro.trace.synthetic import (
        interleaved_trace,
        loop_nest_trace,
        markov_trace,
        random_trace,
        zipf_trace,
    )

    descriptor = parse_trace_entry(entry, default_seed)
    kind = descriptor["kind"]
    if kind == "workload":
        from repro.workloads.registry import run_workload_by_name

        return run_workload_by_name(descriptor["name"], scale=scale).data_trace
    if kind == "loop":
        trace = loop_nest_trace(descriptor["footprint"], descriptor["iterations"])
        trace.name = f"loop-{descriptor['footprint']}x{descriptor['iterations']}"
        return trace
    if kind == "loop-mix":
        footprint = descriptor["footprint"]
        iterations = descriptor["iterations"]
        regions = [
            loop_nest_trace(footprint, iterations, start=region << 13)
            for region in range(4)
        ]
        return interleaved_trace(
            regions, name=f"loop-mix-{footprint}x4x{iterations}"
        )
    if kind == "zipf":
        trace = zipf_trace(
            descriptor["n"], descriptor["unique"], seed=descriptor["seed"]
        )
        trace.name = f"zipf-{descriptor['n']}-{descriptor['unique']}"
        return trace
    if kind == "markov":
        trace = markov_trace(
            descriptor["n"],
            descriptor["unique"],
            locality=descriptor["locality"],
            seed=descriptor["seed"],
        )
        trace.name = f"markov-{descriptor['n']}-{descriptor['unique']}"
        return trace
    # random
    trace = random_trace(
        descriptor["n"], footprint=descriptor["footprint"], seed=descriptor["seed"]
    )
    trace.name = f"random-{descriptor['n']}-{descriptor['footprint']}"
    return trace


def run_cell(coords: Dict[str, object], context: Dict[str, object]) -> Dict:
    """Execute one sweep cell end to end; returns its record payload.

    This is the function worker processes execute; it must stay
    module-level (picklable) and self-contained: it resolves its own
    trace, builds its own recorder and store, and returns only
    JSON-shaped data — the same isolation contract as
    :func:`repro.serve.pool.execute_wire_request`.
    """
    from repro.core.request import ExplorationRequest, explore_request
    from repro.obs import Recorder, RunManifest
    from repro.scenario.spec import ScenarioSpec

    trace = resolve_trace(
        str(coords["trace"]),
        scale=str(context.get("scale", "tiny")),
        default_seed=int(context.get("seed", 0)),
    )
    store = None
    store_root = context.get("store_root")
    if store_root is not None:
        from repro.store import ArtifactStore

        store = ArtifactStore(str(store_root))
    scenario = ScenarioSpec(
        engine=str(coords["engine"]),
        prelude=str(coords["prelude"]),
        policy=str(coords["policy"]),
        max_depth=context.get("max_depth"),
        l2_depth=context.get("l2_depth") if int(coords["level"]) == 2 else None,
    )
    recorder = Recorder()
    request = ExplorationRequest.single(
        trace,
        budgets=tuple(context.get("budgets", ())),
        percents=tuple(context.get("percents", ())),
        scenario=scenario,
        recorder=recorder,
        store=store,
    )
    with recorder.phase("sweep:cell"):
        report = explore_request(request)
    manifest = RunManifest.from_recorder(
        recorder,
        engine=report.engine,
        requested_engine=scenario.engine,
        options={
            "prelude": scenario.prelude,
            "policy": scenario.policy,
            "warmth": str(coords["warmth"]),
            "level": int(coords["level"]),
        },
        trace={
            "name": trace.name,
            "n": len(trace),
            "n_unique": trace.unique_count(),
            "address_bits": trace.address_bits,
        },
    )
    return {
        "trace_name": trace.name,
        "engine": report.engine,
        "wall_s": recorder.wall_s,
        "report": report.to_json_dict(),
        "manifest": manifest.to_json_dict(),
    }


@dataclass
class CellRecord:
    """The terminal outcome of one planned cell.

    Attributes:
        cell_id: the cell's plan identity.
        coords: the cell's axis coordinates.
        status: one of :data:`CELL_STATUSES`.
        attempts: execution attempts made (0 for skipped cells).
        timeouts: attempts that hit the deadline and were killed.
        wall_s: wall time of the successful attempt (or the last one).
        trace_name: resolved trace name (``ok`` cells only).
        engine: resolved concrete engine (``ok`` cells only).
        report: the cell's :meth:`ExplorationReport.to_json_dict` payload.
        manifest: the cell's ``repro-run-manifest/1`` document — for a
            quarantined timeout this is the scheduler-side partial
            manifest covering the killed attempt.
        error: the last failure message (non-``ok`` cells only).
    """

    cell_id: str
    coords: Dict[str, object]
    status: str = "ok"
    attempts: int = 0
    timeouts: int = 0
    wall_s: float = 0.0
    trace_name: Optional[str] = None
    engine: Optional[str] = None
    report: Optional[Dict] = None
    manifest: Optional[Dict] = None
    error: Optional[str] = None

    def to_json_dict(self) -> Dict:
        document: Dict[str, object] = {
            "id": self.cell_id,
            "coords": dict(self.coords),
            "status": self.status,
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "wall_s": self.wall_s,
        }
        if self.trace_name is not None:
            document["trace_name"] = self.trace_name
        if self.engine is not None:
            document["engine"] = self.engine
        if self.report is not None:
            document["report"] = self.report
        if self.manifest is not None:
            document["manifest"] = self.manifest
        if self.error is not None:
            document["error"] = self.error
        return document


@dataclass
class SweepRun:
    """Everything one scheduler run produced."""

    records: List[CellRecord]
    wall_s: float
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def quarantined(self) -> List[CellRecord]:
        return [r for r in self.records if r.status == "quarantined"]

    @property
    def skipped(self) -> List[CellRecord]:
        return [r for r in self.records if r.status == "skipped"]


def _timeout_manifest(
    coords: Dict[str, object], elapsed_s: float
) -> Dict[str, object]:
    """A minimal valid manifest for an attempt the scheduler had to kill.

    The worker died without reporting, so this covers what the
    scheduler itself observed: one phase spanning the killed attempt,
    with a ``sweep_timeouts`` counter marking it partial.
    """
    from repro.obs.manifest import MANIFEST_SCHEMA, environment_info

    return {
        "schema": MANIFEST_SCHEMA,
        "engine": str(coords["engine"]),
        "requested_engine": str(coords["engine"]),
        "options": {
            "prelude": str(coords["prelude"]),
            "policy": str(coords["policy"]),
            "warmth": str(coords["warmth"]),
            "level": int(coords["level"]),
        },
        "trace": {
            "name": str(coords["trace"]),
            "n": 0,
            "n_unique": None,
            "address_bits": 0,
        },
        "wall_s": elapsed_s,
        "phases": [
            {
                "name": "sweep:cell-timeout",
                "duration_s": elapsed_s,
                "counters": {"sweep_timeouts": 1},
                "children": [],
            }
        ],
        "counters": {"sweep_timeouts": 1},
        "memory": {},
        "environment": environment_info(),
    }


def _process_entry(conn, execute, coords, context) -> None:
    """Worker-process wrapper: ship the outcome (or the error) back."""
    try:
        record = execute(coords, context)
        conn.send(("ok", record))
    except BaseException as exc:  # noqa: BLE001 — report, don't crash silently
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class _Attempt:
    """One in-flight execution of a cell (process or pool future)."""

    def __init__(self, cell: Cell, attempt: int, deadline: Optional[float]):
        self.cell = cell
        self.attempt = attempt
        self.started = time.monotonic()
        self.deadline = deadline
        self.process = None
        self.conn = None
        self.future = None

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def timed_out(self) -> bool:
        return self.deadline is not None and time.monotonic() > self.deadline


class SweepScheduler:
    """Run a plan's cells under bounded concurrency (see module doc).

    Args:
        plan: the validated cell DAG.
        kind: one of :data:`SCHEDULER_KINDS`.
        workers: concurrent cell bound (default: the spec's).
        timeout_s: per-attempt deadline (default: the spec's).
        retries: re-executions after a failed attempt (default: spec's).
        backoff_s: base of the exponential retry backoff (default: spec's).
        store_root: artifact-store directory shared by every cell; cold
            cells populate it, their warm dependents hit it.  ``None``
            disables warm-starting (warm cells then measure the
            in-process caches only).
        execute: override of the cell executable — tests inject failing
            and hanging functions here.  Must accept ``(coords,
            context)`` and return a record payload dict.
        sleep: injectable clock for the backoff/poll waits.
    """

    def __init__(
        self,
        plan: Plan,
        kind: str = "process",
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        backoff_s: Optional[float] = None,
        store_root: Optional[str] = None,
        execute: Optional[Callable[[Dict, Dict], Dict]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if kind not in SCHEDULER_KINDS:
            raise ValueError(
                f"kind must be one of {SCHEDULER_KINDS}, got {kind!r}"
            )
        spec = plan.spec
        self.plan = plan
        self.kind = kind
        self.workers = spec.workers if workers is None else workers
        self.timeout_s = spec.timeout_s if timeout_s is None else timeout_s
        self.retries = spec.retries if retries is None else retries
        self.backoff_s = spec.backoff_s if backoff_s is None else backoff_s
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self.store_root = store_root
        self._execute = execute or run_cell
        self._sleep = sleep
        self.context: Dict[str, object] = {
            "store_root": store_root,
            "budgets": list(spec.budgets),
            "percents": list(spec.percents),
            "max_depth": spec.max_depth,
            "l2_depth": spec.l2_depth,
            "scale": spec.scale,
            "seed": spec.seed,
        }

    # -- attempt lifecycles -------------------------------------------------

    def _launch(self, cell: Cell, attempt: int) -> _Attempt:
        deadline = (
            time.monotonic() + self.timeout_s
            if self.kind == "process" or self.kind == "thread"
            else None
        )
        running = _Attempt(cell, attempt, deadline)
        if self.kind == "process":
            recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
            process = multiprocessing.Process(
                target=_process_entry,
                args=(send_conn, self._execute, cell.coords(), self.context),
                daemon=True,
            )
            process.start()
            send_conn.close()
            running.process = process
            running.conn = recv_conn
        else:
            running.future = self._pool.submit(
                self._execute, cell.coords(), self.context
            )
        return running

    def _outcome(self, running: _Attempt) -> Optional[Tuple[str, object]]:
        """Poll one attempt: ``None`` while it runs, else its outcome."""
        if self.kind == "process":
            if running.conn.poll():
                try:
                    outcome = running.conn.recv()
                except EOFError:
                    outcome = ("error", "worker exited without reporting")
                running.process.join()
                running.conn.close()
                return outcome
            if not running.process.is_alive():
                running.process.join()
                running.conn.close()
                return ("error", "worker died without reporting")
            if running.timed_out():
                running.process.terminate()
                running.process.join(1.0)
                if running.process.is_alive():
                    running.process.kill()
                    running.process.join()
                running.conn.close()
                return ("timeout", f"killed after {self.timeout_s:.3f}s")
            return None
        if running.future.done():
            try:
                return ("ok", running.future.result())
            except BaseException as exc:  # noqa: BLE001
                return ("error", f"{type(exc).__name__}: {exc}")
        if running.timed_out():
            # Threads cannot be killed; record the deadline and move on.
            return ("timeout", f"abandoned after {self.timeout_s:.3f}s")
        return None

    # -- the scheduling loop ------------------------------------------------

    def run(self) -> SweepRun:
        """Execute every cell; returns the per-cell records and counters."""
        start = time.monotonic()
        order = self.plan.topological_order()
        cells = {cell.cell_id: cell for cell in self.plan.cells}
        records = {
            cell_id: CellRecord(cell_id=cell_id, coords=cells[cell_id].coords())
            for cell_id in order
        }
        waiting: Dict[str, set] = {
            cell_id: set(self.plan.dependencies(cells[cell_id]))
            for cell_id in order
        }
        ready: List[str] = [c for c in order if not waiting[c]]
        for cell_id in ready:
            del waiting[cell_id]
        backoff: List[Tuple[float, str, int]] = []  # (due, cell_id, attempt)
        running: List[_Attempt] = []
        counters = {
            "sweep_cells_total": len(order),
            "sweep_cells_ok": 0,
            "sweep_cells_quarantined": 0,
            "sweep_cells_skipped": 0,
            "sweep_attempts": 0,
            "sweep_retries": 0,
            "sweep_timeouts": 0,
        }

        self._pool = None
        if self.kind in ("thread", "inline"):
            from repro.serve.pool import BoundedPool

            self._pool = BoundedPool(
                workers=self.workers,
                kind=self.kind,
                thread_name_prefix="repro-sweep",
            )

        def complete_ok(record: CellRecord, payload: Dict) -> None:
            record.status = "ok"
            record.trace_name = payload.get("trace_name")
            record.engine = payload.get("engine")
            record.wall_s = float(payload.get("wall_s", 0.0))
            record.report = payload.get("report")
            record.manifest = payload.get("manifest")
            counters["sweep_cells_ok"] += 1
            for cell_id, deps in waiting.items():
                deps.discard(record.cell_id)
            newly_ready = [
                cell_id for cell_id, deps in waiting.items() if not deps
            ]
            for cell_id in sorted(newly_ready, key=order.index):
                del waiting[cell_id]
                ready.append(cell_id)

        def skip_dependents(blocked_by: str) -> None:
            frontier = {blocked_by}
            while True:
                downstream = [
                    cell_id
                    for cell_id in list(waiting)
                    if set(self.plan.dependencies(cells[cell_id])) & frontier
                ]
                if not downstream:
                    return
                for cell_id in downstream:
                    del waiting[cell_id]
                    record = records[cell_id]
                    record.status = "skipped"
                    record.error = f"dependency {blocked_by!r} was quarantined"
                    counters["sweep_cells_skipped"] += 1
                    frontier.add(cell_id)

        def complete_failure(
            record: CellRecord,
            attempt: int,
            kind: str,
            message: str,
            elapsed: float,
        ) -> None:
            if kind == "timeout":
                record.timeouts += 1
                counters["sweep_timeouts"] += 1
                record.manifest = _timeout_manifest(record.coords, elapsed)
            record.error = message
            record.wall_s = elapsed
            if attempt <= self.retries:
                counters["sweep_retries"] += 1
                due = time.monotonic() + self.backoff_s * (2 ** (attempt - 1))
                backoff.append((due, record.cell_id, attempt + 1))
            else:
                record.status = "quarantined"
                counters["sweep_cells_quarantined"] += 1
                skip_dependents(record.cell_id)

        try:
            while ready or backoff or running or waiting:
                progressed = False
                now = time.monotonic()
                due = [entry for entry in backoff if entry[0] <= now]
                for entry in due:
                    backoff.remove(entry)
                    ready.append(entry[1])
                    records[entry[1]].attempts = entry[2] - 1
                while ready and len(running) < self.workers:
                    cell_id = ready.pop(0)
                    record = records[cell_id]
                    record.attempts += 1
                    counters["sweep_attempts"] += 1
                    running.append(self._launch(cells[cell_id], record.attempts))
                    progressed = True
                for attempt in list(running):
                    outcome = self._outcome(attempt)
                    if outcome is None:
                        continue
                    running.remove(attempt)
                    progressed = True
                    record = records[attempt.cell.cell_id]
                    status, payload = outcome
                    if status == "ok":
                        complete_ok(record, payload)
                    else:
                        complete_failure(
                            record,
                            record.attempts,
                            status,
                            str(payload),
                            attempt.elapsed,
                        )
                if waiting and not (ready or backoff or running):
                    # Should be unreachable: the plan is acyclic, so a
                    # stall means a dependency record leaked. Fail loudly.
                    stuck = sorted(waiting)
                    raise RuntimeError(f"scheduler stalled on cells {stuck}")
                if not progressed and (running or backoff):
                    self._sleep(POLL_INTERVAL_S)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        return SweepRun(
            records=[records[cell_id] for cell_id in order],
            wall_s=time.monotonic() - start,
            counters=counters,
        )


def run_sweep(
    plan: Plan,
    kind: str = "process",
    store_root: Optional[str] = None,
    baseline_dir: Optional[str] = None,
    **scheduler_kwargs: object,
) -> Dict:
    """Plan-to-report convenience: schedule, execute, aggregate.

    Returns the validated ``repro-sweep-report/1`` document.
    """
    from repro.sweep.report import build_report

    scheduler = SweepScheduler(
        plan, kind=kind, store_root=store_root, **scheduler_kwargs
    )
    run = scheduler.run()
    return build_report(plan, run, baseline_dir=baseline_dir)
