"""The declarative sweep spec: one YAML document describing a matrix.

A sweep spec names *what* to run (the axes: traces x engines x preludes
x store warmth x replacement policies x hierarchy levels), *at which
budgets*, and *how* (worker concurrency, per-cell timeout, retry count,
baseline files and the regression tolerance).  Parsing is strict in the
same way the serve wire protocol is: unknown fields anywhere in the
document are rejected loudly, so a typo'd axis name can never silently
shrink the matrix.

Document layout (schema ``repro-sweep-spec/1``)::

    schema: repro-sweep-spec/1
    name: quick
    seed: 0                    # folded into the plan fingerprint; the
                               # default seed for synthetic traces
    scale: tiny                # workload build scale (tiny/small/...)
    axes:
      traces: [crc, fir]       # workload kernels or synthetic forms
      engines: [serial, vectorized]
      preludes: [fast]         # auto | fast | python
      warmth: [cold, warm]     # warm cells depend on their cold producer
      policies: [lru]          # any repro.core.engines.policy_names()
      levels: [1]              # 1 = single level, 2 = L1+L2 (l2_depth)
    budgets: [0, 8]
    percents: []               # percent-of-max-misses budgets
    max_depth: 64              # optional depth bound (power of two)
    l2_depth: 32               # depth bound for level-2 cells
    include:                   # extra cells outside the product
      - {trace: crc, engine: serial, prelude: python, warmth: cold}
    exclude:                   # drop product cells by subset match
      - {engine: streaming, trace: fir}
    execution:
      workers: 2
      timeout_s: 120.0
      retries: 1
      backoff_s: 0.25
    report:
      tolerance: 1.0           # flag cells slower than (1+t) x baseline
      baselines: [BENCH_postlude.json]

Synthetic trace forms (deterministic; ``<seed>`` may be omitted to use
the spec's ``seed``)::

    loop:<footprint>x<iterations>
    loop-mix:<footprint>x<iterations>       # four interleaved loop nests
    zipf:<n>:<unique>[:<seed>]
    markov:<n>:<unique>[:<locality>[:<seed>]]
    random:<n>:<footprint>[:<seed>]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import engines as _engines

#: Spec document schema identifier.
SPEC_SCHEMA = "repro-sweep-spec/1"

#: Store-warmth axis domain: ``warm`` cells depend on their ``cold``
#: producer and run against the store the producer populated.
WARMTH = ("cold", "warm")

#: Hierarchy-level axis domain (2 = explore an L2 behind the L1 winner).
LEVELS = (1, 2)

#: The axis names an include/exclude rule may constrain, in canonical
#: (cell-id) order.
AXIS_NAMES = ("trace", "engine", "prelude", "warmth", "policy", "level")

#: Top-level fields of a spec document.
_TOP_FIELDS = (
    "schema",
    "name",
    "seed",
    "scale",
    "axes",
    "budgets",
    "percents",
    "max_depth",
    "l2_depth",
    "include",
    "exclude",
    "execution",
    "report",
)

_AXES_FIELDS = ("traces", "engines", "preludes", "warmth", "policies", "levels")
_EXECUTION_FIELDS = ("workers", "timeout_s", "retries", "backoff_s")
_REPORT_FIELDS = ("tolerance", "baselines")

#: Synthetic generator prefixes understood by :func:`parse_trace_entry`.
SYNTHETIC_KINDS = ("loop", "loop-mix", "zipf", "markov", "random")


class SweepSpecError(ValueError):
    """A sweep spec document failed validation."""


def _require_dict(value: object, what: str) -> Dict:
    if not isinstance(value, dict):
        raise SweepSpecError(f"{what} must be a mapping")
    return value


def _reject_unknown(document: Dict, allowed: Sequence[str], what: str) -> None:
    unknown = set(document) - set(allowed)
    if unknown:
        raise SweepSpecError(f"{what}: unknown fields {sorted(unknown)}")


def _require_str(value: object, what: str) -> str:
    if not isinstance(value, str) or not value:
        raise SweepSpecError(f"{what} must be a non-empty string")
    return value


def _require_int(value: object, what: str, minimum: Optional[int] = None) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise SweepSpecError(f"{what} must be an integer")
    if minimum is not None and value < minimum:
        raise SweepSpecError(f"{what} must be >= {minimum}, got {value}")
    return value


def _require_number(
    value: object, what: str, minimum: Optional[float] = None
) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SweepSpecError(f"{what} must be a number")
    if minimum is not None and value < minimum:
        raise SweepSpecError(f"{what} must be >= {minimum}, got {value}")
    return float(value)


def _require_list(value: object, what: str) -> List:
    if not isinstance(value, list):
        raise SweepSpecError(f"{what} must be a list")
    return value


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def _workload_names() -> Tuple[str, ...]:
    from repro.workloads.registry import ALL_WORKLOAD_NAMES

    return ALL_WORKLOAD_NAMES


def parse_trace_entry(entry: str, default_seed: int = 0) -> Dict[str, object]:
    """Parse one trace-axis entry into a generator descriptor.

    Returns a dict with ``kind`` (``workload`` or one of
    :data:`SYNTHETIC_KINDS`) plus the generator's parameters.  Raises
    :class:`SweepSpecError` for anything unrecognized — a misspelled
    kernel never becomes an empty cell.
    """
    if ":" not in entry:
        if entry not in _workload_names():
            raise SweepSpecError(
                f"unknown workload {entry!r}; expected one of "
                f"{_workload_names()} or a synthetic form "
                f"({'|'.join(SYNTHETIC_KINDS)}:...)"
            )
        return {"kind": "workload", "name": entry}
    kind, _, rest = entry.partition(":")
    if kind not in SYNTHETIC_KINDS:
        raise SweepSpecError(
            f"unknown synthetic generator {kind!r} in {entry!r}; "
            f"expected one of {SYNTHETIC_KINDS}"
        )
    try:
        if kind in ("loop", "loop-mix"):
            footprint, _, iterations = rest.partition("x")
            return {
                "kind": kind,
                "footprint": int(footprint),
                "iterations": int(iterations),
            }
        parts = rest.split(":")
        if kind == "zipf":
            if len(parts) not in (2, 3):
                raise ValueError("zipf takes n:unique[:seed]")
            return {
                "kind": kind,
                "n": int(parts[0]),
                "unique": int(parts[1]),
                "seed": int(parts[2]) if len(parts) > 2 else default_seed,
            }
        if kind == "markov":
            if len(parts) not in (2, 3, 4):
                raise ValueError("markov takes n:unique[:locality[:seed]]")
            return {
                "kind": kind,
                "n": int(parts[0]),
                "unique": int(parts[1]),
                "locality": float(parts[2]) if len(parts) > 2 else 0.9,
                "seed": int(parts[3]) if len(parts) > 3 else default_seed,
            }
        # random
        if len(parts) not in (2, 3):
            raise ValueError("random takes n:footprint[:seed]")
        return {
            "kind": kind,
            "n": int(parts[0]),
            "footprint": int(parts[1]),
            "seed": int(parts[2]) if len(parts) > 2 else default_seed,
        }
    except ValueError as exc:
        raise SweepSpecError(f"bad synthetic trace {entry!r}: {exc}") from exc


def _validate_rule(rule: object, what: str) -> Dict[str, object]:
    """Validate one include/exclude rule (a partial axis assignment)."""
    rule = _require_dict(rule, what)
    if not rule:
        raise SweepSpecError(f"{what} must constrain at least one axis")
    _reject_unknown(rule, AXIS_NAMES, what)
    validated: Dict[str, object] = {}
    for axis, value in rule.items():
        if axis == "level":
            value = _require_int(value, f"{what}.level")
            if value not in LEVELS:
                raise SweepSpecError(
                    f"{what}.level must be one of {LEVELS}, got {value}"
                )
        else:
            value = _require_str(value, f"{what}.{axis}")
        validated[axis] = value
    return validated


@dataclass(frozen=True)
class SweepSpec:
    """A complete, validated sweep description (see module docstring).

    Axis tuples are normalized to their declaration order with
    duplicates rejected, so two specs that expand to the same matrix
    compare (and fingerprint) equal.
    """

    name: str
    traces: Tuple[str, ...]
    engines: Tuple[str, ...]
    preludes: Tuple[str, ...] = ("auto",)
    warmth: Tuple[str, ...] = ("cold",)
    policies: Tuple[str, ...] = ("lru",)
    levels: Tuple[int, ...] = (1,)
    budgets: Tuple[int, ...] = ()
    percents: Tuple[float, ...] = ()
    max_depth: Optional[int] = None
    l2_depth: int = 32
    scale: str = "tiny"
    seed: int = 0
    include: Tuple[Dict[str, object], ...] = ()
    exclude: Tuple[Dict[str, object], ...] = ()
    workers: int = 2
    timeout_s: float = 300.0
    retries: int = 1
    backoff_s: float = 0.25
    tolerance: float = 1.0
    baselines: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _require_str(self.name, "name")
        for axis_name in ("traces", "engines"):
            if not getattr(self, axis_name):
                raise SweepSpecError(f"axes.{axis_name} must be non-empty")
        for axis_name in _AXES_FIELDS:
            field_name = _AXIS_FIELD_MAP[axis_name]
            values = getattr(self, field_name)
            if len(set(values)) != len(values):
                raise SweepSpecError(f"axes.{axis_name}: duplicate entries")
            if not values:
                raise SweepSpecError(f"axes.{axis_name} must be non-empty")
        for entry in self.traces:
            parse_trace_entry(entry, self.seed)
        for engine in self.engines:
            _engines.canonical_name(engine)  # raises on unknown names
        for prelude in self.preludes:
            if prelude not in _engines.PRELUDE_MODES:
                raise SweepSpecError(
                    f"axes.preludes: {prelude!r} not in "
                    f"{_engines.PRELUDE_MODES}"
                )
        for warmth in self.warmth:
            if warmth not in WARMTH:
                raise SweepSpecError(
                    f"axes.warmth: {warmth!r} not in {WARMTH}"
                )
        for policy in self.policies:
            if policy not in _engines.policy_names():
                raise SweepSpecError(
                    f"axes.policies: {policy!r} not in "
                    f"{_engines.policy_names()}"
                )
        for level in self.levels:
            if level not in LEVELS:
                raise SweepSpecError(f"axes.levels: {level!r} not in {LEVELS}")
        if not self.budgets and not self.percents:
            raise SweepSpecError("at least one budget or percent is required")
        if any(
            not isinstance(k, int) or isinstance(k, bool) or k < 0
            for k in self.budgets
        ):
            raise SweepSpecError("budgets must be non-negative integers")
        if any(
            isinstance(p, bool) or not isinstance(p, (int, float)) or p < 0
            for p in self.percents
        ):
            raise SweepSpecError("percents must be non-negative numbers")
        if self.max_depth is not None and not _is_power_of_two(self.max_depth):
            raise SweepSpecError(
                f"max_depth must be a power of two, got {self.max_depth}"
            )
        if not _is_power_of_two(self.l2_depth):
            raise SweepSpecError(
                f"l2_depth must be a power of two, got {self.l2_depth}"
            )
        from repro.workloads.common import SCALES

        if self.scale not in SCALES:
            raise SweepSpecError(
                f"scale must be one of {sorted(SCALES)}, got {self.scale!r}"
            )
        _require_int(self.seed, "seed", minimum=0)
        _require_int(self.workers, "execution.workers", minimum=1)
        _require_number(self.timeout_s, "execution.timeout_s", minimum=0.001)
        _require_int(self.retries, "execution.retries", minimum=0)
        _require_number(self.backoff_s, "execution.backoff_s", minimum=0.0)
        _require_number(self.tolerance, "report.tolerance", minimum=0.0)
        for rule_name in ("include", "exclude"):
            for i, rule in enumerate(getattr(self, rule_name)):
                _validate_rule(rule, f"{rule_name}[{i}]")
        for baseline in self.baselines:
            _require_str(baseline, "report.baselines entry")

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        """The canonical document form (inverse of :func:`spec_from_dict`)."""
        return {
            "schema": SPEC_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "scale": self.scale,
            "axes": {
                "traces": list(self.traces),
                "engines": list(self.engines),
                "preludes": list(self.preludes),
                "warmth": list(self.warmth),
                "policies": list(self.policies),
                "levels": list(self.levels),
            },
            "budgets": list(self.budgets),
            "percents": list(self.percents),
            "max_depth": self.max_depth,
            "l2_depth": self.l2_depth,
            "include": [dict(rule) for rule in self.include],
            "exclude": [dict(rule) for rule in self.exclude],
            "execution": {
                "workers": self.workers,
                "timeout_s": self.timeout_s,
                "retries": self.retries,
                "backoff_s": self.backoff_s,
            },
            "report": {
                "tolerance": self.tolerance,
                "baselines": list(self.baselines),
            },
        }

    def to_yaml_text(self) -> str:
        """Canonical YAML serialization (stable key order)."""
        import yaml

        return yaml.safe_dump(self.to_dict(), sort_keys=True)

    def replace(self, **changes: object) -> "SweepSpec":
        """A copy with the given fields replaced (re-validated)."""
        import dataclasses

        return dataclasses.replace(self, **changes)


#: Maps YAML axis names to :class:`SweepSpec` field names.
_AXIS_FIELD_MAP = {
    "traces": "traces",
    "engines": "engines",
    "preludes": "preludes",
    "warmth": "warmth",
    "policies": "policies",
    "levels": "levels",
}


def spec_from_dict(document: object) -> SweepSpec:
    """Parse and validate a spec document (strict: unknown fields fail)."""
    document = _require_dict(document, "spec")
    if document.get("schema") != SPEC_SCHEMA:
        raise SweepSpecError(
            f"spec.schema must be {SPEC_SCHEMA!r}, got "
            f"{document.get('schema')!r}"
        )
    _reject_unknown(document, _TOP_FIELDS, "spec")
    if "name" not in document or "axes" not in document:
        raise SweepSpecError("spec: missing required fields 'name'/'axes'")
    axes = _require_dict(document["axes"], "spec.axes")
    _reject_unknown(axes, _AXES_FIELDS, "spec.axes")
    kwargs: Dict[str, object] = {"name": _require_str(document["name"], "spec.name")}

    for axis_name, field_name in _AXIS_FIELD_MAP.items():
        if axis_name not in axes:
            continue
        values = _require_list(axes[axis_name], f"spec.axes.{axis_name}")
        if axis_name == "levels":
            kwargs[field_name] = tuple(
                _require_int(v, f"spec.axes.levels[{i}]")
                for i, v in enumerate(values)
            )
        else:
            kwargs[field_name] = tuple(
                _require_str(v, f"spec.axes.{axis_name}[{i}]")
                for i, v in enumerate(values)
            )
    if "traces" not in axes or "engines" not in axes:
        raise SweepSpecError("spec.axes: missing required axes traces/engines")

    if "budgets" in document:
        kwargs["budgets"] = tuple(
            _require_int(v, f"spec.budgets[{i}]", minimum=0)
            for i, v in enumerate(_require_list(document["budgets"], "spec.budgets"))
        )
    if "percents" in document:
        kwargs["percents"] = tuple(
            _require_number(v, f"spec.percents[{i}]", minimum=0)
            for i, v in enumerate(
                _require_list(document["percents"], "spec.percents")
            )
        )
    if document.get("max_depth") is not None:
        kwargs["max_depth"] = _require_int(document["max_depth"], "spec.max_depth")
    if "l2_depth" in document:
        kwargs["l2_depth"] = _require_int(document["l2_depth"], "spec.l2_depth")
    if "scale" in document:
        kwargs["scale"] = _require_str(document["scale"], "spec.scale")
    if "seed" in document:
        kwargs["seed"] = _require_int(document["seed"], "spec.seed", minimum=0)
    for rule_name in ("include", "exclude"):
        if rule_name in document:
            rules = _require_list(document[rule_name], f"spec.{rule_name}")
            kwargs[rule_name] = tuple(
                _validate_rule(rule, f"spec.{rule_name}[{i}]")
                for i, rule in enumerate(rules)
            )
    if "execution" in document:
        execution = _require_dict(document["execution"], "spec.execution")
        _reject_unknown(execution, _EXECUTION_FIELDS, "spec.execution")
        if "workers" in execution:
            kwargs["workers"] = _require_int(
                execution["workers"], "spec.execution.workers", minimum=1
            )
        if "timeout_s" in execution:
            kwargs["timeout_s"] = _require_number(
                execution["timeout_s"], "spec.execution.timeout_s", minimum=0.001
            )
        if "retries" in execution:
            kwargs["retries"] = _require_int(
                execution["retries"], "spec.execution.retries", minimum=0
            )
        if "backoff_s" in execution:
            kwargs["backoff_s"] = _require_number(
                execution["backoff_s"], "spec.execution.backoff_s", minimum=0.0
            )
    if "report" in document:
        report = _require_dict(document["report"], "spec.report")
        _reject_unknown(report, _REPORT_FIELDS, "spec.report")
        if "tolerance" in report:
            kwargs["tolerance"] = _require_number(
                report["tolerance"], "spec.report.tolerance", minimum=0.0
            )
        if "baselines" in report:
            kwargs["baselines"] = tuple(
                _require_str(v, f"spec.report.baselines[{i}]")
                for i, v in enumerate(
                    _require_list(report["baselines"], "spec.report.baselines")
                )
            )
    try:
        return SweepSpec(**kwargs)
    except SweepSpecError:
        raise
    except (TypeError, ValueError) as exc:
        raise SweepSpecError(f"spec: {exc}") from exc


def spec_from_yaml(text: str) -> SweepSpec:
    """Parse a YAML spec document (strict)."""
    import yaml

    try:
        document = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise SweepSpecError(f"spec is not valid YAML: {exc}") from exc
    return spec_from_dict(document)


def load_spec(path: str) -> SweepSpec:
    """Read and parse a YAML spec file."""
    with open(path, "r", encoding="utf-8") as handle:
        return spec_from_yaml(handle.read())
