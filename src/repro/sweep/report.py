"""Aggregate a sweep run into one validated trend report.

One sweep produces one ``repro-sweep-report/1`` JSON document: the spec
and plan fingerprint (so a report is traceable to the exact matrix that
produced it), every cell's terminal record — including its embedded
``repro-run-manifest/1`` manifest — run counters, and a *baseline
diff* section comparing cell timings against the committed
``BENCH_*.json`` artifacts.  Cells slower than ``(1 + tolerance) x``
their baseline row are flagged in ``regressions``; the CLI turns that
list into a non-zero exit under ``--fail-on-regression``.

:func:`render_markdown` renders the same document as a human-readable
trend table for PR comments and CI artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.manifest import environment_info, validate_manifest
from repro.sweep.planner import Plan
from repro.sweep.scheduler import CELL_STATUSES, CellRecord, SweepRun

#: Report document schema identifier.
SWEEP_REPORT_SCHEMA = "repro-sweep-report/1"

#: Required summary counter keys (mirrors the scheduler's counters).
SUMMARY_KEYS = (
    "total",
    "ok",
    "quarantined",
    "skipped",
    "attempts",
    "retries",
    "timeouts",
)


def _baseline_wall(schema: str, row: Dict, record_dict: Dict) -> Optional[float]:
    """The baseline row's comparable wall time for one cell, if any.

    Row-shaped bench schemas are matched on the cell's resolved trace
    name plus the schema's own notion of configuration: engine for the
    postlude/parallel benches, prelude pipeline for the prelude bench,
    and store warmth for the store bench.  Returns ``None`` when the
    row does not describe this cell.
    """
    coords = record_dict["coords"]
    trace_name = record_dict.get("trace_name")
    if trace_name is None or row.get("trace") != trace_name:
        return None
    if schema in ("repro-bench-postlude/1", "repro-bench-parallel/1"):
        if row.get("engine") != record_dict.get("engine"):
            return None
        if coords.get("warmth") != "cold":
            return None
        return float(row["wall_s"])
    if schema == "repro-bench-prelude/1":
        if row.get("pipeline") != coords.get("prelude"):
            return None
        if coords.get("warmth") != "cold":
            return None
        return float(row["total_s"])
    if schema == "repro-bench-store/1":
        if row.get("engine") != record_dict.get("engine"):
            return None
        key = "cold_wall_s" if coords.get("warmth") == "cold" else "warm_wall_s"
        return float(row[key])
    return None


def diff_against_baselines(
    cells: Sequence[Dict],
    baselines: Dict[str, Dict],
    tolerance: float,
) -> Dict[str, object]:
    """Compare ok cells against committed bench documents.

    Args:
        cells: cell record dicts (:meth:`CellRecord.to_json_dict`).
        baselines: ``filename -> validated bench document``.
        tolerance: allowed relative slowdown before a match is flagged
            (0.5 = a cell may run 50% slower than its baseline row).

    Returns:
        ``{"files": {filename: {...}}, "regressions": [...]}`` — every
        matched (cell, baseline row) pair with its timing ratio, and
        the subset past tolerance.
    """
    files: Dict[str, Dict] = {}
    regressions: List[Dict] = []
    for filename, document in baselines.items():
        schema = document.get("schema", "")
        rows = document.get("results")
        matches: List[Dict] = []
        if isinstance(rows, list):
            for cell in cells:
                if cell.get("status") != "ok":
                    continue
                for row in rows:
                    wall = _baseline_wall(schema, row, cell)
                    if wall is None:
                        continue
                    cell_wall = float(cell["wall_s"])
                    ratio = cell_wall / wall if wall > 0 else float("inf")
                    entry = {
                        "cell": cell["id"],
                        "baseline": filename,
                        "trace": cell.get("trace_name"),
                        "baseline_wall_s": wall,
                        "cell_wall_s": cell_wall,
                        "ratio": ratio,
                        "regression": ratio > 1.0 + tolerance,
                    }
                    matches.append(entry)
                    if entry["regression"]:
                        regressions.append(entry)
        files[filename] = {
            "schema": schema,
            "matched": len(matches),
            "comparisons": matches,
        }
    return {"files": files, "regressions": regressions}


def build_report(
    plan: Plan,
    run: SweepRun,
    baseline_dir: Optional[str] = None,
    tolerance: Optional[float] = None,
) -> Dict:
    """Assemble (and validate) the ``repro-sweep-report/1`` document.

    Baseline files named by the spec are loaded from ``baseline_dir``
    (default: the current directory) and validated through
    :func:`repro.sweep.schema.validate_bench` before diffing; a missing
    or invalid baseline is recorded as that file's ``error`` instead of
    failing the sweep — the report is the regression signal, not a
    hard gate.
    """
    from repro.sweep.schema import validate_bench

    spec = plan.spec
    tolerance = spec.tolerance if tolerance is None else tolerance
    root = baseline_dir or "."
    baselines: Dict[str, Dict] = {}
    baseline_errors: Dict[str, str] = {}
    for filename in spec.baselines:
        path = os.path.join(root, filename)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            validate_bench(document)
        except (OSError, ValueError) as exc:
            baseline_errors[filename] = f"{type(exc).__name__}: {exc}"
            continue
        baselines[filename] = document

    cells = [record.to_json_dict() for record in run.records]
    diff = diff_against_baselines(cells, baselines, tolerance)
    for filename, message in baseline_errors.items():
        diff["files"][filename] = {"error": message}

    counters = run.counters
    document = {
        "schema": SWEEP_REPORT_SCHEMA,
        "name": spec.name,
        "plan_fingerprint": plan.fingerprint(),
        "spec": spec.to_dict(),
        "environment": environment_info(),
        "wall_s": run.wall_s,
        "cells": cells,
        "summary": {
            "total": counters.get("sweep_cells_total", len(cells)),
            "ok": counters.get("sweep_cells_ok", 0),
            "quarantined": counters.get("sweep_cells_quarantined", 0),
            "skipped": counters.get("sweep_cells_skipped", 0),
            "attempts": counters.get("sweep_attempts", 0),
            "retries": counters.get("sweep_retries", 0),
            "timeouts": counters.get("sweep_timeouts", 0),
        },
        "baselines": {
            "tolerance": tolerance,
            "files": diff["files"],
        },
        "regressions": diff["regressions"],
    }
    validate_sweep_report(document)
    return document


def validate_sweep_report(document: object) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid sweep report.

    Beyond structure this enforces the aggregation invariants: the
    summary counters must account for every cell exactly once, and
    every embedded manifest must itself be a valid
    ``repro-run-manifest/1`` document.
    """
    if not isinstance(document, dict):
        raise ValueError("sweep report must be a JSON object")
    if document.get("schema") != SWEEP_REPORT_SCHEMA:
        raise ValueError(f"schema must be {SWEEP_REPORT_SCHEMA!r}")
    for key, kind in (("name", str), ("plan_fingerprint", str)):
        if not isinstance(document.get(key), kind) or not document[key]:
            raise ValueError(f"missing or mistyped field {key!r}")
    for key in ("spec", "environment", "summary", "baselines"):
        if not isinstance(document.get(key), dict):
            raise ValueError(f"field {key!r} must be an object")
    wall = document.get("wall_s")
    if isinstance(wall, bool) or not isinstance(wall, (int, float)) or wall < 0:
        raise ValueError("wall_s must be a non-negative number")
    cells = document.get("cells")
    if not isinstance(cells, list) or not cells:
        raise ValueError("'cells' must be a non-empty list")
    status_counts = {status: 0 for status in CELL_STATUSES}
    for i, cell in enumerate(cells):
        what = f"cells[{i}]"
        if not isinstance(cell, dict):
            raise ValueError(f"{what} must be an object")
        for key, kind in (("id", str), ("status", str)):
            if not isinstance(cell.get(key), kind) or not cell[key]:
                raise ValueError(f"{what}: missing or mistyped field {key!r}")
        if cell["status"] not in CELL_STATUSES:
            raise ValueError(
                f"{what}: status must be one of {CELL_STATUSES}, "
                f"got {cell['status']!r}"
            )
        status_counts[cell["status"]] += 1
        for key in ("attempts", "timeouts"):
            value = cell.get(key)
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                raise ValueError(f"{what}.{key} must be a non-negative int")
        if not isinstance(cell.get("coords"), dict):
            raise ValueError(f"{what}.coords must be an object")
        if cell["status"] == "ok":
            if not isinstance(cell.get("report"), dict):
                raise ValueError(f"{what}: ok cells must embed a report")
            if "manifest" not in cell:
                raise ValueError(f"{what}: ok cells must embed a manifest")
        elif cell["status"] == "quarantined" and not cell.get("error"):
            raise ValueError(f"{what}: quarantined cells must carry an error")
        if "manifest" in cell:
            try:
                validate_manifest(cell["manifest"])
            except ValueError as exc:
                raise ValueError(f"{what}.manifest: {exc}") from exc
    summary = document["summary"]
    for key in SUMMARY_KEYS:
        value = summary.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"summary.{key} must be a non-negative int")
    if summary["total"] != len(cells):
        raise ValueError(
            f"summary.total is {summary['total']} but the report carries "
            f"{len(cells)} cells"
        )
    for status in CELL_STATUSES:
        key = {"ok": "ok", "quarantined": "quarantined", "skipped": "skipped"}[
            status
        ]
        if summary[key] != status_counts[status]:
            raise ValueError(
                f"summary.{key} is {summary[key]} but {status_counts[status]} "
                f"cells have status {status!r}"
            )
    baselines = document["baselines"]
    if not isinstance(baselines.get("files"), dict):
        raise ValueError("baselines.files must be an object")
    tolerance = baselines.get("tolerance")
    if (
        isinstance(tolerance, bool)
        or not isinstance(tolerance, (int, float))
        or tolerance < 0
    ):
        raise ValueError("baselines.tolerance must be a non-negative number")
    regressions = document.get("regressions")
    if not isinstance(regressions, list):
        raise ValueError("'regressions' must be a list")
    for i, entry in enumerate(regressions):
        if not isinstance(entry, dict) or not entry.get("regression"):
            raise ValueError(f"regressions[{i}] must be a flagged comparison")


def render_markdown(document: Dict) -> str:
    """The report as a markdown trend table (CI artifact / PR comment)."""
    summary = document["summary"]
    lines = [
        f"# Sweep report: {document['name']}",
        "",
        f"Plan fingerprint: `{document['plan_fingerprint'][:16]}…` — "
        f"{summary['total']} cells in {document['wall_s']:.2f}s "
        f"({summary['ok']} ok, {summary['quarantined']} quarantined, "
        f"{summary['skipped']} skipped; {summary['attempts']} attempts, "
        f"{summary['retries']} retries, {summary['timeouts']} timeouts).",
        "",
        "| cell | status | attempts | wall (s) | engine |",
        "|---|---|---:|---:|---|",
    ]
    for cell in document["cells"]:
        wall = f"{cell.get('wall_s', 0.0):.3f}"
        engine = cell.get("engine", "—")
        status = cell["status"]
        if status != "ok":
            status = f"**{status}**"
        lines.append(
            f"| `{cell['id']}` | {status} | {cell.get('attempts', 0)} "
            f"| {wall} | {engine} |"
        )
    lines.append("")
    tolerance = document["baselines"]["tolerance"]
    regressions = document["regressions"]
    if regressions:
        lines += [
            f"## Regressions (>{100 * (1 + tolerance):.0f}% of baseline)",
            "",
            "| cell | baseline | baseline (s) | now (s) | ratio |",
            "|---|---|---:|---:|---:|",
        ]
        for entry in regressions:
            lines.append(
                f"| `{entry['cell']}` | {entry['baseline']} "
                f"| {entry['baseline_wall_s']:.3f} | {entry['cell_wall_s']:.3f} "
                f"| {entry['ratio']:.2f}x |"
            )
    else:
        lines.append(
            f"No regressions against committed baselines "
            f"(tolerance {tolerance:.2f})."
        )
    lines.append("")
    files = document["baselines"]["files"]
    if files:
        lines.append("## Baselines")
        lines.append("")
        for filename, info in sorted(files.items()):
            if "error" in info:
                lines.append(f"- `{filename}`: **unavailable** ({info['error']})")
            else:
                lines.append(
                    f"- `{filename}` ({info['schema']}): "
                    f"{info['matched']} cell comparisons"
                )
        lines.append("")
    return "\n".join(lines)
