"""Expand a sweep spec into a dependency-aware cell DAG.

The planner is pure: spec in, :class:`Plan` out, no I/O and no timing,
so a plan is reproducible byte for byte (the CI job asserts it).  The
expansion follows matrix semantics:

1. the cartesian product of the six axes, in declaration order;
2. ``include`` rules each add the product of the spec's axes with the
   rule's pinned values substituted (an include that names every axis
   adds exactly one cell);
3. ``exclude`` rules then drop every cell whose coordinates match all
   of the rule's constraints (subset match);
4. duplicates keep their first occurrence.

Two structural dependency rules make the DAG:

* a ``warm`` cell depends on the ``cold`` cell with otherwise identical
  coordinates (its store producer) — a warm cell whose producer was
  excluded is a plan-time error, not a silently-cold cell;
* a level-2 cell depends on the level-1 cell with otherwise identical
  coordinates (the L1 winner whose miss stream seeds the L2 sweep).

Cycle detection runs at plan time over whatever dependency map the plan
carries (the structural rules cannot cycle, but :class:`Plan` accepts
arbitrary graphs so the scheduler's contract is enforced here, once).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sweep.spec import AXIS_NAMES, SweepSpec

#: Plan document schema identifier.
PLAN_SCHEMA = "repro-sweep-plan/1"


class PlanError(ValueError):
    """The spec expands to an invalid plan (cycle, missing producer...)."""


@dataclass(frozen=True)
class Cell:
    """One point of the sweep matrix.

    Identity is the six axis coordinates; everything else a cell needs
    to execute (budgets, depth bounds, scale) lives on the plan's spec
    and is shared by every cell.
    """

    trace: str
    engine: str
    prelude: str
    warmth: str
    policy: str
    level: int

    @property
    def cell_id(self) -> str:
        """Stable, human-readable identity: axes joined in canonical order."""
        return (
            f"{self.trace}/{self.engine}/{self.prelude}/"
            f"{self.warmth}/{self.policy}/L{self.level}"
        )

    def coords(self) -> Dict[str, object]:
        """The coordinates as an axis-name -> value mapping."""
        return {axis: getattr(self, axis) for axis in AXIS_NAMES}

    def matches(self, rule: Mapping[str, object]) -> bool:
        """True when every constraint in ``rule`` equals this cell's value."""
        return all(getattr(self, axis) == value for axis, value in rule.items())


@dataclass(frozen=True)
class Plan:
    """An ordered cell list plus its dependency edges.

    Attributes:
        spec: the spec the plan was expanded from.
        cells: cells in deterministic execution-priority order.
        depends_on: ``cell_id -> tuple of producer cell_ids``; every id
            must name a cell in :attr:`cells`, and the graph must be
            acyclic (validated at construction).
    """

    spec: SweepSpec
    cells: Tuple[Cell, ...]
    depends_on: Dict[str, Tuple[str, ...]]

    def __post_init__(self) -> None:
        ids = [cell.cell_id for cell in self.cells]
        if len(set(ids)) != len(ids):
            raise PlanError("duplicate cell ids in plan")
        known = set(ids)
        for cell_id, deps in self.depends_on.items():
            if cell_id not in known:
                raise PlanError(f"dependency map names unknown cell {cell_id!r}")
            for dep in deps:
                if dep not in known:
                    raise PlanError(
                        f"cell {cell_id!r} depends on unknown cell {dep!r}"
                    )
        self.topological_order()  # raises PlanError on cycles

    def dependencies(self, cell: Cell) -> Tuple[str, ...]:
        """The producer cell-ids of ``cell`` (empty when independent)."""
        return self.depends_on.get(cell.cell_id, ())

    def topological_order(self) -> Tuple[str, ...]:
        """Cell ids in a dependency-respecting order (Kahn's algorithm).

        Raises:
            PlanError: when the dependency graph contains a cycle; the
                error names the cells stuck on the cycle.
        """
        remaining = {
            cell.cell_id: set(self.dependencies(cell)) for cell in self.cells
        }
        order: List[str] = []
        while remaining:
            ready = sorted(
                cell_id for cell_id, deps in remaining.items() if not deps
            )
            if not ready:
                stuck = sorted(remaining)
                raise PlanError(
                    f"dependency cycle among cells {stuck}"
                )
            for cell_id in ready:
                order.append(cell_id)
                del remaining[cell_id]
            for deps in remaining.values():
                deps.difference_update(ready)
        return tuple(order)

    def cell(self, cell_id: str) -> Cell:
        """Look a cell up by id."""
        for cell in self.cells:
            if cell.cell_id == cell_id:
                return cell
        raise KeyError(cell_id)

    def to_json_dict(self) -> Dict:
        """The canonical plan document (byte-stable for a fixed spec)."""
        return {
            "schema": PLAN_SCHEMA,
            "spec": self.spec.to_dict(),
            "cells": [
                {
                    "id": cell.cell_id,
                    "coords": cell.coords(),
                    "depends_on": list(self.dependencies(cell)),
                }
                for cell in self.cells
            ],
            "fingerprint": self.fingerprint(),
        }

    def to_json(self) -> str:
        """Canonical JSON text: same spec + seed -> same bytes."""
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical cells + spec (excluding itself)."""
        payload = {
            "schema": PLAN_SCHEMA,
            "spec": self.spec.to_dict(),
            "cells": [
                {
                    "id": cell.cell_id,
                    "depends_on": list(self.dependencies(cell)),
                }
                for cell in self.cells
            ],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _expand_rule(spec: SweepSpec, rule: Mapping[str, object]) -> List[Cell]:
    """All cells an include rule denotes (free axes range over the spec)."""
    domains: List[Sequence[object]] = []
    axis_values = {
        "trace": spec.traces,
        "engine": spec.engines,
        "prelude": spec.preludes,
        "warmth": spec.warmth,
        "policy": spec.policies,
        "level": spec.levels,
    }
    for axis in AXIS_NAMES:
        if axis in rule:
            domains.append((rule[axis],))
        else:
            domains.append(axis_values[axis])
    return [Cell(*combo) for combo in itertools.product(*domains)]


def plan_sweep(spec: SweepSpec) -> Plan:
    """Expand ``spec`` into a validated :class:`Plan` (see module doc)."""
    cells: List[Cell] = [
        Cell(*combo)
        for combo in itertools.product(
            spec.traces,
            spec.engines,
            spec.preludes,
            spec.warmth,
            spec.policies,
            spec.levels,
        )
    ]
    for rule in spec.include:
        cells.extend(_expand_rule(spec, rule))
    if spec.exclude:
        cells = [
            cell
            for cell in cells
            if not any(cell.matches(rule) for rule in spec.exclude)
        ]
    seen: Dict[str, Cell] = {}
    for cell in cells:
        seen.setdefault(cell.cell_id, cell)
    unique = list(seen.values())
    if not unique:
        raise PlanError("the spec expands to zero cells (over-excluded?)")

    by_id = {cell.cell_id: cell for cell in unique}
    depends_on: Dict[str, Tuple[str, ...]] = {}
    for cell in unique:
        deps: List[str] = []
        if cell.warmth == "warm":
            producer = Cell(
                cell.trace, cell.engine, cell.prelude, "cold",
                cell.policy, cell.level,
            )
            if producer.cell_id not in by_id:
                raise PlanError(
                    f"warm cell {cell.cell_id!r} has no cold producer in "
                    f"the plan (excluded or missing from axes.warmth)"
                )
            deps.append(producer.cell_id)
        if cell.level == 2:
            l1 = Cell(
                cell.trace, cell.engine, cell.prelude, cell.warmth,
                cell.policy, 1,
            )
            if l1.cell_id not in by_id:
                raise PlanError(
                    f"level-2 cell {cell.cell_id!r} has no level-1 winner "
                    f"in the plan (excluded or missing from axes.levels)"
                )
            deps.append(l1.cell_id)
        if deps:
            depends_on[cell.cell_id] = tuple(deps)
    return Plan(spec=spec, cells=tuple(unique), depends_on=depends_on)
