"""Benchmark farm: declarative sweep orchestration over the matrix.

The paper's evaluation is a 12-kernel PowerStone matrix explored across
engines, preludes and store warmth; :mod:`repro.sweep` turns that matrix
into a first-class, declarative artifact instead of ~30 ad-hoc harness
scripts.  A YAML :class:`SweepSpec` names the axes (traces x engines x
preludes x warmth x policies x levels) plus matrix ``include``/
``exclude`` rules; the :mod:`planner <repro.sweep.planner>` expands it
into a cell DAG (warm cells depend on their cold producer, L2 cells on
the L1 winner) with plan-time cycle detection and a byte-stable
fingerprint; the :mod:`scheduler <repro.sweep.scheduler>` runs the DAG
under bounded worker concurrency with per-cell timeout, retry-with-
backoff and quarantine; the :mod:`report <repro.sweep.report>` module
aggregates per-cell ``repro-run-manifest/1`` manifests into one
validated ``repro-sweep-report/1`` document (plus a markdown trend
table) and diffs timings against the committed ``BENCH_*.json``
baselines.

:mod:`repro.sweep.schema` additionally unifies the five per-bench
``BENCH_*.json`` validators behind one :func:`validate_bench` entry
point, so CI validates every benchmark artifact through a single code
path.

Entry points::

    repro sweep benchmarks/sweeps/quick.yaml -o report.json
    repro sweep benchmarks/sweeps/quick.yaml --plan   # byte-stable DAG

    from repro.sweep import load_spec, plan_sweep, run_sweep

    spec = load_spec("benchmarks/sweeps/quick.yaml")
    plan = plan_sweep(spec)
    report = run_sweep(plan)
"""

from repro.sweep.planner import Plan, PlanError, Cell, plan_sweep
from repro.sweep.report import (
    SWEEP_REPORT_SCHEMA,
    build_report,
    diff_against_baselines,
    render_markdown,
    validate_sweep_report,
)
from repro.sweep.scheduler import CellRecord, SweepScheduler, run_sweep
from repro.sweep.schema import BENCH_SCHEMAS, validate_bench
from repro.sweep.spec import (
    SPEC_SCHEMA,
    SweepSpec,
    SweepSpecError,
    load_spec,
    spec_from_dict,
    spec_from_yaml,
)

__all__ = [
    "BENCH_SCHEMAS",
    "Cell",
    "CellRecord",
    "Plan",
    "PlanError",
    "SPEC_SCHEMA",
    "SWEEP_REPORT_SCHEMA",
    "SweepScheduler",
    "SweepSpec",
    "SweepSpecError",
    "build_report",
    "diff_against_baselines",
    "load_spec",
    "plan_sweep",
    "render_markdown",
    "run_sweep",
    "spec_from_dict",
    "spec_from_yaml",
    "validate_bench",
    "validate_sweep_report",
]
