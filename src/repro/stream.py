"""Incremental trace sessions: append chunks, keep ``(D, A)`` answers hot.

The paper's pipeline assumes the trace is fully materialized before the
prelude runs.  A :class:`TraceSession` drops that assumption: it wraps
the appendable :class:`repro.core.streaming.StreamingState` so a
long-running trace source can feed references in chunks and re-ask for
per-level histograms — and the optimal ``(D, A)`` pairs derived from
them — after every append, paying time proportional to the appended
chunk rather than the whole history.

Sessions survive restarts: :meth:`TraceSession.checkpoint` persists the
full streaming state to the content-addressed artifact store under the
session's rolling content digest (split-independent — any chunking of
the same sequence produces the same digest), and
:meth:`TraceSession.resume` restores it.  Combined with
:func:`repro.trace.io.iter_trace_chunks`, a 10⁶–10⁸-reference file is
analyzed without ever materializing the trace.

The serve daemon exposes sessions over HTTP
(``POST /v1/sessions`` / ``.../append`` / ``.../explore``, see
:mod:`repro.serve.sessions`) and the CLI as ``repro stream``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core.instance import CacheInstance
from repro.core.postlude import LevelHistogram, optimal_pairs, validate_max_level
from repro.core.streaming import StreamingState
from repro.obs.recorder import NULL_RECORDER
from repro.trace.trace import Trace

__all__ = ["TraceSession", "checkpoint_key"]


def checkpoint_key(digest: str, max_level: Optional[int]):
    """The artifact key a session checkpoint is stored under."""
    from repro.store.codec import STREAM_CHECKPOINT_CODEC
    from repro.store.keys import ArtifactKey

    max_level = validate_max_level(max_level)
    level_key = "full" if max_level is None else int(max_level)
    return ArtifactKey.for_stage(
        digest,
        STREAM_CHECKPOINT_CODEC.stage,
        STREAM_CHECKPOINT_CODEC.version,
        max_level=level_key,
    )


class TraceSession:
    """An append-only exploration session over an unbounded trace.

    Args:
        address_bits: significant address width, fixed for the session.
        max_level: deepest level to maintain (default: ``address_bits``);
            bounding it shrinks both state and per-append cost.
        store: optional :class:`repro.store.ArtifactStore` for
            checkpoints; without one, :meth:`checkpoint` is a no-op.
        name: optional label (appears in ``repr`` and the serve API).
        recorder: a :class:`repro.obs.Recorder` that appends and
            explorations report to; defaults to the no-op recorder.

    Raises:
        ValueError: on a non-positive width or negative ``max_level``.
    """

    def __init__(
        self,
        address_bits: int,
        max_level: Optional[int] = None,
        store=None,
        name: str = "",
        recorder=NULL_RECORDER,
    ) -> None:
        self.state = StreamingState(address_bits, max_level=max_level)
        self.store = store
        self.name = name
        self.recorder = recorder
        self.appends = 0

    # -- introspection ---------------------------------------------------------

    @property
    def address_bits(self) -> int:
        return self.state.address_bits

    @property
    def max_level(self) -> Optional[int]:
        return self.state.max_level

    @property
    def total_refs(self) -> int:
        """References ingested so far."""
        return self.state.total_refs

    @property
    def unique_refs(self) -> int:
        """Distinct addresses seen so far (the paper's N')."""
        return self.state.unique_count

    @property
    def content_digest(self) -> str:
        """Digest of (address width, appended sequence); checkpoint key."""
        return self.state.content_digest

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<TraceSession{label} refs={self.total_refs} "
            f"unique={self.unique_refs} bits={self.address_bits}>"
        )

    # -- ingestion -------------------------------------------------------------

    def append(self, chunk: Union[Trace, Sequence[int]]) -> int:
        """Ingest a chunk; histograms stay exact after it returns.

        Returns the number of references ingested.
        """
        with self.recorder.phase("stream:append"):
            n = self.state.append(chunk)
        self.appends += 1
        self.recorder.record("stream_refs", n)
        return n

    # -- answers ---------------------------------------------------------------

    def histograms(self) -> Dict[int, LevelHistogram]:
        """Current per-level histograms, bit-identical to the batch path."""
        with self.recorder.phase("stream:histograms"):
            return self.state.histograms()

    def explore(
        self, budget: int, include_depth_one: bool = False
    ) -> List[CacheInstance]:
        """Optimal ``(depth, associativity)`` pairs for the trace so far."""
        return optimal_pairs(
            self.histograms(),
            budget,
            max_level=self.state.limit,
            include_depth_one=include_depth_one,
        )

    def explore_many(
        self, budgets: Sequence[int], include_depth_one: bool = False
    ) -> Dict[int, List[CacheInstance]]:
        """:meth:`explore` for several budgets, sharing one histogram pass."""
        histograms = self.histograms()
        return {
            budget: optimal_pairs(
                histograms,
                budget,
                max_level=self.state.limit,
                include_depth_one=include_depth_one,
            )
            for budget in budgets
        }

    # -- persistence -----------------------------------------------------------

    def checkpoint(self) -> Optional[str]:
        """Persist the session state under its content digest.

        Returns the digest the checkpoint is addressed by, or ``None``
        when the session has no store.
        """
        if self.store is None:
            return None
        from repro.store.codec import STREAM_CHECKPOINT_CODEC

        digest = self.content_digest
        key = checkpoint_key(digest, self.max_level)
        with self.recorder.phase("stream:checkpoint"):
            self.store.put(
                key, STREAM_CHECKPOINT_CODEC, self.state.snapshot(),
                recorder=self.recorder,
            )
        return digest

    @classmethod
    def resume(
        cls,
        store,
        digest: str,
        max_level: Optional[int] = None,
        name: str = "",
        recorder=NULL_RECORDER,
    ) -> Optional["TraceSession"]:
        """Restore a checkpointed session, or ``None`` on a store miss.

        ``max_level`` must match the bound the checkpoint was written
        with (it participates in the key).
        """
        from repro.store.codec import STREAM_CHECKPOINT_CODEC

        key = checkpoint_key(digest, max_level)
        snapshot = store.get(key, STREAM_CHECKPOINT_CODEC, recorder=recorder)
        if snapshot is None:
            return None
        session = cls.__new__(cls)
        session.state = StreamingState.from_snapshot(snapshot)
        session.store = store
        session.name = name
        session.recorder = recorder
        session.appends = 0
        return session
