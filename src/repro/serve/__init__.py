"""The exploration service: a long-lived daemon for exploration requests.

``repro serve`` keeps engines, caches, and a worker pool warm so
repeated explorations skip process startup, and concurrent identical
requests collapse to one computation (in-flight dedup).  The package
splits along seams:

* :mod:`repro.serve.protocol` — strict JSON wire codecs + dedup keys;
* :mod:`repro.serve.dedup` — the in-flight leader/follower table;
* :mod:`repro.serve.pool` — bounded process/thread/inline worker pool;
* :mod:`repro.serve.metrics` — latency reservoir + Prometheus text;
* :mod:`repro.serve.sessions` — incremental append/explore sessions;
* :mod:`repro.serve.server` — the asyncio HTTP daemon;
* :mod:`repro.serve.client` — thin blocking client (``repro submit``).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.dedup import InFlightTable
from repro.serve.metrics import Reservoir, parse_metrics, render_metrics
from repro.serve.pool import (
    POOL_KINDS,
    BoundedPool,
    WorkerPool,
    execute_wire_request,
)
from repro.serve.protocol import (
    ACCEPTED_REQUEST_SCHEMAS,
    BATCH_REQUEST_SCHEMA,
    BATCH_RESPONSE_SCHEMA,
    REQUEST_SCHEMA,
    RESPONSE_SCHEMA,
    ProtocolError,
    batch_from_wire,
    request_from_wire,
    request_key,
    request_to_wire,
    response_from_wire,
    response_to_wire,
    trace_from_wire,
    trace_to_wire,
)
from repro.serve.server import DEFAULT_HOST, DEFAULT_PORT, ExploreServer
from repro.serve.sessions import SESSION_SCHEMA, SessionError, SessionManager

__all__ = [
    "ACCEPTED_REQUEST_SCHEMAS",
    "BATCH_REQUEST_SCHEMA",
    "BATCH_RESPONSE_SCHEMA",
    "BoundedPool",
    "POOL_KINDS",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ExploreServer",
    "InFlightTable",
    "ProtocolError",
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "Reservoir",
    "SESSION_SCHEMA",
    "ServeClient",
    "ServeError",
    "SessionError",
    "SessionManager",
    "WorkerPool",
    "batch_from_wire",
    "execute_wire_request",
    "parse_metrics",
    "render_metrics",
    "request_from_wire",
    "request_key",
    "request_to_wire",
    "response_from_wire",
    "response_to_wire",
    "trace_from_wire",
    "trace_to_wire",
]
