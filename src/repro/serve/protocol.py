"""The serve wire protocol: strict JSON codecs for requests and reports.

The daemon speaks plain JSON documents over HTTP.  Everything on the
wire is validated *strictly*: unknown fields are rejected (so a typo'd
option fails loudly instead of silently running with defaults, and the
wire schema cannot drift from the dataclasses without a test noticing),
and every field is type-checked before an :class:`ExplorationRequest`
is constructed — the request's own ``__post_init__`` then enforces the
semantic rules (mode arity, budget signs, known engine names).

Wire documents:

* request (schema :data:`REQUEST_SCHEMA`) — an
  :class:`repro.core.request.ExplorationRequest` minus its server-side
  attachments (recorder, store), with traces inlined as
  ``{"name", "address_bits", "addresses", "kinds"}`` objects;
* response (schema :data:`RESPONSE_SCHEMA`) — the
  :class:`repro.core.request.ExplorationReport` as its lossless
  ``to_json_dict`` form, plus the worker's run manifest.

:func:`request_key` derives the in-flight dedup identity: the SHA-256
of the canonical request JSON with each trace replaced by its content
digest — two requests that would compute the same thing share one key
even when their traces arrived under different names.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence

from repro.core.linesize import LineSizeExplorer
from repro.core.postlude import validate_max_level
from repro.core.request import ExplorationRequest, ExplorationReport, MODES
from repro.scenario.spec import ScenarioSpec
from repro.store.keys import trace_digest
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace

#: Request document schema identifier (current minor revision).
REQUEST_SCHEMA = "repro-serve-request/1.2"

#: Request schemas the daemon accepts.  ``/1`` documents predate the
#: ``max_level`` field, ``/1.1`` documents the ``scenario`` block; both
#: remain valid — every later addition is optional with defaults
#: matching the old behavior, so old clients keep working unchanged and
#: are answered byte-identically.
ACCEPTED_REQUEST_SCHEMAS = (
    REQUEST_SCHEMA,
    "repro-serve-request/1.1",
    "repro-serve-request/1",
)

#: Response document schema identifier.
RESPONSE_SCHEMA = "repro-serve-response/1"

#: Wire fields of a request document, in canonical order.
REQUEST_FIELDS = (
    "schema",
    "mode",
    "traces",
    "budgets",
    "percents",
    "max_depth",
    "max_level",
    "include_depth_one",
    "line_sizes",
    "weights",
    "engine",
    "processes",
    "prelude",
    "scenario",
)

#: Wire fields of a ``/1.2`` scenario block.
SCENARIO_FIELDS = ("policy", "l2_depth", "cost_model")

#: Batch request/response document schema identifiers.
BATCH_REQUEST_SCHEMA = "repro-serve-batch/1"
BATCH_RESPONSE_SCHEMA = "repro-serve-batch-response/1"

#: Wire fields of a trace object.
TRACE_FIELDS = ("name", "address_bits", "addresses", "kinds")


class ProtocolError(ValueError):
    """A wire document failed validation (the server answers 400)."""


def _require_dict(value: object, what: str) -> Dict:
    if not isinstance(value, dict):
        raise ProtocolError(f"{what} must be a JSON object")
    return value


def _check_fields(document: Dict, allowed: Sequence[str], what: str) -> None:
    unknown = set(document) - set(allowed)
    if unknown:
        raise ProtocolError(f"{what}: unknown fields {sorted(unknown)}")


def _int(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"{what} must be an integer")
    return value


def _number(value: object, what: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(f"{what} must be a number")
    return float(value)


def _str(value: object, what: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(f"{what} must be a string")
    return value


def _bool(value: object, what: str) -> bool:
    if not isinstance(value, bool):
        raise ProtocolError(f"{what} must be a boolean")
    return value


def _int_list(value: object, what: str) -> List[int]:
    if not isinstance(value, list):
        raise ProtocolError(f"{what} must be a list")
    return [_int(item, f"{what}[{i}]") for i, item in enumerate(value)]


# -- traces ---------------------------------------------------------------------


def trace_to_wire(trace: Trace) -> Dict:
    """A trace as a wire object."""
    kinds: Optional[List[int]] = None
    if trace.has_kinds:
        kinds = [trace.kind(i).value for i in range(len(trace))]
    return {
        "name": trace.name,
        "address_bits": trace.address_bits,
        "addresses": list(trace.addresses),
        "kinds": kinds,
    }


def trace_from_wire(document: object) -> Trace:
    """Rebuild a trace from its wire object (strict)."""
    document = _require_dict(document, "trace")
    _check_fields(document, TRACE_FIELDS, "trace")
    for field in TRACE_FIELDS:
        if field not in document:
            raise ProtocolError(f"trace: missing field {field!r}")
    addresses = _int_list(document["addresses"], "trace.addresses")
    kinds_wire = document["kinds"]
    kinds = None
    if kinds_wire is not None:
        try:
            kinds = [
                AccessKind(_int(k, "trace.kinds[]")) for k in kinds_wire
            ]
        except ValueError as exc:
            raise ProtocolError(f"trace.kinds: {exc}") from exc
    try:
        return Trace(
            addresses,
            address_bits=_int(document["address_bits"], "trace.address_bits"),
            kinds=kinds,
            name=_str(document["name"], "trace.name"),
        )
    except ValueError as exc:
        raise ProtocolError(f"trace: {exc}") from exc


# -- requests -------------------------------------------------------------------


def request_to_wire(request: ExplorationRequest) -> Dict:
    """An :class:`ExplorationRequest` as a wire document.

    The server-side attachments (``recorder``, ``store``) are not wire
    concerns and are dropped; the daemon supplies its own.
    """
    return {
        "schema": REQUEST_SCHEMA,
        "mode": request.mode,
        "traces": [trace_to_wire(trace) for trace in request.traces],
        "budgets": list(request.budgets),
        "percents": list(request.percents),
        "max_depth": request.max_depth,
        "include_depth_one": request.include_depth_one,
        "line_sizes": list(request.line_sizes),
        "weights": list(request.weights) if request.weights is not None else None,
        "engine": request.engine,
        "processes": request.processes,
        "prelude": request.prelude,
        "scenario": request.scenario.to_json_dict(),
    }


def _scenario_from_wire(document: object) -> Dict:
    """Validate a ``/1.2`` scenario block; returns its plain fields."""
    document = _require_dict(document, "request.scenario")
    _check_fields(document, SCENARIO_FIELDS, "request.scenario")
    policy = _str(document.get("policy", "lru"), "request.scenario.policy")
    l2_depth = document.get("l2_depth")
    if l2_depth is not None:
        l2_depth = _int(l2_depth, "request.scenario.l2_depth")
    cost_model = document.get("cost_model")
    if cost_model is not None:
        cost_model = _str(cost_model, "request.scenario.cost_model")
    return {"policy": policy, "l2_depth": l2_depth, "cost_model": cost_model}


def request_from_wire(document: object) -> ExplorationRequest:
    """Rebuild (and fully validate) a request from its wire document."""
    document = _require_dict(document, "request")
    _check_fields(document, REQUEST_FIELDS, "request")
    for field in ("schema", "mode", "traces"):
        if field not in document:
            raise ProtocolError(f"request: missing field {field!r}")
    if document["schema"] not in ACCEPTED_REQUEST_SCHEMAS:
        raise ProtocolError(
            f"request.schema must be one of {ACCEPTED_REQUEST_SCHEMAS}, "
            f"got {document['schema']!r}"
        )
    mode = _str(document["mode"], "request.mode")
    if mode not in MODES:
        raise ProtocolError(f"request.mode must be one of {MODES}, got {mode!r}")
    traces_wire = document["traces"]
    if not isinstance(traces_wire, list) or not traces_wire:
        raise ProtocolError("request.traces must be a non-empty list")
    traces = tuple(trace_from_wire(t) for t in traces_wire)
    percents_wire = document.get("percents", [])
    if not isinstance(percents_wire, list):
        raise ProtocolError("request.percents must be a list")
    percents = tuple(
        _number(p, f"request.percents[{i}]")
        for i, p in enumerate(percents_wire)
    )
    max_depth = document.get("max_depth")
    if max_depth is not None:
        max_depth = _int(max_depth, "request.max_depth")
    max_level = document.get("max_level")
    if max_level is not None:
        if max_depth is not None:
            raise ProtocolError(
                "request: max_depth and max_level are two spellings of one "
                "bound; supply at most one"
            )
        max_level = _int(max_level, "request.max_level")
        try:
            validate_max_level(max_level)
        except ValueError as exc:
            raise ProtocolError(f"request: {exc}") from exc
        # The dataclass speaks depths; a level bound is exactly the
        # power-of-two depth it indexes.
        max_depth = 1 << max_level
    weights = document.get("weights")
    if weights is not None:
        weights = tuple(_int_list(weights, "request.weights"))
    line_sizes = document.get(
        "line_sizes", list(LineSizeExplorer.DEFAULT_LINE_SIZES)
    )
    scenario_wire = document.get("scenario")
    if scenario_wire is not None and document["schema"] != REQUEST_SCHEMA:
        raise ProtocolError(
            f"request.scenario requires schema {REQUEST_SCHEMA!r}, "
            f"got {document['schema']!r}"
        )
    scenario_fields = (
        _scenario_from_wire(scenario_wire)
        if scenario_wire is not None
        else {"policy": "lru", "l2_depth": None, "cost_model": None}
    )
    try:
        scenario = ScenarioSpec(
            engine=_str(document.get("engine", "auto"), "request.engine"),
            processes=_int(document.get("processes", 2), "request.processes"),
            prelude=_str(document.get("prelude", "auto"), "request.prelude"),
            max_depth=max_depth,
            include_depth_one=_bool(
                document.get("include_depth_one", False),
                "request.include_depth_one",
            ),
            **scenario_fields,
        )
        return ExplorationRequest(
            traces=traces,
            mode=mode,
            budgets=tuple(_int_list(document.get("budgets", []), "request.budgets")),
            percents=percents,
            line_sizes=tuple(_int_list(line_sizes, "request.line_sizes")),
            weights=weights,
            scenario=scenario,
        )
    except ValueError as exc:  # semantic validation (mode arity, budgets...)
        raise ProtocolError(f"request: {exc}") from exc


def request_key(document: object) -> str:
    """The in-flight dedup identity of a request wire document.

    Validates the document (so a malformed request can never poison the
    dedup table), then hashes the canonical JSON with each trace
    replaced by its content digest: requests differing only in trace
    *names* or field order share a key; requests differing in any
    parameter that could change the answer (or the machinery asked to
    produce it) do not.
    """
    request = request_from_wire(document)
    # The scenario triple is keyed from the *parsed* request, so a /1 or
    # /1.1 document (no scenario block) and a /1.2 document carrying the
    # default scenario hash identically — dedup is unified across
    # protocol revisions.
    canonical = {
        "mode": request.mode,
        "traces": [trace_digest(trace) for trace in request.traces],
        "budgets": list(request.budgets),
        "percents": list(request.percents),
        "max_depth": request.max_depth,
        "include_depth_one": request.include_depth_one,
        "line_sizes": list(request.line_sizes),
        "weights": list(request.weights) if request.weights is not None else None,
        "engine": request.engine,
        "processes": request.processes,
        "prelude": request.prelude,
        "policy": request.scenario.policy,
        "l2_depth": request.scenario.l2_depth,
        "cost_model": request.scenario.cost_model,
    }
    blob = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def batch_from_wire(document: object) -> List[Dict]:
    """Validate a batch envelope; returns the raw per-request documents.

    Each member document is *not* validated here — the server validates
    (and keys) members individually so one bad member fails the whole
    batch with a pointed error message.
    """
    document = _require_dict(document, "batch")
    _check_fields(document, ("schema", "requests"), "batch")
    if document.get("schema", BATCH_REQUEST_SCHEMA) != BATCH_REQUEST_SCHEMA:
        raise ProtocolError(
            f"batch.schema must be {BATCH_REQUEST_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    requests = document.get("requests")
    if not isinstance(requests, list) or not requests:
        raise ProtocolError("batch.requests must be a non-empty list")
    return [_require_dict(item, f"batch.requests[{i}]") for i, item in enumerate(requests)]


# -- responses ------------------------------------------------------------------


def response_to_wire(
    report: ExplorationReport, manifest: Optional[Dict] = None
) -> Dict:
    """Wrap a report (and its run manifest) as a response document."""
    document: Dict[str, object] = {
        "schema": RESPONSE_SCHEMA,
        "report": report.to_json_dict(),
    }
    if manifest is not None:
        document["manifest"] = manifest
    return document


def response_from_wire(document: object) -> ExplorationReport:
    """Extract the report from a response document (strict)."""
    document = _require_dict(document, "response")
    _check_fields(document, ("schema", "report", "manifest"), "response")
    if document.get("schema") != RESPONSE_SCHEMA:
        raise ProtocolError(
            f"response.schema must be {RESPONSE_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    report_wire = _require_dict(document.get("report"), "response.report")
    try:
        return ExplorationReport.from_json_dict(report_wire)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"response.report: {exc}") from exc
