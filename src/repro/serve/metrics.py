"""Live metrics: reservoir-sampled latency percentiles + Prometheus text.

The daemon's ``/metrics`` endpoint follows the Prometheus text
exposition format, assembled from three sources: monotonically
increasing counters (the server's :class:`repro.obs.Recorder`), point-
in-time gauges (in-flight requests, queue depth, drain state), and a
latency *summary* backed by :class:`Reservoir` — uniform reservoir
sampling (Vitter's Algorithm R) over per-request wall times, so p50/p95/
p99 stay O(k) in memory no matter how many requests the daemon has
served.  The reservoir is deterministic given its seed, which the test
battery exploits.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence

#: Default reservoir capacity (samples kept).
DEFAULT_RESERVOIR_K = 2048

#: The summary quantiles ``/metrics`` exports.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


class Reservoir:
    """Uniform reservoir sample of a value stream (Algorithm R).

    Args:
        k: reservoir capacity; once ``count > k`` each new value
            replaces a uniformly random kept sample with probability
            ``k / count``.
        seed: RNG seed (deterministic replacement decisions when set).
    """

    def __init__(self, k: int = DEFAULT_RESERVOIR_K, seed: Optional[int] = None) -> None:
        if k < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {k}")
        self.k = k
        self.count = 0
        self.total = 0.0
        self._samples: List[float] = []
        self._rng = random.Random(seed)

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if len(self._samples) < self.k:
            self._samples.append(value)
            return
        slot = self._rng.randrange(self.count)
        if slot < self.k:
            self._samples[slot] = value

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) of the kept samples, 0.0 when empty.

        Nearest-rank on the sorted reservoir — simple, monotone in
        ``q``, and exact whenever the stream fits the reservoir.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[index]

    def summary(
        self, quantiles: Sequence[float] = SUMMARY_QUANTILES
    ) -> Dict[str, float]:
        """``{"p50": ..., "p95": ..., ...}`` plus count and sum."""
        out = {f"p{int(q * 100)}": self.percentile(q) for q in quantiles}
        out["count"] = float(self.count)
        out["sum"] = self.total
        return out


def _sanitize(name: str) -> str:
    """Make a counter name Prometheus-legal (``[a-zA-Z_][a-zA-Z0-9_]*``)."""
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def render_metrics(
    counters: Mapping[str, int],
    gauges: Mapping[str, float],
    latency: Optional[Reservoir] = None,
    latency_name: str = "serve_request_latency_seconds",
) -> str:
    """The Prometheus text exposition for one scrape.

    Counter names are exported as-is (sanitized); conventionally the
    server uses ``serve_*_total`` names.  The latency reservoir renders
    as a summary metric with :data:`SUMMARY_QUANTILES` quantile lines.
    """
    lines: List[str] = []
    for name in sorted(counters):
        metric = _sanitize(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")
    for name in sorted(gauges):
        metric = _sanitize(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauges[name]}")
    if latency is not None:
        metric = _sanitize(latency_name)
        lines.append(f"# TYPE {metric} summary")
        for q in SUMMARY_QUANTILES:
            lines.append(
                f'{metric}{{quantile="{q}"}} {latency.percentile(q):.9f}'
            )
        lines.append(f"{metric}_sum {latency.total:.9f}")
        lines.append(f"{metric}_count {latency.count}")
    return "\n".join(lines) + "\n"


def parse_metrics(text: str) -> Dict[str, float]:
    """Parse exposition text back into ``{metric[{labels}]: value}``.

    A convenience for tests and the CI smoke client — not a general
    Prometheus parser, just the inverse of :func:`render_metrics`.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        values[name] = float(value)
    return values
