"""Bounded worker pools: a generic core plus the daemon's wire pool.

:class:`BoundedPool` is the reusable piece — a counted, bounded front
over a ``concurrent.futures`` executor with a synchronous
``submit(fn, *args) -> Future`` surface.  It backs both the serve
daemon's :class:`WorkerPool` and the sweep scheduler's thread/inline
backends (:mod:`repro.sweep.scheduler`), so gauge semantics
(``in_flight``, ``queue_depth``) are defined in exactly one place.

Three backends share the interface:

* ``process`` — :class:`concurrent.futures.ProcessPoolExecutor`; the
  serve daemon's production default (true parallelism across cores,
  engine work off the event-loop process entirely).
* ``thread`` — :class:`concurrent.futures.ThreadPoolExecutor`; cheap
  startup, used by the test battery and quick smoke runs.
* ``inline`` — execute synchronously on the calling thread; fully
  deterministic, used by protocol-level tests.

:class:`WorkerPool` keeps the daemon-specific parts: it runs
:func:`execute_wire_request` for each admitted request — decode the
wire document, attach a fresh per-request recorder (and, when the
daemon was given a cache root, a fresh :class:`repro.store.ArtifactStore`
pointed at the shared root), execute, and encode the response document.
Everything that crosses the executor boundary is a plain JSON-shaped
dict, so the process backend pickles only small structures and never a
live store/recorder.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.core.request import explore_request
from repro.obs import Recorder, RunManifest
from repro.serve.protocol import request_from_wire, response_to_wire

#: Supported pool backends.
POOL_KINDS = ("process", "thread", "inline")


def execute_wire_request(
    document: Dict, store_root: Optional[str] = None
) -> Dict:
    """Run one wire request end to end; returns the response document.

    This is the function worker processes execute; it must stay
    module-level (picklable) and self-contained: it builds its own
    recorder and store, so concurrent workers never share mutable
    state — workers meeting at the same store *root* is safe by the
    store's own atomic-rename design.
    """
    request = request_from_wire(document)
    recorder = Recorder()
    store = None
    if store_root is not None:
        from repro.store import ArtifactStore

        store = ArtifactStore(store_root)
    request = replace(request, recorder=recorder, store=store)
    with recorder.phase("serve:execute"):
        report = explore_request(request)
    trace = request.traces[0]
    manifest = RunManifest.from_recorder(
        recorder,
        engine=report.engine,
        requested_engine=request.engine,
        options={
            "mode": request.mode,
            "prelude": request.prelude,
            "processes": request.processes,
        },
        trace={
            "name": trace.name,
            "n": len(trace),
            "n_unique": trace.unique_count(),
            "address_bits": trace.address_bits,
        },
    )
    return response_to_wire(report, manifest=manifest.to_json_dict())


class BoundedPool:
    """A counted, bounded executor with a synchronous submit surface.

    Args:
        workers: maximum concurrent executions.
        kind: one of :data:`POOL_KINDS`.
        thread_name_prefix: worker-thread naming for the ``thread``
            backend (shows up in stack dumps and py-spy profiles).

    ``submit`` always returns a :class:`concurrent.futures.Future`; the
    ``inline`` backend executes on the calling thread and returns an
    already-resolved future, so callers need no backend-specific paths.
    """

    def __init__(
        self,
        workers: int = 2,
        kind: str = "thread",
        thread_name_prefix: str = "repro-pool",
    ) -> None:
        if kind not in POOL_KINDS:
            raise ValueError(f"kind must be one of {POOL_KINDS}, got {kind!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.kind = kind
        self._executor = None
        if kind == "process":
            self._executor = ProcessPoolExecutor(max_workers=workers)
        elif kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=thread_name_prefix
            )
        #: Tasks submitted over the pool's lifetime.
        self.submitted = 0
        #: Tasks finished (success or failure).
        self.completed = 0

    @property
    def in_flight(self) -> int:
        """Submitted executions that have not finished."""
        return self.submitted - self.completed

    @property
    def queue_depth(self) -> int:
        """Executions waiting for a free worker (0 when none queue)."""
        return max(0, self.in_flight - self.workers)

    def _on_done(self, _future: Future) -> None:
        self.completed += 1

    def submit(self, fn: Callable, *args) -> Future:
        """Schedule ``fn(*args)``; returns its future immediately."""
        self.submitted += 1
        if self._executor is None:  # inline
            future: Future = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as exc:  # noqa: BLE001 — future carries it
                future.set_exception(exc)
            self.completed += 1
            return future
        future = self._executor.submit(fn, *args)
        future.add_done_callback(self._on_done)
        return future

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)


class WorkerPool:
    """The serve daemon's pool: :class:`BoundedPool` running wire requests.

    Args:
        workers: maximum concurrent executions.
        kind: one of :data:`POOL_KINDS`.
        store_root: artifact-store root handed to every execution
            (``None`` disables warm-starting).
        execute: override of the execution function — the test battery
            injects counting/slow executables here.  Must accept
            ``(document, store_root)`` and return a response document.
    """

    def __init__(
        self,
        workers: int = 2,
        kind: str = "process",
        store_root: Optional[str] = None,
        execute: Optional[Callable[[Dict, Optional[str]], Dict]] = None,
    ) -> None:
        if execute is not None and kind == "process":
            raise ValueError("custom execute functions need kind=thread|inline")
        self._pool = BoundedPool(
            workers=workers, kind=kind, thread_name_prefix="repro-serve"
        )
        self.workers = workers
        self.kind = kind
        self.store_root = store_root
        self._execute = execute or execute_wire_request

    @property
    def submitted(self) -> int:
        """Requests submitted over the pool's lifetime."""
        return self._pool.submitted

    @property
    def completed(self) -> int:
        """Requests finished (success or failure)."""
        return self._pool.completed

    @property
    def in_flight(self) -> int:
        """Submitted executions that have not finished."""
        return self._pool.in_flight

    @property
    def queue_depth(self) -> int:
        """Executions waiting for a free worker (0 when none queue)."""
        return self._pool.queue_depth

    async def run(self, document: Dict) -> Dict:
        """Execute one wire request on the pool; awaitable."""
        future = self._pool.submit(self._execute, document, self.store_root)
        return await asyncio.wrap_future(future)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (idempotent)."""
        self._pool.shutdown(wait=wait)
