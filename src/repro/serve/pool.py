"""The daemon's bounded worker pool.

One :class:`WorkerPool` fronts a ``concurrent.futures`` executor and
runs :func:`execute_wire_request` for each admitted request: decode the
wire document, attach a fresh per-request recorder (and, when the
daemon was given a cache root, a fresh :class:`repro.store.ArtifactStore`
pointed at the shared root), execute, and encode the response document.
Everything that crosses the executor boundary is a plain JSON-shaped
dict, so the process backend pickles only small structures and never a
live store/recorder.

Three backends share the interface:

* ``process`` — :class:`concurrent.futures.ProcessPoolExecutor`; the
  production default (true parallelism across cores, engine work off
  the event-loop process entirely).
* ``thread`` — :class:`concurrent.futures.ThreadPoolExecutor`; cheap
  startup, used by the test battery and quick smoke runs.
* ``inline`` — execute synchronously on the calling thread; fully
  deterministic, used by protocol-level tests.

The pool tracks ``queue_depth`` (submitted, not yet finished beyond the
worker count) and ``in_flight`` so the server can export live gauges.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.core.request import explore_request
from repro.obs import Recorder, RunManifest
from repro.serve.protocol import request_from_wire, response_to_wire

#: Supported pool backends.
POOL_KINDS = ("process", "thread", "inline")


def execute_wire_request(
    document: Dict, store_root: Optional[str] = None
) -> Dict:
    """Run one wire request end to end; returns the response document.

    This is the function worker processes execute; it must stay
    module-level (picklable) and self-contained: it builds its own
    recorder and store, so concurrent workers never share mutable
    state — workers meeting at the same store *root* is safe by the
    store's own atomic-rename design.
    """
    request = request_from_wire(document)
    recorder = Recorder()
    store = None
    if store_root is not None:
        from repro.store import ArtifactStore

        store = ArtifactStore(store_root)
    request = replace(request, recorder=recorder, store=store)
    with recorder.phase("serve:execute"):
        report = explore_request(request)
    trace = request.traces[0]
    manifest = RunManifest.from_recorder(
        recorder,
        engine=report.engine,
        requested_engine=request.engine,
        options={
            "mode": request.mode,
            "prelude": request.prelude,
            "processes": request.processes,
        },
        trace={
            "name": trace.name,
            "n": len(trace),
            "n_unique": trace.unique_count(),
            "address_bits": trace.address_bits,
        },
    )
    return response_to_wire(report, manifest=manifest.to_json_dict())


class WorkerPool:
    """Bounded executor-backed pool running :func:`execute_wire_request`.

    Args:
        workers: maximum concurrent executions.
        kind: one of :data:`POOL_KINDS`.
        store_root: artifact-store root handed to every execution
            (``None`` disables warm-starting).
        execute: override of the execution function — the test battery
            injects counting/slow executables here.  Must accept
            ``(document, store_root)`` and return a response document.
    """

    def __init__(
        self,
        workers: int = 2,
        kind: str = "process",
        store_root: Optional[str] = None,
        execute: Optional[Callable[[Dict, Optional[str]], Dict]] = None,
    ) -> None:
        if kind not in POOL_KINDS:
            raise ValueError(f"kind must be one of {POOL_KINDS}, got {kind!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if execute is not None and kind == "process":
            raise ValueError("custom execute functions need kind=thread|inline")
        self.workers = workers
        self.kind = kind
        self.store_root = store_root
        self._execute = execute or execute_wire_request
        self._executor = None
        if kind == "process":
            self._executor = ProcessPoolExecutor(max_workers=workers)
        elif kind == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
        #: Requests submitted over the pool's lifetime.
        self.submitted = 0
        #: Requests finished (success or failure).
        self.completed = 0

    @property
    def in_flight(self) -> int:
        """Submitted executions that have not finished."""
        return self.submitted - self.completed

    @property
    def queue_depth(self) -> int:
        """Executions waiting for a free worker (0 when none queue)."""
        return max(0, self.in_flight - self.workers)

    async def run(self, document: Dict) -> Dict:
        """Execute one wire request on the pool; awaitable."""
        self.submitted += 1
        try:
            if self._executor is None:  # inline
                return self._execute(document, self.store_root)
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, self._execute, document, self.store_root
            )
        finally:
            self.completed += 1

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=wait)
