"""In-flight request deduplication.

The content-addressed store already collapses *repeated* work across
time; this table collapses *concurrent* work across clients.  N
identical requests that overlap in flight trigger exactly one
computation: the first arrival (the *leader*) owns the compute task,
every later arrival (a *follower*) awaits the same task and receives
the same result object — bit-identical responses, N-1 of them free.

The table is an asyncio construct and must only be touched from the
event loop thread (the server guarantees this).  Entries remove
themselves when the computation settles, so the map only ever holds
genuinely in-flight keys; a failed computation propagates its exception
to the leader and every follower, then clears, so a transient failure
is retried by the next request rather than cached forever.

Followers await through :func:`asyncio.shield` — a follower's client
disconnecting must not cancel the leader's computation out from under
everyone else.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict


class InFlightTable:
    """Key -> in-flight task map with join-the-leader semantics."""

    def __init__(self) -> None:
        self._tasks: Dict[str, "asyncio.Task"] = {}
        #: Requests that joined an existing computation.
        self.dedup_hits = 0
        #: Computations actually started (leaders).
        self.computations = 0

    def __len__(self) -> int:
        return len(self._tasks)

    async def run(
        self, key: str, compute: Callable[[], Awaitable[object]]
    ) -> object:
        """Return ``compute()``'s result, sharing it with concurrent callers.

        The first caller for ``key`` starts ``compute()``; callers
        arriving while it runs await the same task.  The entry is
        removed as soon as the task settles.
        """
        existing = self._tasks.get(key)
        if existing is not None:
            self.dedup_hits += 1
            return await asyncio.shield(existing)
        task = asyncio.ensure_future(compute())
        self._tasks[key] = task
        self.computations += 1
        task.add_done_callback(lambda _t: self._tasks.pop(key, None))
        try:
            return await asyncio.shield(task)
        except asyncio.CancelledError:
            # Our own caller was cancelled; the shared task (and any
            # followers) must keep running.
            raise
