"""Serve-side incremental sessions: append-only exploration over HTTP.

A session wraps a :class:`repro.stream.TraceSession` behind an opaque
id.  Clients create one, stream address chunks into it, and ask for
optimal ``(D, A)`` pairs whenever they like — each answer reflects
everything appended so far, at a cost proportional to the appended
chunk, not the session history.

Routes (see :class:`repro.serve.server.ExploreServer`):

* ``POST /v1/sessions`` — create (or resume from a checkpoint digest);
* ``GET /v1/sessions`` — list open sessions;
* ``GET /v1/sessions/{id}`` — one session's info document;
* ``POST /v1/sessions/{id}/append`` — ingest an address chunk,
  optionally checkpointing to the artifact store afterwards;
* ``GET /v1/sessions/{id}/explore`` — ``(D, A)`` pairs for one or more
  budgets (``?budget=0&budget=4``);
* ``DELETE /v1/sessions/{id}`` — drop the session.

Session state is mutable and lives in the daemon process, so appends
and explorations run on the event loop's default thread executor under
a per-session lock — never in the worker *process* pool (the state
cannot cross a process boundary without a checkpoint round-trip).
Checkpoints make sessions durable: with an artifact store attached, a
client can re-create a session from its content digest after a daemon
restart.
"""

from __future__ import annotations

import asyncio
import itertools
import secrets
from typing import Dict, List, Optional

from repro.serve.protocol import ProtocolError, _bool, _check_fields, _int, _int_list, _require_dict, _str
from repro.stream import TraceSession

#: Schema identifier of the session-create document.
SESSION_SCHEMA = "repro-serve-session/1"

#: Wire fields of a session-create document.
SESSION_FIELDS = ("schema", "address_bits", "max_level", "name", "resume")

#: Wire fields of an append document.
APPEND_FIELDS = ("addresses", "checkpoint")


class SessionError(ValueError):
    """A session operation failed validation (the server answers 400)."""


class ManagedSession:
    """One live session plus its serialization lock."""

    __slots__ = ("id", "session", "lock")

    def __init__(self, session_id: str, session: TraceSession) -> None:
        self.id = session_id
        self.session = session
        self.lock = asyncio.Lock()

    def info(self) -> Dict[str, object]:
        """The session's wire info document."""
        session = self.session
        return {
            "id": self.id,
            "name": session.name,
            "address_bits": session.address_bits,
            "max_level": session.max_level,
            "total_refs": session.total_refs,
            "unique_refs": session.unique_refs,
            "appends": session.appends,
            "digest": session.content_digest,
        }


class SessionManager:
    """The daemon's registry of open sessions.

    Args:
        store_root: artifact-store root for checkpoints; ``None``
            disables persistence (checkpoint requests then fail 400).
        max_sessions: refuse creations beyond this many open sessions.
    """

    #: Ceiling on concurrently open sessions (state is O(N') each).
    DEFAULT_MAX_SESSIONS = 64

    def __init__(
        self,
        store_root: Optional[str] = None,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
    ) -> None:
        self.store_root = store_root
        self.max_sessions = max_sessions
        self._sessions: "Dict[str, ManagedSession]" = {}
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        return len(self._sessions)

    def _store(self):
        if self.store_root is None:
            return None
        from repro.store.fs import ArtifactStore

        return ArtifactStore(self.store_root)

    def create(
        self,
        address_bits: int,
        max_level: Optional[int] = None,
        name: str = "",
        resume: Optional[str] = None,
    ) -> ManagedSession:
        """Open a session, optionally resuming a checkpoint digest.

        Raises:
            SessionError: at the session cap, on invalid parameters, on
                a resume digest with no stored checkpoint, or on resume
                without a configured store.
        """
        if len(self._sessions) >= self.max_sessions:
            raise SessionError(
                f"session limit reached ({self.max_sessions} open)"
            )
        store = self._store()
        if resume is not None:
            if store is None:
                raise SessionError("resume requires the daemon to run with a store")
            session = TraceSession.resume(
                store, resume, max_level=max_level, name=name
            )
            if session is None:
                raise SessionError(f"no checkpoint stored for digest {resume!r}")
            if session.address_bits != address_bits:
                raise SessionError(
                    f"checkpoint width {session.address_bits} != requested "
                    f"{address_bits}"
                )
        else:
            try:
                session = TraceSession(
                    address_bits, max_level=max_level, store=store, name=name
                )
            except ValueError as exc:
                raise SessionError(str(exc)) from exc
        session_id = f"s{next(self._counter):04d}-{secrets.token_hex(4)}"
        managed = ManagedSession(session_id, session)
        self._sessions[session_id] = managed
        return managed

    def get(self, session_id: str) -> ManagedSession:
        """Look up a session; raises ``KeyError`` for unknown ids."""
        return self._sessions[session_id]

    def remove(self, session_id: str) -> None:
        """Drop a session; raises ``KeyError`` for unknown ids."""
        del self._sessions[session_id]

    def list_info(self) -> List[Dict[str, object]]:
        """Info documents of every open session, oldest first."""
        return [managed.info() for managed in self._sessions.values()]


# -- wire validation -------------------------------------------------------------


def parse_create(document: object) -> Dict[str, object]:
    """Validate a session-create document; returns constructor kwargs."""
    document = _require_dict(document, "session")
    _check_fields(document, SESSION_FIELDS, "session")
    if document.get("schema") != SESSION_SCHEMA:
        raise ProtocolError(
            f"session.schema must be {SESSION_SCHEMA!r}, "
            f"got {document.get('schema')!r}"
        )
    if "address_bits" not in document:
        raise ProtocolError("session: missing field 'address_bits'")
    address_bits = _int(document["address_bits"], "session.address_bits")
    if address_bits < 1:
        raise ProtocolError(
            f"session.address_bits must be >= 1, got {address_bits}"
        )
    max_level = document.get("max_level")
    if max_level is not None:
        max_level = _int(max_level, "session.max_level")
        from repro.core.postlude import validate_max_level

        try:
            validate_max_level(max_level)
        except ValueError as exc:
            raise ProtocolError(f"session: {exc}") from exc
    resume = document.get("resume")
    if resume is not None:
        resume = _str(resume, "session.resume")
    return {
        "address_bits": address_bits,
        "max_level": max_level,
        "name": _str(document.get("name", ""), "session.name"),
        "resume": resume,
    }


def parse_append(document: object) -> Dict[str, object]:
    """Validate an append document; returns ``{addresses, checkpoint}``."""
    document = _require_dict(document, "append")
    _check_fields(document, APPEND_FIELDS, "append")
    if "addresses" not in document:
        raise ProtocolError("append: missing field 'addresses'")
    addresses = _int_list(document["addresses"], "append.addresses")
    return {
        "addresses": addresses,
        "checkpoint": _bool(
            document.get("checkpoint", False), "append.checkpoint"
        ),
    }


def parse_budgets(query: str) -> Dict[str, object]:
    """Parse an explore query string: repeated ``budget=`` + flags."""
    budgets: List[int] = []
    include_depth_one = False
    if query:
        for pair in query.split("&"):
            if not pair:
                continue
            key, _, value = pair.partition("=")
            if key == "budget":
                try:
                    budgets.append(int(value))
                except ValueError as exc:
                    raise ProtocolError(
                        f"explore: malformed budget {value!r}"
                    ) from exc
            elif key == "include_depth_one":
                include_depth_one = value.lower() in ("1", "true", "yes")
            else:
                raise ProtocolError(f"explore: unknown query key {key!r}")
    if not budgets:
        budgets = [0]
    if any(b < 0 for b in budgets):
        raise ProtocolError("explore: budgets must be non-negative")
    return {"budgets": budgets, "include_depth_one": include_depth_one}
