"""A thin synchronous client for the exploration daemon.

:class:`ServeClient` speaks the serve wire protocol over
:mod:`http.client` — stdlib only, one connection per call, no retries
or pooling.  It exists for three callers: the ``repro submit`` CLI, the
test battery, and the CI smoke job; anything fancier should talk HTTP
itself.

Server-reported failures surface as :class:`ServeError` carrying the
HTTP status and the server's error message, so callers can distinguish
a malformed request (400) from a draining daemon (503) from a worker
crash (500).
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, List, Optional, Sequence

from repro.core.request import ExplorationReport, ExplorationRequest
from repro.serve.metrics import parse_metrics
from repro.serve.protocol import (
    BATCH_REQUEST_SCHEMA,
    ProtocolError,
    request_to_wire,
    response_from_wire,
)


class ServeError(RuntimeError):
    """The daemon answered with an error status.

    Attributes:
        status: HTTP status code (0 when the failure was transport-level
            and no status exists).
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"serve error {status}: {message}" if status else message)
        self.status = status


class ServeClient:
    """Blocking JSON/HTTP client for one daemon endpoint.

    Args:
        host: daemon address.
        port: daemon port.
        timeout: per-call socket timeout in seconds.
    """

    def __init__(self, host: str, port: int, timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport --------------------------------------------------------------

    def _call(
        self, method: str, path: str, body: Optional[Dict] = None
    ) -> tuple:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body, separators=(",", ":")).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return response.status, data
        except (ConnectionError, OSError) as exc:
            raise ServeError(0, f"cannot reach {self.host}:{self.port}: {exc}") from exc
        finally:
            connection.close()

    def _call_json(self, method: str, path: str, body: Optional[Dict] = None) -> Dict:
        status, data = self._call(method, path, body)
        try:
            document = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(status, f"non-JSON response: {data[:200]!r}") from exc
        if status != 200:
            message = document.get("error", data.decode("utf-8", "replace")) if isinstance(document, dict) else str(document)
            raise ServeError(status, message)
        if not isinstance(document, dict):
            raise ServeError(status, "response body must be a JSON object")
        return document

    # -- endpoints --------------------------------------------------------------

    def health(self) -> Dict:
        """``GET /healthz`` — ``{"status", "version", "draining"}``."""
        return self._call_json("GET", "/healthz")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the raw Prometheus exposition text."""
        status, data = self._call("GET", "/metrics")
        if status != 200:
            raise ServeError(status, data.decode("utf-8", "replace"))
        return data.decode("utf-8")

    def metrics(self) -> Dict[str, float]:
        """``GET /metrics`` parsed into ``{metric: value}``."""
        return parse_metrics(self.metrics_text())

    def explore_wire(self, document: Dict) -> Dict:
        """``POST /v1/explore`` with a raw wire document; raw response."""
        return self._call_json("POST", "/v1/explore", document)

    def explore(self, request: ExplorationRequest) -> ExplorationReport:
        """Submit one :class:`ExplorationRequest`; decoded report back."""
        response = self.explore_wire(request_to_wire(request))
        try:
            return response_from_wire(response)
        except ProtocolError as exc:
            raise ServeError(200, f"undecodable response: {exc}") from exc

    def explore_batch_wire(self, documents: Sequence[Dict]) -> List[Dict]:
        """``POST /v1/explore/batch``; response documents in order."""
        envelope = {
            "schema": BATCH_REQUEST_SCHEMA,
            "requests": list(documents),
        }
        response = self._call_json("POST", "/v1/explore/batch", envelope)
        responses = response.get("responses")
        if not isinstance(responses, list):
            raise ServeError(200, "batch response missing 'responses' list")
        return responses

    def explore_batch(
        self, requests: Sequence[ExplorationRequest]
    ) -> List[ExplorationReport]:
        """Submit a batch of requests; decoded reports in request order."""
        documents = [request_to_wire(request) for request in requests]
        responses = self.explore_batch_wire(documents)
        try:
            return [response_from_wire(response) for response in responses]
        except ProtocolError as exc:
            raise ServeError(200, f"undecodable batch response: {exc}") from exc

    # -- incremental sessions ----------------------------------------------------

    def session_create(
        self,
        address_bits: int,
        max_level: Optional[int] = None,
        name: str = "",
        resume: Optional[str] = None,
    ) -> Dict:
        """``POST /v1/sessions``; the session info document."""
        from repro.serve.sessions import SESSION_SCHEMA

        document = self._call_json(
            "POST",
            "/v1/sessions",
            {
                "schema": SESSION_SCHEMA,
                "address_bits": address_bits,
                "max_level": max_level,
                "name": name,
                "resume": resume,
            },
        )
        return document["session"]

    def session_list(self) -> List[Dict]:
        """``GET /v1/sessions``; info documents of open sessions."""
        return self._call_json("GET", "/v1/sessions")["sessions"]

    def session_info(self, session_id: str) -> Dict:
        """``GET /v1/sessions/{id}``; one session's info document."""
        return self._call_json("GET", f"/v1/sessions/{session_id}")["session"]

    def session_append(
        self,
        session_id: str,
        addresses: Sequence[int],
        checkpoint: bool = False,
    ) -> Dict:
        """``POST /v1/sessions/{id}/append``; the full append response."""
        return self._call_json(
            "POST",
            f"/v1/sessions/{session_id}/append",
            {"addresses": list(addresses), "checkpoint": checkpoint},
        )

    def session_explore(
        self,
        session_id: str,
        budgets: Sequence[int] = (0,),
        include_depth_one: bool = False,
    ) -> Dict:
        """``GET /v1/sessions/{id}/explore``; results keyed by budget."""
        query = "&".join(f"budget={int(b)}" for b in budgets)
        if include_depth_one:
            query += "&include_depth_one=true"
        return self._call_json(
            "GET", f"/v1/sessions/{session_id}/explore?{query}"
        )

    def session_delete(self, session_id: str) -> None:
        """``DELETE /v1/sessions/{id}``."""
        self._call_json("DELETE", f"/v1/sessions/{session_id}")
