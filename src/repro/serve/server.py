"""The exploration daemon: an asyncio HTTP/JSON server.

``repro serve`` keeps one long-lived process warm so callers stop
paying interpreter startup, module import, and cold pipelines per
exploration.  The transport is a deliberately small HTTP/1.1
implementation over :func:`asyncio.start_server` (stdlib only — no web
framework), because the protocol surface is four routes:

* ``POST /v1/explore`` — one request wire document in, one response
  document (report + run manifest) out;
* ``POST /v1/explore/batch`` — ``{"requests": [...]}`` in, responses
  out in request order;
* ``/v1/sessions`` and ``/v1/sessions/{id}[/append|/explore]`` —
  incremental trace sessions (:mod:`repro.serve.sessions`): append
  address chunks, re-explore after every append at chunk-proportional
  cost;
* ``GET /metrics`` — Prometheus text: request/dedup/error counters,
  session counters, in-flight and queue-depth gauges, reservoir-sampled
  latency percentiles;
* ``GET /healthz`` — liveness + drain state.

Request flow: decode and *validate* on the event loop (cheap), compute
the request's dedup key, then join the in-flight table — the first
arrival dispatches to the worker pool, concurrent identical arrivals
await the same computation and receive the byte-identical response.
The content-addressed store (when configured) warm-starts repeats that
are no longer concurrent, so the dedup table stays small: it only ever
holds genuinely in-flight keys.

Shutdown drains: the listener closes first (no new connections), live
connections finish the request they are parsing or computing, then the
worker pool stops.  A request that arrives on a kept-alive connection
after draining begins is answered ``503``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Set, Tuple

from repro import __version__
from repro.obs import Recorder
from repro.serve.dedup import InFlightTable
from repro.serve.metrics import Reservoir, render_metrics
from repro.serve.pool import WorkerPool
from repro.serve.protocol import (
    BATCH_RESPONSE_SCHEMA,
    ProtocolError,
    batch_from_wire,
    request_key,
)
from repro.serve.sessions import (
    SessionError,
    SessionManager,
    parse_append,
    parse_budgets,
    parse_create,
)

#: Default bind address and port.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8437

#: Request bodies above this size are refused with 413.
MAX_BODY_BYTES = 256 * 1024 * 1024

#: Header-block size cap (asyncio stream limit for ``readuntil``).
MAX_HEADER_BYTES = 64 * 1024

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ExploreServer:
    """The daemon: one listener, one dedup table, one worker pool.

    Args:
        pool: the :class:`repro.serve.pool.WorkerPool` executing
            requests (the server owns and shuts it down).
        host: bind address.
        port: bind port (0 picks an ephemeral port; see :attr:`port`
            after :meth:`start`).
        recorder: counter sink; a fresh thread-safe
            :class:`repro.obs.Recorder` by default.
        latency_seed: seed for the latency reservoir (deterministic
            sampling in tests).
        sessions: the incremental-session registry; by default a fresh
            :class:`repro.serve.sessions.SessionManager` checkpointing
            into the pool's artifact store root.
    """

    def __init__(
        self,
        pool: WorkerPool,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        recorder: Optional[Recorder] = None,
        latency_seed: Optional[int] = None,
        sessions: Optional[SessionManager] = None,
    ) -> None:
        self.pool = pool
        self.host = host
        self._requested_port = port
        self.recorder = recorder if recorder is not None else Recorder(thread_safe=True)
        self.latency = Reservoir(seed=latency_seed)
        self.inflight = InFlightTable()
        self.sessions = (
            sessions
            if sessions is not None
            else SessionManager(store_root=pool.store_root)
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.Task] = set()
        self._draining = False
        self._uptime_phase = None

    # -- lifecycle --------------------------------------------------------------

    @property
    def port(self) -> int:
        """The actual bound port (resolves port 0 after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return self._server.sockets[0].getsockname()[1]
        return self._requested_port

    @property
    def draining(self) -> bool:
        """True once shutdown has begun."""
        return self._draining

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._uptime_phase = self.recorder.phase("serve:uptime")
        self._uptime_phase.__enter__()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self._requested_port,
            limit=MAX_HEADER_BYTES,
        )

    async def serve_forever(self) -> None:
        """Block until the listener is closed (by :meth:`shutdown`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting, optionally drain in-flight work, stop the pool.

        With ``drain=True`` every connection task is awaited (up to
        ``timeout`` seconds, unbounded when ``None``), so a request
        already computing gets its response before the socket closes.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [task for task in self._connections if not task.done()]
        if pending:
            if drain:
                await asyncio.wait(pending, timeout=timeout)
            for task in self._connections:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*self._connections, return_exceptions=True)
        self.pool.shutdown(wait=drain)
        if self._uptime_phase is not None:
            self._uptime_phase.__exit__(None, None, None)
            self._uptime_phase = None

    # -- metrics ----------------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Counter totals for ``/metrics`` and shutdown manifests."""
        counters = self.recorder.counters_snapshot()
        counters.setdefault("serve_requests_total", 0)
        counters.setdefault("serve_errors_total", 0)
        counters.setdefault("serve_sessions_created_total", 0)
        counters.setdefault("serve_session_appends_total", 0)
        counters.setdefault("serve_session_refs_total", 0)
        counters.setdefault("serve_session_explores_total", 0)
        counters["serve_dedup_hits_total"] = self.inflight.dedup_hits
        counters["serve_computations_total"] = self.inflight.computations
        return counters

    def gauges(self) -> Dict[str, float]:
        """Point-in-time gauges for ``/metrics``."""
        return {
            "serve_in_flight": float(self.pool.in_flight),
            "serve_queue_depth": float(self.pool.queue_depth),
            "serve_inflight_keys": float(len(self.inflight)),
            "serve_workers": float(self.pool.workers),
            "serve_sessions_open": float(len(self.sessions)),
            "serve_draining": 1.0 if self._draining else 0.0,
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition document."""
        return render_metrics(self.counters(), self.gauges(), self.latency)

    # -- connection handling ----------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            await self._serve_connection(reader, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                parsed = await self._read_request(reader)
            except _HttpError as exc:
                self._write_response(
                    writer, exc.status, _JSON, _error_body(exc.status, str(exc)), close=True
                )
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # client went away between requests
            if parsed is None:
                return  # clean EOF on a kept-alive connection
            method, target, headers, body = parsed
            if self._draining and target.startswith("/v1/"):
                status, content_type, payload = (
                    503,
                    _JSON,
                    _error_body(503, "server is draining"),
                )
            else:
                status, content_type, payload = await self._dispatch(
                    method, target, body
                )
            if status >= 400:
                self.recorder.count("serve_errors_total")
            close = (
                self._draining
                or headers.get("connection", "").lower() == "close"
            )
            self._write_response(writer, status, content_type, payload, close)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if close:
                return

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close, no request in flight
            raise _HttpError(400, "truncated request head") from exc
        except asyncio.LimitOverrunError as exc:
            raise _HttpError(413, "request head too large") from exc
        lines = header_blob.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError as exc:
            raise _HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise _HttpError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: bytes,
        close: bool,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Server: repro-serve/{__version__}\r\n"
        )
        if close:
            head += "Connection: close\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)

    # -- routing ----------------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        target, _, query = target.partition("?")
        if target == "/healthz":
            if method != "GET":
                return 405, _JSON, _error_body(405, "healthz is GET-only")
            return (
                200,
                _JSON,
                _json_body(
                    {
                        "status": "ok",
                        "version": __version__,
                        "draining": self._draining,
                    }
                ),
            )
        if target == "/metrics":
            if method != "GET":
                return 405, _JSON, _error_body(405, "metrics is GET-only")
            return 200, _TEXT, self.metrics_text().encode("utf-8")
        if target == "/v1/explore":
            if method != "POST":
                return 405, _JSON, _error_body(405, "explore is POST-only")
            return await self._handle_explore(body)
        if target == "/v1/explore/batch":
            if method != "POST":
                return 405, _JSON, _error_body(405, "batch is POST-only")
            return await self._handle_batch(body)
        if target == "/v1/sessions":
            if method == "POST":
                return await self._handle_session_create(body)
            if method == "GET":
                return 200, _JSON, _json_body(
                    {"sessions": self.sessions.list_info()}
                )
            return 405, _JSON, _error_body(405, "sessions is POST/GET-only")
        if target.startswith("/v1/sessions/"):
            return await self._dispatch_session(
                method, target[len("/v1/sessions/"):], query, body
            )
        return 404, _JSON, _error_body(404, f"no route {target!r}")

    async def _dispatch_session(
        self, method: str, rest: str, query: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        session_id, _, action = rest.partition("/")
        try:
            managed = self.sessions.get(session_id)
        except KeyError:
            return 404, _JSON, _error_body(404, f"no session {session_id!r}")
        if not action:
            if method == "GET":
                return 200, _JSON, _json_body({"session": managed.info()})
            if method == "DELETE":
                self.sessions.remove(session_id)
                return 200, _JSON, _json_body({"deleted": session_id})
            return 405, _JSON, _error_body(405, "session is GET/DELETE-only")
        if action == "append":
            if method != "POST":
                return 405, _JSON, _error_body(405, "append is POST-only")
            return await self._handle_session_append(managed, body)
        if action == "explore":
            if method != "GET":
                return 405, _JSON, _error_body(405, "explore is GET-only")
            return await self._handle_session_explore(managed, query)
        return 404, _JSON, _error_body(404, f"no session action {action!r}")

    async def _handle_session_create(self, body: bytes) -> Tuple[int, str, bytes]:
        try:
            params = parse_create(_parse_json(body))
        except ProtocolError as exc:
            return 400, _JSON, _error_body(400, str(exc))
        loop = asyncio.get_running_loop()
        try:
            # Resume decodes a checkpoint — potentially large; off-loop.
            managed = await loop.run_in_executor(
                None, lambda: self.sessions.create(**params)
            )
        except SessionError as exc:
            return 400, _JSON, _error_body(400, str(exc))
        self.recorder.count("serve_sessions_created_total")
        return 200, _JSON, _json_body({"session": managed.info()})

    async def _handle_session_append(
        self, managed, body: bytes
    ) -> Tuple[int, str, bytes]:
        try:
            params = parse_append(_parse_json(body))
        except ProtocolError as exc:
            return 400, _JSON, _error_body(400, str(exc))
        if params["checkpoint"] and managed.session.store is None:
            return 400, _JSON, _error_body(
                400, "checkpoint requires the daemon to run with a store"
            )
        loop = asyncio.get_running_loop()

        def ingest() -> Tuple[int, Optional[str]]:
            appended = managed.session.append(params["addresses"])
            digest = (
                managed.session.checkpoint() if params["checkpoint"] else None
            )
            return appended, digest

        async with managed.lock:
            try:
                appended, digest = await loop.run_in_executor(None, ingest)
            except ValueError as exc:  # address out of range etc.
                return 400, _JSON, _error_body(400, str(exc))
        self.recorder.count("serve_session_appends_total")
        self.recorder.count("serve_session_refs_total", appended)
        return 200, _JSON, _json_body(
            {
                "session": managed.info(),
                "appended": appended,
                "checkpoint_digest": digest,
            }
        )

    async def _handle_session_explore(
        self, managed, query: str
    ) -> Tuple[int, str, bytes]:
        try:
            params = parse_budgets(query)
        except ProtocolError as exc:
            return 400, _JSON, _error_body(400, str(exc))
        loop = asyncio.get_running_loop()

        def explore() -> Dict[str, object]:
            results = managed.session.explore_many(
                params["budgets"],
                include_depth_one=params["include_depth_one"],
            )
            return {
                str(budget): [
                    {
                        "depth": inst.depth,
                        "associativity": inst.associativity,
                        "size_words": inst.size_words,
                    }
                    for inst in instances
                ]
                for budget, instances in results.items()
            }

        async with managed.lock:
            results = await loop.run_in_executor(None, explore)
        self.recorder.count("serve_session_explores_total")
        return 200, _JSON, _json_body(
            {"session": managed.info(), "results": results}
        )

    async def _handle_explore(self, body: bytes) -> Tuple[int, str, bytes]:
        try:
            document = _parse_json(body)
            key = request_key(document)
        except ProtocolError as exc:
            return 400, _JSON, _error_body(400, str(exc))
        try:
            response = await self._run_deduped(key, document)
        except Exception as exc:  # worker failure: report, don't die
            return 500, _JSON, _error_body(500, f"execution failed: {exc}")
        return 200, _JSON, _json_body(response)

    async def _handle_batch(self, body: bytes) -> Tuple[int, str, bytes]:
        try:
            envelope = _parse_json(body)
            members = batch_from_wire(envelope)
            keys = [request_key(member) for member in members]
        except ProtocolError as exc:
            return 400, _JSON, _error_body(400, str(exc))
        self.recorder.count("serve_batch_requests_total")
        try:
            responses = await asyncio.gather(
                *(
                    self._run_deduped(key, member)
                    for key, member in zip(keys, members)
                )
            )
        except Exception as exc:
            return 500, _JSON, _error_body(500, f"execution failed: {exc}")
        return (
            200,
            _JSON,
            _json_body(
                {"schema": BATCH_RESPONSE_SCHEMA, "responses": list(responses)}
            ),
        )

    async def _run_deduped(self, key: str, document: Dict) -> Dict:
        """One validated request through dedup, pool, and telemetry."""
        loop = asyncio.get_running_loop()
        start = loop.time()
        self.recorder.count("serve_requests_total")

        async def compute() -> Dict:
            response = await self.pool.run(document)
            store_stats = response.get("report", {}).get("store")
            if store_stats:
                self.recorder.count(
                    "serve_store_hits_total", int(store_stats.get("hits", 0))
                )
                self.recorder.count(
                    "serve_store_misses_total", int(store_stats.get("misses", 0))
                )
            return response

        try:
            return await self.inflight.run(key, compute)
        finally:
            self.latency.add(loop.time() - start)


class _HttpError(Exception):
    """Transport-level failure with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _parse_json(body: bytes) -> Dict:
    try:
        document = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"body is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError("body must be a JSON object")
    return document


def _json_body(document: Dict) -> bytes:
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def _error_body(status: int, message: str) -> bytes:
    return _json_body({"error": message, "status": status})
