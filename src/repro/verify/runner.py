"""The verification runner: replay, fuzz, shrink, persist, report.

One :func:`run_verify` call executes the standing verification protocol:

1. **Replay** — the built-in regression entries and every crash artifact
   in the failure corpus go through the full oracle grid first, so known
   bugs are re-proven fixed before any new fuzzing happens.
2. **Fuzz** — corpus entries (paper example first, then boundary
   anchors, then the seeded random tail) run through the grid and the
   structural invariants, plus metamorphic laws (round-robin by default
   so every law is exercised across a run without doubling every
   trace's cost).
3. **Shrink** — any new failure is delta-debugged down to a minimal
   reproducer against a targeted re-check (just the diverging cell, or
   just the violated law — not the whole grid per shrink step).
4. **Persist** — shrunk reproducers are saved to the failure corpus so
   step 1 of every future run replays them.

Budgets are hard caps: a wall-clock deadline and/or a trace count; the
runner always finishes the entry in flight and then stops.  Counters
(traces, cells, divergences, shrink checks) land in the recorder, and
therefore in run manifests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.explorer import AnalyticalCacheExplorer
from repro.obs.recorder import NULL_RECORDER
from repro.trace.trace import Trace
from repro.verify.corpus import (
    CrashArtifact,
    load_corpus,
    regression_entries,
    save_crash,
)
from repro.verify.generators import CorpusEntry, corpus_stream
from repro.verify.invariants import (
    METAMORPHIC_LAWS,
    Violation,
    check_laws,
    structural_violations,
)
from repro.verify.oracle import (
    REFERENCE_CELL,
    Divergence,
    GridCell,
    Tamper,
    grid_cells,
    policy_divergences,
    run_grid,
    stream_divergences,
)
from repro.verify.shrink import shrink_trace

#: Verification report schema identifier.
REPORT_SCHEMA = "repro-verify-report/1"

#: Law scheduling modes.
LAW_MODES = ("rotate", "all", "none")


@dataclass(frozen=True)
class VerifyConfig:
    """Everything one verification run is parameterized by.

    Attributes:
        seed: corpus seed (fuzz tail is deterministic given it).
        max_traces: stop after this many traces (replay included).
        time_budget_s: wall-clock cap in seconds.
        engines: engine subset (default: all registered).
        preludes: prelude-mode subset (default: all).
        include_warm: run the warm-store half of the grid.
        laws: ``"rotate"`` (one metamorphic law per trace, round-robin),
            ``"all"`` (every law on every trace) or ``"none"``.
        policies: non-LRU replacement policies to run through the
            policy oracle on every trace (empty skips the axis).
        processes: worker count for the ``parallel`` engine's cells.
        corpus_dir: failure-corpus directory; ``None`` disables both
            replay-from-disk and persistence.
        shrink: minimize new failures before persisting.
        max_shrink_checks: predicate-evaluation cap per shrink.
        fail_fast: stop at the first failure.
    """

    seed: int = 0
    max_traces: Optional[int] = None
    time_budget_s: Optional[float] = None
    engines: Optional[Tuple[str, ...]] = None
    preludes: Optional[Tuple[str, ...]] = None
    include_warm: bool = True
    laws: str = "rotate"
    policies: Tuple[str, ...] = ()
    processes: int = 2
    corpus_dir: Optional[str] = None
    shrink: bool = True
    max_shrink_checks: int = 300
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.laws not in LAW_MODES:
            raise ValueError(
                f"laws must be one of {LAW_MODES}, got {self.laws!r}"
            )
        from repro.core import engines as _engines

        for policy in self.policies:
            if policy not in _engines.policy_names():
                raise ValueError(
                    f"unknown policy {policy!r}; expected one of "
                    f"{_engines.policy_names()}"
                )
        if self.max_traces is not None and self.max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        if self.time_budget_s is not None and self.time_budget_s <= 0:
            raise ValueError("time_budget_s must be positive")


@dataclass
class VerifyFailure:
    """One failure, as it appears in the report."""

    entry: str
    kind: str
    detail: str
    budgets: Tuple[int, ...]
    cell: Optional[str] = None
    law: Optional[str] = None
    trace_len: int = 0
    shrunk_len: Optional[int] = None
    artifact: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "entry": self.entry,
            "kind": self.kind,
            "detail": self.detail,
            "budgets": list(self.budgets),
            "cell": self.cell,
            "law": self.law,
            "trace_len": self.trace_len,
            "shrunk_len": self.shrunk_len,
            "artifact": self.artifact,
        }


@dataclass
class VerifyReport:
    """Outcome of one :func:`run_verify` call."""

    seed: int
    elapsed_s: float
    traces: int
    cells: int
    corpus_replayed: int
    shrink_checks: int
    failures: List[VerifyFailure] = field(default_factory=list)
    grid: Tuple[str, ...] = ()
    stopped_by: str = "corpus-exhausted"

    @property
    def ok(self) -> bool:
        return not self.failures

    def counters(self) -> dict:
        """Counter totals, for run manifests (`verify` section)."""
        return {
            "verify_traces": self.traces,
            "verify_cells": self.cells,
            "verify_corpus_replayed": self.corpus_replayed,
            "verify_failures": len(self.failures),
            "verify_shrink_checks": self.shrink_checks,
        }

    def to_json_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "ok": self.ok,
            "seed": self.seed,
            "elapsed_s": self.elapsed_s,
            "stopped_by": self.stopped_by,
            "grid": list(self.grid),
            "counters": self.counters(),
            "failures": [failure.as_dict() for failure in self.failures],
        }


def _parse_cell(label: str) -> GridCell:
    engine, prelude, warmth = label.split("/")
    return GridCell(engine, prelude, warmth)


def _make_recheck(
    kind: str,
    budgets: Sequence[int],
    cell: Optional[str],
    law: Optional[str],
    tamper: Optional[Tamper],
    processes: int,
) -> Callable[[Trace], bool]:
    """A targeted failure re-check for the shrinker.

    Re-runs only what's needed to reproduce this failure kind: the
    diverging cell against the reference for grid failures, the
    reference cell plus simulator for simulator/minimality failures,
    the chunked-session comparison alone for stream failures, or the
    violated law alone for invariant failures.
    """
    if kind == "grid" and cell is not None:
        cells = (REFERENCE_CELL, _parse_cell(cell))

        def recheck(trace: Trace) -> bool:
            outcome = run_grid(
                trace,
                budgets,
                cells=cells,
                processes=processes,
                tamper=tamper,
                simulate=False,
                stream_splits=-1,
            )
            return any(d.kind == "grid" for d in outcome.divergences)

        return recheck
    if kind in ("simulator", "minimality"):

        def recheck(trace: Trace) -> bool:
            outcome = run_grid(
                trace,
                budgets,
                cells=(REFERENCE_CELL,),
                processes=processes,
                tamper=tamper,
                simulate=True,
                stream_splits=-1,
            )
            return any(d.kind == kind for d in outcome.divergences)

        return recheck
    if kind == "stream":

        def recheck(trace: Trace) -> bool:
            return bool(stream_divergences(trace, budgets))

        return recheck
    if kind == "policy" and cell is not None:
        policy = cell.split("/", 1)[1]

        def recheck(trace: Trace) -> bool:
            return any(
                d.kind == "policy"
                for d in policy_divergences(trace, budgets, policies=(policy,))
            )

        return recheck
    if kind == "invariant" and law is not None:
        if law in ("within-budget", "depth-monotone", "budget-monotone"):

            def recheck(trace: Trace) -> bool:
                explorer = AnalyticalCacheExplorer(
                    trace, engine="serial", prelude="python"
                )
                results = [explorer.explore(k) for k in budgets]
                return any(
                    v.law == law for v in structural_violations(results)
                )

            return recheck

        def recheck(trace: Trace) -> bool:
            return any(
                v.law == law for v in check_laws(trace, budgets, laws=(law,))
            )

        return recheck

    def recheck(trace: Trace) -> bool:  # unknown kind: keep as-is
        return False

    return recheck


def _law_names() -> Tuple[str, ...]:
    return tuple(name for name, _ in METAMORPHIC_LAWS)


def run_verify(
    config: VerifyConfig = VerifyConfig(),
    recorder=NULL_RECORDER,
    tamper: Optional[Tamper] = None,
) -> VerifyReport:
    """Execute one verification run; never raises on failures found."""
    start = time.monotonic()
    deadline = (
        start + config.time_budget_s
        if config.time_budget_s is not None
        else None
    )
    cells = grid_cells(
        engines=config.engines,
        preludes=config.preludes,
        include_warm=config.include_warm,
    )
    report = VerifyReport(
        seed=config.seed,
        elapsed_s=0.0,
        traces=0,
        cells=0,
        corpus_replayed=0,
        shrink_checks=0,
        grid=tuple(cell.label() for cell in cells),
    )
    law_names = _law_names()

    def out_of_time() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def out_of_traces() -> bool:
        return (
            config.max_traces is not None
            and report.traces >= config.max_traces
        )

    def handle_failures(
        entry: CorpusEntry,
        divergences: Sequence[Divergence],
        violations: Sequence[Violation],
    ) -> None:
        for divergence in divergences:
            _record_failure(
                entry,
                kind=divergence.kind,
                detail=divergence.detail,
                cell=divergence.cell,
                law=None,
                budgets=(
                    (divergence.budget,)
                    if divergence.budget is not None
                    else entry.budgets
                ),
            )
        for violation in violations:
            _record_failure(
                entry,
                kind="invariant",
                detail=violation.detail,
                cell=None,
                law=violation.law,
                budgets=(
                    (violation.budget,)
                    if violation.budget is not None
                    else entry.budgets
                ),
            )

    def _record_failure(
        entry: CorpusEntry,
        kind: str,
        detail: str,
        cell: Optional[str],
        law: Optional[str],
        budgets: Tuple[int, ...],
    ) -> None:
        failure = VerifyFailure(
            entry=entry.name,
            kind=kind,
            detail=detail,
            budgets=budgets,
            cell=cell,
            law=law,
            trace_len=len(entry.trace),
        )
        shrunk_trace = entry.trace
        if config.shrink and entry.origin != "corpus":
            recheck = _make_recheck(
                failure.kind, budgets, cell, law, tamper, config.processes
            )
            with recorder.phase("verify:shrink"):
                shrunk = shrink_trace(
                    entry.trace,
                    recheck,
                    max_checks=config.max_shrink_checks,
                    deadline=deadline,
                    name=f"{entry.name}.shrunk",
                )
            report.shrink_checks += shrunk.checks
            recorder.count("verify_shrink_checks", shrunk.checks)
            if shrunk.checks and len(shrunk.trace) <= len(entry.trace):
                shrunk_trace = shrunk.trace
                failure.shrunk_len = len(shrunk.trace)
        if config.corpus_dir is not None and entry.origin != "corpus":
            artifact = CrashArtifact(
                kind=failure.kind,
                name=entry.name,
                trace=shrunk_trace,
                budgets=budgets,
                cell=cell,
                law=law,
                detail=detail,
                shrunk_from=(
                    len(entry.trace) if failure.shrunk_len is not None else None
                ),
                seed=config.seed,
            )
            failure.artifact = save_crash(config.corpus_dir, artifact)
            recorder.count("verify_crashes_saved")
        report.failures.append(failure)

    def process_entry(entry: CorpusEntry, entry_index: int) -> bool:
        """Run one entry; returns False when the run should stop."""
        outcome = run_grid(
            entry.trace,
            entry.budgets,
            cells=cells,
            processes=config.processes,
            tamper=tamper,
            simulate=True,
            recorder=recorder,
            policies=config.policies,
        )
        report.traces += 1
        report.cells += outcome.cells_run
        recorder.count("verify_traces")
        violations = list(structural_violations(outcome.reference))
        if config.laws == "all":
            chosen: Tuple[str, ...] = law_names
        elif config.laws == "rotate":
            chosen = (law_names[entry_index % len(law_names)],)
        else:
            chosen = ()
        if chosen:
            recorder.count("verify_law_checks", len(chosen))
            violations.extend(
                check_laws(entry.trace, entry.budgets, laws=chosen)
            )
        if outcome.divergences or violations:
            handle_failures(entry, outcome.divergences, violations)
            if config.fail_fast:
                report.stopped_by = "fail-fast"
                return False
        if out_of_time():
            report.stopped_by = "time-budget"
            return False
        if out_of_traces():
            report.stopped_by = "max-traces"
            return False
        return True

    # Phase 1: replay — the on-disk failure corpus first (known bugs are
    # re-proven fixed before anything else), then built-in regressions.
    replay: List[CorpusEntry] = []
    if config.corpus_dir is not None:
        replay.extend(a.as_entry() for a in load_corpus(config.corpus_dir))
    replay.extend(
        CorpusEntry(e.name, e.trace, e.budgets, origin="regression")
        for e in regression_entries()
    )
    running = True
    with recorder.phase("verify:replay"):
        for index, entry in enumerate(replay):
            report.corpus_replayed += 1
            recorder.count("verify_corpus_replayed")
            if not process_entry(entry, index):
                running = False
                break

    # Phase 2: fuzz — the generator corpus, paper example first.
    if running:
        with recorder.phase("verify:fuzz"):
            for index, entry in enumerate(corpus_stream(config.seed)):
                if (
                    config.max_traces is None
                    and deadline is None
                    and entry.origin == "fuzz"
                ):
                    # No budget at all: stop after the anchors to stay
                    # finite (the fuzz tail is unbounded by design).
                    report.stopped_by = "anchors-done"
                    break
                if not process_entry(entry, index):
                    break

    report.elapsed_s = time.monotonic() - start
    return report
