"""Metamorphic and structural invariants — laws that need no simulator.

These are the properties the analytical pipeline must satisfy purely on
its own outputs, following the structural-monotonicity style of
correctness argument in the related associativity-threshold work:

Structural (free — read off one grid pass's results):

* **budget-monotone**: at a fixed depth, the minimal associativity is
  non-increasing as the budget K grows.
* **depth-monotone**: at a fixed K, the minimal associativity is
  non-increasing in depth.  (For LRU with one-word lines, a miss at
  depth 2D implies a miss at depth D — the depth-2D conflict set is a
  subset of the depth-D one — so deeper never needs more ways.)
* **within-budget**: every reported instance's analytical miss count is
  ``<= K``.

Metamorphic (each re-analyzes a transformed trace):

* **stutter**: doubling every reference in place changes nothing — an
  immediate repeat is an LRU hit at every configuration, and the empty
  conflict sets it introduces can never reach any ``A >= 1``.
* **relabel**: XOR-ing every address with a constant (inside the trace's
  width) is a row-permutation at every depth, so the whole miss grid is
  invariant.
* **concat**: ``t ++ t`` can only add misses — pointwise,
  ``misses(t++t, D, A) >= misses(t, D, A)``.
* **rotate**: moving the first k references to the end changes the
  non-cold miss count by at most 2k at every ``(D, A)`` — only accesses
  whose reuse window crosses the cut are affected (at most k moved
  references plus at most k first-reuses across the boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import ExplorationResult
from repro.trace.trace import Trace

#: Factory building the analyzer a law re-runs on a transformed trace.
ExplorerFactory = Callable[[Trace], AnalyticalCacheExplorer]


def _default_factory(trace: Trace) -> AnalyticalCacheExplorer:
    return AnalyticalCacheExplorer(trace, engine="serial", prelude="python")


@dataclass(frozen=True)
class Violation:
    """One broken law."""

    law: str
    detail: str
    budget: Optional[int] = None

    def as_dict(self) -> dict:
        return {"law": self.law, "detail": self.detail, "budget": self.budget}


# -- structural laws (no re-analysis needed) -----------------------------------


def structural_violations(
    results: Sequence[ExplorationResult],
) -> List[Violation]:
    """Check budget/depth monotonicity and budget compliance on results.

    ``results`` is one trace's per-budget exploration output (any order);
    all results must come from the same trace.
    """
    violations: List[Violation] = []
    for result in results:
        previous: Optional[Tuple[int, int]] = None
        for inst, misses in zip(result.instances, result.misses):
            if misses > result.budget:
                violations.append(
                    Violation(
                        law="within-budget",
                        budget=result.budget,
                        detail=(
                            f"{inst}: analytical misses {misses} exceed "
                            f"budget {result.budget}"
                        ),
                    )
                )
            if previous is not None and inst.depth > previous[0]:
                if inst.associativity > previous[1]:
                    violations.append(
                        Violation(
                            law="depth-monotone",
                            budget=result.budget,
                            detail=(
                                f"A grew from {previous[1]} at D={previous[0]} "
                                f"to {inst.associativity} at D={inst.depth}"
                            ),
                        )
                    )
            previous = (inst.depth, inst.associativity)
    ordered = sorted(results, key=lambda r: r.budget)
    for lo, hi in zip(ordered, ordered[1:]):
        if lo.budget == hi.budget:
            continue
        hi_map = hi.as_dict()
        for depth, assoc in lo.as_dict().items():
            if depth in hi_map and hi_map[depth] > assoc:
                violations.append(
                    Violation(
                        law="budget-monotone",
                        budget=hi.budget,
                        detail=(
                            f"D={depth}: A={hi_map[depth]} at K={hi.budget} "
                            f"> A={assoc} at K={lo.budget}"
                        ),
                    )
                )
    return violations


# -- metamorphic laws ----------------------------------------------------------


def _result_divergence(
    got: ExplorationResult, want: ExplorationResult
) -> Optional[str]:
    """``None`` when two results are equivalent, else a detail string.

    The explorer's default depth range is content-dependent (it stops
    one level past the BCAT's deepest conflicts), so a transformed trace
    may legitimately emit more — or fewer — trailing depths than the
    original.  Two results are equivalent when every shared depth agrees
    on both associativity and miss count, and every depth present in
    only one of them is the trivial tail (``A == 1``).
    """
    got_map = {
        inst.depth: (inst.associativity, misses)
        for inst, misses in zip(got.instances, got.misses)
    }
    want_map = {
        inst.depth: (inst.associativity, misses)
        for inst, misses in zip(want.instances, want.misses)
    }
    for depth in sorted(got_map.keys() | want_map.keys()):
        if depth in got_map and depth in want_map:
            if got_map[depth] != want_map[depth]:
                return (
                    f"D={depth}: (A, misses) {got_map[depth]} != "
                    f"{want_map[depth]}"
                )
        else:
            assoc, _ = got_map.get(depth) or want_map[depth]
            if assoc != 1:
                return (
                    f"D={depth}: emitted by only one side with A={assoc} "
                    f"(a depth-range tail must be A=1)"
                )
    return None


def _sample_points(
    explorer: AnalyticalCacheExplorer, budgets: Sequence[int]
) -> List[Tuple[int, int]]:
    """(depth, associativity) pairs to probe: each instance, +-1 way."""
    points = set()
    for budget in budgets:
        for inst in explorer.explore(budget).instances:
            points.add((inst.depth, inst.associativity))
            points.add((inst.depth, inst.associativity + 1))
            if inst.associativity > 1:
                points.add((inst.depth, inst.associativity - 1))
    return sorted(points)


def _probe_misses(
    explorer: AnalyticalCacheExplorer, depth: int, assoc: int
) -> int:
    """Miss count at ``(depth, assoc)``; 0 past the explorer's range.

    A transformed trace's depth range may stop short of the original's
    (its deepest conflicts sit shallower); beyond that range every row
    is conflict-free, so the non-cold miss count is exactly 0.
    """
    try:
        return explorer.misses(depth, assoc)
    except ValueError:
        return 0


def law_stutter(
    trace: Trace,
    budgets: Sequence[int],
    factory: ExplorerFactory = _default_factory,
) -> List[Violation]:
    """Doubling every reference leaves every exploration unchanged."""
    doubled_addrs: List[int] = []
    for addr in trace:
        doubled_addrs.extend((addr, addr))
    doubled = Trace(
        doubled_addrs, address_bits=trace.address_bits, name=f"{trace.name}+stutter"
    )
    base, derived = factory(trace), factory(doubled)
    violations: List[Violation] = []
    for budget in budgets:
        divergence = _result_divergence(
            derived.explore(budget), base.explore(budget)
        )
        if divergence is not None:
            violations.append(
                Violation(
                    law="stutter",
                    budget=budget,
                    detail=f"stuttered trace changed the result: {divergence}",
                )
            )
    return violations


def law_relabel_xor(
    trace: Trace,
    budgets: Sequence[int],
    factory: ExplorerFactory = _default_factory,
    constant: Optional[int] = None,
) -> List[Violation]:
    """XOR-relabeling every address preserves the whole miss grid."""
    if constant is None:
        # A constant touching both index and tag bits, inside the width.
        constant = ((1 << trace.address_bits) - 1) & 0b1010101010101
        if constant == 0:
            constant = 1
    mask = (1 << trace.address_bits) - 1
    relabeled = Trace(
        (addr ^ (constant & mask) for addr in trace),
        address_bits=trace.address_bits,
        name=f"{trace.name}^={constant:#x}",
    )
    base, derived = factory(trace), factory(relabeled)
    violations: List[Violation] = []
    for budget in budgets:
        divergence = _result_divergence(
            derived.explore(budget), base.explore(budget)
        )
        if divergence is not None:
            violations.append(
                Violation(
                    law="relabel",
                    budget=budget,
                    detail=f"XOR {constant:#x} changed the result: {divergence}",
                )
            )
    return violations


def law_concat(
    trace: Trace,
    budgets: Sequence[int],
    factory: ExplorerFactory = _default_factory,
) -> List[Violation]:
    """``t ++ t`` never loses misses at any probed ``(D, A)``."""
    doubled = trace.concat(trace, name=f"{trace.name}+concat")
    base, derived = factory(trace), factory(doubled)
    violations: List[Violation] = []
    for depth, assoc in _sample_points(base, budgets):
        before = base.misses(depth, assoc)
        after = _probe_misses(derived, depth, assoc)
        if after < before:
            violations.append(
                Violation(
                    law="concat",
                    detail=(
                        f"(D={depth}, A={assoc}): t++t has {after} misses, "
                        f"fewer than t's {before}"
                    ),
                )
            )
    return violations


def law_rotate(
    trace: Trace,
    budgets: Sequence[int],
    factory: ExplorerFactory = _default_factory,
    k: Optional[int] = None,
) -> List[Violation]:
    """Rotating k references changes any miss count by at most 2k."""
    if len(trace) < 2:
        return []
    if k is None:
        k = min(4, len(trace) - 1)
    addrs = list(trace)
    rotated = Trace(
        addrs[k:] + addrs[:k],
        address_bits=trace.address_bits,
        name=f"{trace.name}<<{k}",
    )
    base, derived = factory(trace), factory(rotated)
    violations: List[Violation] = []
    for depth, assoc in _sample_points(base, budgets):
        before = base.misses(depth, assoc)
        after = _probe_misses(derived, depth, assoc)
        if abs(after - before) > 2 * k:
            violations.append(
                Violation(
                    law="rotate",
                    detail=(
                        f"(D={depth}, A={assoc}): rotation by {k} moved "
                        f"misses {before} -> {after}, beyond the 2k={2 * k} "
                        f"bound"
                    ),
                )
            )
    return violations


#: All metamorphic laws, in the order the runner rotates through them.
METAMORPHIC_LAWS: Tuple[Tuple[str, Callable[..., List[Violation]]], ...] = (
    ("stutter", law_stutter),
    ("relabel", law_relabel_xor),
    ("concat", law_concat),
    ("rotate", law_rotate),
)


def check_laws(
    trace: Trace,
    budgets: Sequence[int],
    laws: Optional[Sequence[str]] = None,
    factory: ExplorerFactory = _default_factory,
) -> List[Violation]:
    """Run the named metamorphic laws (default: all) on one trace."""
    wanted = set(laws) if laws is not None else {n for n, _ in METAMORPHIC_LAWS}
    unknown = wanted - {name for name, _ in METAMORPHIC_LAWS}
    if unknown:
        raise ValueError(
            f"unknown law(s) {sorted(unknown)}; expected subset of "
            f"{[name for name, _ in METAMORPHIC_LAWS]}"
        )
    violations: List[Violation] = []
    for name, law in METAMORPHIC_LAWS:
        if name in wanted:
            violations.extend(law(trace, budgets, factory))
    return violations
