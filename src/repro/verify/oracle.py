"""The differential oracle grid: every engine x prelude x store warmth.

One corpus trace is run through every cell of the grid — each registered
histogram engine, under each prelude builder mode, both cold (no
artifact store) and warm (against a pre-populated store, so the codec
round-trip and the histogram short-circuit are on the tested path).  All
cells must produce *bit-identical* exploration results; the reference
cell (``serial`` engine, ``python`` prelude, cold) is additionally
checked against the cache simulator: every emitted ``(D, A)`` instance
must achieve exactly its predicted non-cold miss count, stay within the
budget, and be minimal (one associativity step below must exceed the
budget) — the paper's exactness claim, miss for miss.

A ``tamper`` hook lets the test suite corrupt a chosen cell's output to
prove the oracle catches (and the shrinker minimizes) an injected fault.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core import engines as _engines
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import ExplorationResult
from repro.core.validation import check_minimality, validate_instances
from repro.trace.trace import Trace

#: Every other cell is compared bit-for-bit against this one.
REFERENCE_CELL: "GridCell"

#: Tamper hook signature: receives the cell and the result it produced,
#: returns the (possibly corrupted) result to feed the comparison.
Tamper = Callable[["GridCell", ExplorationResult], ExplorationResult]


@dataclass(frozen=True)
class GridCell:
    """One oracle configuration: engine x prelude mode x store warmth."""

    engine: str
    prelude: str
    warmth: str  # "cold" | "warm"

    def label(self) -> str:
        return f"{self.engine}/{self.prelude}/{self.warmth}"


REFERENCE_CELL = GridCell("serial", "python", "cold")


def grid_cells(
    engines: Optional[Sequence[str]] = None,
    preludes: Optional[Sequence[str]] = None,
    include_warm: bool = True,
) -> Tuple[GridCell, ...]:
    """Enumerate the oracle grid, reference cell first.

    Defaults to every registered engine and every prelude mode; the
    reference cell is always present even when a subset is requested,
    because every comparison is against it.
    """
    engine_list = tuple(
        _engines.canonical_name(e)
        for e in (engines or _engines.engine_names(include_auto=False))
    )
    prelude_list = tuple(preludes or _engines.PRELUDE_MODES)
    for prelude in prelude_list:
        if prelude not in _engines.PRELUDE_MODES:
            raise ValueError(
                f"unknown prelude mode {prelude!r}; "
                f"expected one of {_engines.PRELUDE_MODES}"
            )
    warmths = ("cold", "warm") if include_warm else ("cold",)
    cells: List[GridCell] = [REFERENCE_CELL]
    for warmth in warmths:
        for engine in engine_list:
            for prelude in prelude_list:
                cell = GridCell(engine, prelude, warmth)
                if cell != REFERENCE_CELL:
                    cells.append(cell)
    return tuple(cells)


@dataclass(frozen=True)
class Divergence:
    """One oracle failure.

    Attributes:
        kind: ``"grid"`` (cells disagree), ``"simulator"`` (analytical
            prediction != simulated misses or budget exceeded),
            ``"minimality"`` (one associativity step below still meets
            the budget — the emitted A was not minimal), ``"stream"``
            (an incremental session fed the trace in chunks diverged
            from the batch engine on the concatenated trace) or
            ``"policy"`` (a policy engine's per-cell prediction diverged
            from the simulator under that replacement policy).
        cell: label of the diverging cell (grid failures only).
        budget: the miss budget the failing exploration ran at.
        detail: human-readable description of the mismatch.
    """

    kind: str
    detail: str
    cell: Optional[str] = None
    budget: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "cell": self.cell,
            "budget": self.budget,
        }


@dataclass
class GridOutcome:
    """Everything one trace's pass through the oracle grid produced."""

    trace_name: str
    budgets: Tuple[int, ...]
    cells_run: int
    divergences: List[Divergence] = field(default_factory=list)
    reference: Tuple[ExplorationResult, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.divergences


def result_signature(
    results: Sequence[ExplorationResult],
) -> Tuple[Tuple[int, Tuple[Tuple[int, int, int], ...]], ...]:
    """Canonical, comparable form of a per-budget result sequence."""
    return tuple(
        (
            result.budget,
            tuple(
                (inst.depth, inst.associativity, misses)
                for inst, misses in zip(result.instances, result.misses)
            ),
        )
        for result in results
    )


def _run_cell(
    trace: Trace,
    budgets: Sequence[int],
    cell: GridCell,
    store,
    processes: int,
    tamper: Optional[Tamper],
) -> List[ExplorationResult]:
    explorer = AnalyticalCacheExplorer(
        trace,
        engine=cell.engine,
        prelude=cell.prelude,
        processes=processes,
        store=store,
    )
    results = []
    for budget in budgets:
        result = explorer.explore(budget)
        if tamper is not None:
            result = tamper(cell, result)
        results.append(result)
    return results


def _simulator_divergences(
    trace: Trace, results: Sequence[ExplorationResult]
) -> List[Divergence]:
    """Check the reference results against the cache simulator."""
    divergences: List[Divergence] = []
    for result in results:
        for record in validate_instances(trace, result):
            if not record.exact:
                divergences.append(
                    Divergence(
                        kind="simulator",
                        budget=result.budget,
                        detail=(
                            f"{record.instance}: predicted "
                            f"{record.predicted_misses} non-cold misses, "
                            f"simulated {record.simulated.non_cold_misses}"
                        ),
                    )
                )
            elif not record.within_budget:
                divergences.append(
                    Divergence(
                        kind="simulator",
                        budget=result.budget,
                        detail=(
                            f"{record.instance}: simulated "
                            f"{record.simulated.non_cold_misses} non-cold "
                            f"misses exceeds budget {result.budget}"
                        ),
                    )
                )
        for record in check_minimality(trace, result):
            if not record.minimal:
                divergences.append(
                    Divergence(
                        kind="minimality",
                        budget=result.budget,
                        detail=(
                            f"{record.instance}: A-1="
                            f"{record.instance.associativity - 1} still "
                            f"meets the budget (simulated "
                            f"{record.misses_below} <= {record.budget})"
                        ),
                    )
                )
    return divergences


def random_chunk_splits(
    n: int, splits: int, seed: int
) -> List[List[Tuple[int, int]]]:
    """Seeded random chunkings of ``range(n)``: lists of (start, stop).

    Always includes the two boundary chunkings — one chunk per reference
    (maximal append count) and a lone whole-trace chunk — then ``splits``
    seeded random cuts.  Deterministic in ``(n, splits, seed)``.
    """
    if n == 0:
        return [[]]
    chunkings: List[List[Tuple[int, int]]] = [
        [(i, i + 1) for i in range(n)],
        [(0, n)],
    ]
    rng = random.Random((seed << 16) ^ n)
    for _ in range(max(0, splits)):
        cut_count = rng.randrange(1, min(n, 8) + 1)
        cuts = sorted(rng.sample(range(1, n + 1), cut_count) + [0, n])
        chunking = [
            (start, stop)
            for start, stop in zip(cuts, cuts[1:])
            if stop > start
        ]
        chunkings.append(chunking)
    return chunkings


def stream_divergences(
    trace: Trace,
    budgets: Sequence[int] = (0,),
    seed: int = 0,
    splits: int = 2,
) -> List[Divergence]:
    """The append-equivalence oracle: chunked sessions == batch engines.

    Feeds the trace to a :class:`repro.stream.TraceSession` under a
    seeded set of random chunk splits (plus the one-reference-per-append
    and single-append boundary chunkings) and requires, for every split:
    histograms after the final append bit-identical to the batch
    ``vectorized`` engine on the concatenated trace (``serial`` when
    NumPy is absent — the two are themselves differentially tested), and
    identical ``(D, A)`` answers at every budget.
    """
    from repro.core.postlude import optimal_pairs
    from repro.core.vectorized import numpy_available
    from repro.stream import TraceSession

    engine = "vectorized" if numpy_available() else "serial"
    inputs = _engines.EngineInputs(trace)
    batch = _engines.compute_histograms(engine, inputs)
    batch_counts = {level: dict(h.counts) for level, h in batch.items()}
    batch_answers = {
        budget: optimal_pairs(batch, budget) for budget in budgets
    }

    divergences: List[Divergence] = []
    addresses = list(trace.addresses)
    for chunking in random_chunk_splits(len(trace), splits, seed):
        session = TraceSession(trace.address_bits)
        for start, stop in chunking:
            session.append(addresses[start:stop])
        streamed = session.histograms()
        streamed_counts = {
            level: dict(h.counts) for level, h in streamed.items()
        }
        label = f"{len(chunking)} chunks"
        if streamed_counts != batch_counts:
            diff_levels = sorted(
                level
                for level in set(batch_counts) | set(streamed_counts)
                if batch_counts.get(level) != streamed_counts.get(level)
            )
            divergences.append(
                Divergence(
                    kind="stream",
                    cell=f"stream/{label}",
                    detail=(
                        f"session histograms diverge from batch {engine} "
                        f"at levels {diff_levels} after {label}"
                    ),
                )
            )
            continue
        for budget in budgets:
            answers = session.explore(budget)
            if answers != batch_answers[budget]:
                divergences.append(
                    Divergence(
                        kind="stream",
                        cell=f"stream/{label}",
                        budget=budget,
                        detail=(
                            f"session (D, A) answers diverge from batch "
                            f"{engine} at budget {budget} after {label}"
                        ),
                    )
                )
    return divergences


def policy_divergences(
    trace: Trace,
    budgets: Sequence[int] = (0,),
    policies: Sequence[str] = ("fifo",),
) -> List[Divergence]:
    """The policy oracle: policy engines == the simulator, cell by cell.

    For each requested non-LRU policy, *every* ``(D, A)`` cell the
    engine can answer — all report depths, associativities from 1 to one
    past the zero-miss bound — must match the cache simulator's non-cold
    miss count under that replacement policy bit for bit (the hybrid
    engine's exactness claim: analytical where exact, simulated
    elsewhere, never approximated).  Every instance the engine emits at
    each budget must also stay within budget and be minimal under the
    policy simulator.
    """
    from repro.cache.config import CacheConfig, ReplacementKind
    from repro.cache.simulator import simulate_trace

    divergences: List[Divergence] = []
    for policy in policies:
        if policy == "lru":
            continue  # LRU is the reference pipeline, covered above
        explorer = _engines.policy_explorer(policy, trace)
        replacement = ReplacementKind(policy)

        def measure(depth: int, assoc: int) -> int:
            config = CacheConfig(
                depth=depth,
                associativity=assoc,
                line_words=1,
                replacement=replacement,
            )
            return simulate_trace(trace, config).non_cold_misses

        label = f"policy/{policy}"
        for level in range(explorer.report_level + 1):
            depth = 1 << level
            zero = explorer.zero_miss_associativity(depth)
            for assoc in range(1, zero + 2):
                predicted = explorer.misses(depth, assoc)
                simulated = measure(depth, assoc)
                if predicted != simulated:
                    divergences.append(
                        Divergence(
                            kind="policy",
                            cell=label,
                            detail=(
                                f"(D={depth}, A={assoc}): {policy} engine "
                                f"predicts {predicted} non-cold misses, "
                                f"simulator measured {simulated}"
                            ),
                        )
                    )
        for budget in budgets:
            result = explorer.explore(budget)
            for inst, misses in zip(result.instances, result.misses):
                if misses > budget:
                    divergences.append(
                        Divergence(
                            kind="policy",
                            cell=label,
                            budget=budget,
                            detail=(
                                f"{inst}: {misses} non-cold misses "
                                f"exceeds budget {budget}"
                            ),
                        )
                    )
                if inst.associativity > 1:
                    below = measure(inst.depth, inst.associativity - 1)
                    if below <= budget:
                        divergences.append(
                            Divergence(
                                kind="policy",
                                cell=label,
                                budget=budget,
                                detail=(
                                    f"{inst}: A-1="
                                    f"{inst.associativity - 1} still meets "
                                    f"the budget under {policy} (simulated "
                                    f"{below} <= {budget})"
                                ),
                            )
                        )
    return divergences


def run_grid(
    trace: Trace,
    budgets: Sequence[int],
    cells: Optional[Sequence[GridCell]] = None,
    processes: int = 2,
    tamper: Optional[Tamper] = None,
    simulate: bool = True,
    recorder=None,
    stream_splits: int = 2,
    stream_seed: int = 0,
    policies: Sequence[str] = (),
) -> GridOutcome:
    """Run one trace through the oracle grid.

    Args:
        trace: the trace under test.
        budgets: absolute miss budgets to explore in every cell.
        cells: grid cells (default: the full grid); the reference cell
            is run first and must be present (``grid_cells`` guarantees
            it).
        processes: worker count for the ``parallel`` engine's cells.
        tamper: optional fault-injection hook (tests only).
        simulate: also cross-check the reference results against the
            cache simulator (exactness + budget + minimality).
        recorder: optional :class:`repro.obs.Recorder`; cell counts land
            in its counters.
        stream_splits: random chunk splits for the append-equivalence
            oracle (:func:`stream_divergences`); ``-1`` skips the
            stream check entirely (0 still runs the boundary
            chunkings).
        stream_seed: seed for the random chunk splits.
        policies: non-LRU replacement policies to run through the
            policy oracle (:func:`policy_divergences`); empty skips it.
    """
    cell_list = tuple(cells) if cells is not None else grid_cells()
    if not cell_list or cell_list[0] != REFERENCE_CELL:
        cell_list = (REFERENCE_CELL,) + tuple(
            c for c in cell_list if c != REFERENCE_CELL
        )
    outcome = GridOutcome(
        trace_name=trace.name, budgets=tuple(budgets), cells_run=0
    )
    reference_signature = None
    with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
        store = None
        if any(cell.warmth == "warm" for cell in cell_list):
            from repro.store import ArtifactStore

            store = ArtifactStore(tmp)
            # Pre-populate so every warm cell genuinely warm-starts: the
            # priming run is reference-configured and not a grid cell.
            _run_cell(
                trace, budgets, REFERENCE_CELL, store, processes, tamper=None
            )
        for cell in cell_list:
            cell_store = store if cell.warmth == "warm" else None
            results = _run_cell(
                trace, budgets, cell, cell_store, processes, tamper
            )
            outcome.cells_run += 1
            signature = result_signature(results)
            if cell == REFERENCE_CELL:
                reference_signature = signature
                outcome.reference = tuple(results)
                continue
            if signature != reference_signature:
                outcome.divergences.append(
                    Divergence(
                        kind="grid",
                        cell=cell.label(),
                        detail=(
                            f"cell {cell.label()} disagrees with "
                            f"{REFERENCE_CELL.label()}: {signature!r} != "
                            f"{reference_signature!r}"
                        ),
                    )
                )
    if simulate and outcome.reference:
        outcome.divergences.extend(
            _simulator_divergences(trace, outcome.reference)
        )
    if stream_splits >= 0:
        outcome.divergences.extend(
            stream_divergences(
                trace, budgets, seed=stream_seed, splits=stream_splits
            )
        )
    if policies:
        outcome.divergences.extend(
            policy_divergences(trace, budgets, policies=policies)
        )
    if recorder is not None:
        recorder.count("verify_cells", outcome.cells_run)
        recorder.count("verify_budgets", len(outcome.budgets))
        if outcome.divergences:
            recorder.count("verify_divergences", len(outcome.divergences))
    return outcome
