"""Adversarial trace corpus for the differential verification oracle.

The corpus is an ordered, seeded stream of :class:`CorpusEntry` items:
first the deterministic *anchor* entries — the paper's running example
(always entry 0, so the worked example is the first thing every fuzz run
re-proves) and a battery of boundary/pathological shapes — then an
unbounded tail of seeded random families built on
:mod:`repro.trace.synthetic`.  Everything is deterministic given the run
seed, so a corpus index in a failure report replays exactly.

Entries stay deliberately small (a few hundred references, narrow
address widths): the oracle runs every entry through the full
engine x prelude x store-warmth grid plus a cache simulation per emitted
instance, and small traces keep whole-grid coverage inside a tight time
budget while still exercising every structural edge the kernels have
(single reference, all-unique, ``N' == 1``, power-of-two stride aliasing,
bit-reversal, interleaved streams...).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.trace.stats import compute_statistics
from repro.trace.synthetic import (
    adversarial_lowbit_trace,
    interleaved_trace,
    loop_nest_trace,
    markov_trace,
    random_trace,
    sequential_trace,
    skewed_trace,
    strided_trace,
    zipf_trace,
)
from repro.trace.trace import Trace

#: The paper's Table 1 trace — ids [1,2,3,4,1,5,2,4,1,3] over the unique
#: references 1011, 1100, 0110, 0011, 0100.  Kept in sync with
#: ``tests/conftest.py`` by a test.
PAPER_TRACE_BITS = (
    "1011", "1100", "0110", "0011", "1011",
    "0100", "1100", "0011", "1011", "0110",
)


def paper_trace() -> Trace:
    """The paper's running example (corpus entry 0, always)."""
    return Trace.from_bit_strings(PAPER_TRACE_BITS, name="paper-table-1")


@dataclass(frozen=True)
class CorpusEntry:
    """One verification input: a trace plus the miss budgets to explore.

    Attributes:
        name: stable human-readable label (appears in failure reports).
        trace: the trace under test.
        budgets: absolute miss budgets K the oracle explores; always
            includes 0 (the paper's strictest setting).
        origin: ``"anchor"`` for deterministic fixed entries,
            ``"fuzz"`` for the seeded random tail, ``"corpus"`` for
            entries replayed from a failure corpus.
    """

    name: str
    trace: Trace
    budgets: Tuple[int, ...] = field(default=(0,))
    origin: str = "anchor"


def default_budgets(trace: Trace) -> Tuple[int, ...]:
    """Budgets for a trace: 0, plus 10% and 40% of its maximum misses.

    Deduplicated and sorted; a trace whose max misses are tiny simply
    explores fewer distinct budgets.
    """
    stats = compute_statistics(trace)
    return tuple(sorted({0, stats.budget(10.0), stats.budget(40.0)}))


def _entry(name: str, trace: Trace, origin: str = "anchor") -> CorpusEntry:
    return CorpusEntry(
        name=name, trace=trace, budgets=default_budgets(trace), origin=origin
    )


def _bit_reversal_trace(bits: int) -> Trace:
    """Every address of a ``bits``-wide space, in bit-reversed order.

    Bit-reversal maximally scrambles the low/high bit correlation the
    BCAT splits on, so consecutive references alias at every depth.
    """
    size = 1 << bits
    addresses = []
    for value in range(size):
        rev = 0
        for bit in range(bits):
            if value & (1 << bit):
                rev |= 1 << (bits - 1 - bit)
        addresses.append(rev)
    return Trace(addresses * 2, address_bits=bits, name=f"bitrev-{bits}")


def _sawtooth_trace(footprint: int, sweeps: int) -> Trace:
    """Up-down sweeps ``0..n-1, n-1..0, ...`` — LRU's classic adversary."""
    up = list(range(footprint))
    body = up + up[::-1]
    return Trace(body * sweeps, name=f"sawtooth-{footprint}x{sweeps}")


def _pingpong_trace(span_bits: int, rounds: int) -> Trace:
    """Two addresses identical in every low bit — conflict at all depths."""
    low, high = 0, 1 << (span_bits - 1)
    return Trace(
        [low, high] * rounds, address_bits=span_bits, name=f"pingpong-{span_bits}"
    )


def _transpose_trace(rows: int, cols: int) -> Trace:
    """Row-major then column-major sweep of a ``rows x cols`` array."""
    row_major = [r * cols + c for r in range(rows) for c in range(cols)]
    col_major = [r * cols + c for c in range(cols) for r in range(rows)]
    return Trace(row_major + col_major, name=f"transpose-{rows}x{cols}")


def anchor_entries() -> List[CorpusEntry]:
    """The deterministic corpus prefix, paper example first.

    Covers the boundary shapes the kernels special-case: single
    reference, ``N' == 1`` (including at a wide bit-width, which
    stresses the packed-matrix header), all-unique streams, power-of-two
    stride aliasing, bit reversal, sawtooth, ping-pong conflicts and a
    transpose pattern.
    """
    entries = [
        _entry("paper-table-1", paper_trace()),
        _entry("single-reference", Trace([5], name="single-reference")),
        _entry("single-unique-n1", Trace([3] * 12, name="single-unique-n1")),
        _entry(
            "single-unique-wide",
            Trace([1 << 15] * 8, address_bits=16, name="single-unique-wide"),
        ),
        _entry("two-alternating", Trace([0, 1] * 10, name="two-alternating")),
        _entry("all-unique", sequential_trace(48)),
        _entry("stride-pow2", strided_trace(40, stride=8)),
        _entry("stride-odd", strided_trace(40, stride=7)),
        _entry("bit-reversal", _bit_reversal_trace(5)),
        _entry("sawtooth", _sawtooth_trace(9, 6)),
        _entry("pingpong", _pingpong_trace(6, 12)),
        _entry("transpose", _transpose_trace(6, 8)),
        _entry("loop-nest", loop_nest_trace(12, 8)),
        _entry(
            "adversarial-lowbit",
            adversarial_lowbit_trace(160, low_bits=4, footprint=12, seed=11),
        ),
        _entry(
            "skewed-hot-cold",
            skewed_trace(200, footprint=24, hot_fraction=0.2, skew=0.85, seed=13),
        ),
        _entry(
            "nested-loops",
            interleaved_trace(
                [loop_nest_trace(6, 12), strided_trace(72, stride=4, start=64)],
                name="nested-loops",
            ),
        ),
    ]
    return entries


def _fuzz_entry(index: int, seed: int) -> CorpusEntry:
    """The ``index``-th seeded random entry (deterministic in seed)."""
    rng = random.Random((seed << 20) ^ index)
    family = index % 8
    length = rng.randrange(48, 400)
    footprint = rng.randrange(2, 48)
    if family == 0:
        trace = random_trace(length, footprint, seed=rng.randrange(1 << 30))
    elif family == 1:
        trace = zipf_trace(
            length,
            footprint,
            exponent=rng.choice((0.5, 1.0, 1.5)),
            seed=rng.randrange(1 << 30),
        )
    elif family == 2:
        trace = markov_trace(
            length,
            footprint,
            locality=rng.choice((0.5, 0.8, 0.95)),
            seed=rng.randrange(1 << 30),
        )
    elif family == 3:
        trace = loop_nest_trace(footprint, max(1, length // footprint))
    elif family == 4:
        trace = strided_trace(length, stride=rng.choice((2, 3, 4, 8, 16)))
    elif family == 5:
        trace = adversarial_lowbit_trace(
            length,
            low_bits=rng.choice((2, 3, 4, 5)),
            footprint=footprint,
            ratio=rng.choice((0.25, 0.5, 0.75)),
            seed=rng.randrange(1 << 30),
        )
    elif family == 6:
        trace = skewed_trace(
            length,
            footprint,
            hot_fraction=rng.choice((0.1, 0.25, 0.5)),
            skew=rng.choice((0.6, 0.85, 0.95)),
            seed=rng.randrange(1 << 30),
        )
    else:
        parts = [
            random_trace(length // 2, footprint, seed=rng.randrange(1 << 30)),
            loop_nest_trace(max(2, footprint // 2), max(1, length // footprint)),
        ]
        trace = interleaved_trace(parts, name="interleaved-fuzz")
    name = f"fuzz-{index:04d}-{trace.name}"
    return CorpusEntry(
        name=name,
        trace=trace,
        budgets=default_budgets(trace),
        origin="fuzz",
    )


def corpus_stream(seed: int = 0) -> Iterator[CorpusEntry]:
    """The full corpus: anchors first, then an unbounded seeded fuzz tail."""
    for entry in anchor_entries():
        yield entry
    index = 0
    while True:
        yield _fuzz_entry(index, seed)
        index += 1
