"""The failure corpus: persisted crash artifacts, replayed before fuzzing.

Every oracle failure is saved as a *crash artifact* — the (shrunk) trace
plus a JSON manifest naming what failed (grid cell, law, budgets) — in a
flat directory keyed by the trace digest.  Future verification runs
replay the corpus first, so a once-found bug is pinned forever with zero
generator luck required.

Layout::

    <corpus>/<kind>-<digest12>/trace.trace   # text trace, one hex/line
    <corpus>/<kind>-<digest12>/crash.json    # schema repro-verify-crash/1

The corpus also ships built-in *regression entries* — the trickiest
known boundary shapes (single reference, all-unique, ``N' == 1`` at a
wide bit-width, budget 0) — which :func:`seed_regression_corpus`
materializes as artifacts so even a fresh corpus directory replays them
through the full grid.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.trace.io import read_trace, write_trace
from repro.trace.synthetic import sequential_trace
from repro.trace.trace import Trace
from repro.verify.generators import CorpusEntry

#: Crash artifact manifest schema identifier.
CRASH_SCHEMA = "repro-verify-crash/1"

#: Environment variable selecting the default corpus directory.
CORPUS_DIR_ENV = "REPRO_VERIFY_CORPUS"

#: Default corpus directory (relative to the working directory).
DEFAULT_CORPUS_DIR = ".repro-verify-corpus"


def default_corpus_dir() -> str:
    """The corpus directory: ``$REPRO_VERIFY_CORPUS`` or a local default."""
    return os.environ.get(CORPUS_DIR_ENV) or DEFAULT_CORPUS_DIR


@dataclass
class CrashArtifact:
    """One persisted failure: a reproducer trace plus its context.

    Attributes:
        kind: failure kind (``grid``/``simulator``/``minimality``/
            ``invariant``/``regression``).
        name: the corpus entry name that originally failed.
        trace: the (shrunk) reproducer.
        budgets: miss budgets the failure ran at.
        cell: diverging grid cell label, when applicable.
        law: violated invariant name, when applicable.
        detail: human-readable failure description.
        shrunk_from: original trace length before shrinking (None when
            the artifact was never shrunk, e.g. regression seeds).
        seed: the verification run's seed, for provenance.
        mtime: the on-disk manifest's modification time (0.0 for
            artifacts not yet saved); drives newest-first replay.
    """

    kind: str
    name: str
    trace: Trace
    budgets: Tuple[int, ...] = (0,)
    cell: Optional[str] = None
    law: Optional[str] = None
    detail: str = ""
    shrunk_from: Optional[int] = None
    seed: Optional[int] = None
    path: Optional[str] = field(default=None, compare=False)
    mtime: float = field(default=0.0, compare=False)

    def manifest_dict(self) -> dict:
        return {
            "schema": CRASH_SCHEMA,
            "kind": self.kind,
            "name": self.name,
            "budgets": list(self.budgets),
            "cell": self.cell,
            "law": self.law,
            "detail": self.detail,
            "trace_len": len(self.trace),
            "address_bits": self.trace.address_bits,
            "shrunk_from": self.shrunk_from,
            "seed": self.seed,
        }

    def as_entry(self) -> CorpusEntry:
        """This artifact as a corpus entry the runner can replay."""
        return CorpusEntry(
            name=self.name,
            trace=self.trace,
            budgets=self.budgets,
            origin="corpus",
        )


def _artifact_id(artifact: CrashArtifact) -> str:
    from repro.store.keys import trace_digest

    return f"{artifact.kind}-{trace_digest(artifact.trace)[:12]}"


def save_crash(root: str, artifact: CrashArtifact) -> str:
    """Persist one crash artifact; returns its directory.

    Idempotent: the same (kind, trace) pair lands in the same directory,
    so replayed failures never duplicate entries.
    """
    entry_dir = os.path.join(root, _artifact_id(artifact))
    os.makedirs(entry_dir, exist_ok=True)
    write_trace(artifact.trace, os.path.join(entry_dir, "trace.trace"))
    with open(
        os.path.join(entry_dir, "crash.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump(artifact.manifest_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    artifact.path = entry_dir
    artifact.mtime = os.path.getmtime(os.path.join(entry_dir, "crash.json"))
    return entry_dir


def load_corpus(root: str) -> List[CrashArtifact]:
    """Load every crash artifact under ``root``, newest first.

    Newest-first (manifest mtime descending, directory name ascending as
    the tiebreak) so that when ``--max-traces`` or a time budget caps
    the replay, *recently found* failures are always reached — name
    order replays digest-alphabetically and could starve a fresh crash
    behind old regression seeds forever.  Still deterministic for a
    given on-disk state.

    Unreadable entries are skipped rather than failing the whole replay:
    a corrupt artifact must never mask the healthy rest of the corpus.
    """
    artifacts: List[CrashArtifact] = []
    if not os.path.isdir(root):
        return artifacts
    for entry in sorted(os.listdir(root)):
        entry_dir = os.path.join(root, entry)
        manifest_path = os.path.join(entry_dir, "crash.json")
        trace_path = os.path.join(entry_dir, "trace.trace")
        if not (os.path.isfile(manifest_path) and os.path.isfile(trace_path)):
            continue
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
            if manifest.get("schema") != CRASH_SCHEMA:
                continue
            trace = read_trace(trace_path)
            mtime = os.path.getmtime(manifest_path)
        except (OSError, ValueError, json.JSONDecodeError):
            continue
        trace = Trace(
            trace,
            address_bits=int(manifest.get("address_bits") or trace.address_bits),
            name=str(manifest.get("name") or entry),
        )
        artifacts.append(
            CrashArtifact(
                kind=str(manifest.get("kind", "unknown")),
                name=str(manifest.get("name", entry)),
                trace=trace,
                budgets=tuple(int(k) for k in manifest.get("budgets", (0,))),
                cell=manifest.get("cell"),
                law=manifest.get("law"),
                detail=str(manifest.get("detail", "")),
                shrunk_from=manifest.get("shrunk_from"),
                seed=manifest.get("seed"),
                path=entry_dir,
                mtime=mtime,
            )
        )
    artifacts.sort(key=lambda artifact: (-artifact.mtime, artifact.path or ""))
    return artifacts


def regression_entries() -> List[CorpusEntry]:
    """The trickiest known edges, pinned as budget-0 regression inputs.

    These shapes each broke (or nearly broke) a kernel during the fast
    prelude and vectorized-postlude work: a single reference (empty
    MRCT), an all-unique stream (no non-cold misses at all), one unique
    address at a wide bit width (``N' == 1`` packed-matrix header), and
    the two-address full-depth conflict at budget 0.
    """
    return [
        CorpusEntry("reg-single-reference", Trace([0], name="reg-single-reference")),
        CorpusEntry("reg-all-unique", sequential_trace(32)),
        CorpusEntry(
            "reg-n1-wide-bits",
            Trace([1 << 15] * 6, address_bits=16, name="reg-n1-wide-bits"),
        ),
        CorpusEntry(
            "reg-budget0-conflict",
            Trace([0, 16, 0, 16, 0, 16], address_bits=5, name="reg-budget0-conflict"),
        ),
    ]


def seed_regression_corpus(root: str, seed: Optional[int] = None) -> int:
    """Write the built-in regression entries into a corpus directory.

    Returns the number of artifacts written; idempotent.
    """
    count = 0
    for entry in regression_entries():
        save_crash(
            root,
            CrashArtifact(
                kind="regression",
                name=entry.name,
                trace=entry.trace,
                budgets=entry.budgets,
                detail="built-in regression seed (known-tricky edge shape)",
                seed=seed,
            ),
        )
        count += 1
    return count
