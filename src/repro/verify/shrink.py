"""Trace shrinking: reduce a failing trace to a minimal reproducer.

Classic delta debugging (ddmin) over the reference sequence — try
dropping large chunks first, halving the chunk size as removals stop
helping — followed by an address-canonicalization pass that renames the
surviving addresses to the densest possible set (first-occurrence rank),
which both shrinks the address width and makes reproducers comparable
across runs.

The predicate receives a candidate :class:`Trace` and returns True when
the candidate *still fails* (still diverges, still violates the law).
Shrinking is deterministic and budget-capped: it stops after
``max_checks`` predicate evaluations or when ``deadline`` (a
``time.monotonic`` instant) passes, returning the best trace found so
far — a shrink that runs out of budget still returns a valid (possibly
non-minimal) reproducer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.trace.trace import Trace

Predicate = Callable[[Trace], bool]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run.

    Attributes:
        trace: the smallest still-failing trace found.
        checks: predicate evaluations spent.
        exhausted: True when the budget (checks or deadline) ran out
            before reaching a local minimum.
    """

    trace: Trace
    checks: int
    exhausted: bool = False


class _Budget:
    def __init__(self, max_checks: int, deadline: Optional[float]) -> None:
        self.max_checks = max_checks
        self.deadline = deadline
        self.checks = 0

    def spent(self) -> bool:
        return self.checks >= self.max_checks or (
            self.deadline is not None and time.monotonic() >= self.deadline
        )


def _rebuild(addresses: List[int], name: str) -> Trace:
    """A candidate trace; the width re-derives from the addresses left."""
    return Trace(addresses, name=name)


def _canonicalize(addresses: List[int]) -> List[int]:
    """Rename addresses to their first-occurrence rank (0, 1, 2, ...)."""
    rank = {}
    out = []
    for addr in addresses:
        if addr not in rank:
            rank[addr] = len(rank)
        out.append(rank[addr])
    return out


def shrink_trace(
    trace: Trace,
    predicate: Predicate,
    max_checks: int = 400,
    deadline: Optional[float] = None,
    name: Optional[str] = None,
) -> ShrinkResult:
    """Minimize ``trace`` while ``predicate`` keeps failing.

    The input trace is assumed to fail (the caller observed the failure);
    the result is guaranteed to fail too — every accepted reduction was
    re-checked through the predicate.
    """
    label = name if name is not None else (trace.name or "shrunk")
    budget = _Budget(max_checks, deadline)
    current = list(trace)

    def still_fails(candidate: List[int]) -> bool:
        if not candidate:
            return False
        budget.checks += 1
        return predicate(_rebuild(candidate, label))

    # ddmin: drop chunks, from halves down to single references.
    chunks = 2
    while len(current) > 1 and not budget.spent():
        size = max(1, len(current) // chunks)
        reduced = False
        start = 0
        while start < len(current) and not budget.spent():
            candidate = current[:start] + current[start + size:]
            if candidate and still_fails(candidate):
                current = candidate
                reduced = True
                # Same start now addresses the next chunk.
            else:
                start += size
        if reduced:
            chunks = max(2, chunks - 1)
        elif size == 1:
            break  # single-reference granularity, nothing removable
        else:
            chunks = min(len(current), chunks * 2)

    # Canonicalize the surviving addresses if the failure survives it.
    canonical = _canonicalize(current)
    if canonical != current and not budget.spent():
        if still_fails(canonical):
            current = canonical

    return ShrinkResult(
        trace=_rebuild(current, label),
        checks=budget.checks,
        exhausted=budget.spent() and len(current) > 1,
    )
