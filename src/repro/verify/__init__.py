"""repro.verify — differential verification: fuzzing oracle + invariants.

The standing correctness tooling for the analytical pipeline: a seeded
adversarial trace corpus (:mod:`repro.verify.generators`), an oracle
grid running every engine x prelude mode x store warmth bit-identically
against each other and exactly against the cache simulator
(:mod:`repro.verify.oracle`), simulator-free metamorphic invariants
(:mod:`repro.verify.invariants`), delta-debugging trace shrinking
(:mod:`repro.verify.shrink`) and a persisted failure corpus replayed
ahead of every run (:mod:`repro.verify.corpus`) — orchestrated by
:func:`repro.verify.runner.run_verify` and exposed as ``repro verify``
on the command line.
"""

from repro.verify.corpus import (
    CrashArtifact,
    default_corpus_dir,
    load_corpus,
    regression_entries,
    save_crash,
    seed_regression_corpus,
)
from repro.verify.generators import (
    CorpusEntry,
    anchor_entries,
    corpus_stream,
    default_budgets,
    paper_trace,
)
from repro.verify.invariants import (
    METAMORPHIC_LAWS,
    Violation,
    check_laws,
    structural_violations,
)
from repro.verify.oracle import (
    REFERENCE_CELL,
    Divergence,
    GridCell,
    GridOutcome,
    grid_cells,
    policy_divergences,
    run_grid,
    stream_divergences,
)
from repro.verify.runner import (
    LAW_MODES,
    REPORT_SCHEMA,
    VerifyConfig,
    VerifyFailure,
    VerifyReport,
    run_verify,
)
from repro.verify.shrink import ShrinkResult, shrink_trace

__all__ = [
    "METAMORPHIC_LAWS",
    "LAW_MODES",
    "REFERENCE_CELL",
    "REPORT_SCHEMA",
    "CorpusEntry",
    "CrashArtifact",
    "Divergence",
    "GridCell",
    "GridOutcome",
    "ShrinkResult",
    "VerifyConfig",
    "VerifyFailure",
    "VerifyReport",
    "Violation",
    "anchor_entries",
    "check_laws",
    "corpus_stream",
    "default_budgets",
    "default_corpus_dir",
    "grid_cells",
    "load_corpus",
    "paper_trace",
    "policy_divergences",
    "regression_entries",
    "run_grid",
    "stream_divergences",
    "run_verify",
    "save_crash",
    "seed_regression_corpus",
    "shrink_trace",
    "structural_violations",
]
