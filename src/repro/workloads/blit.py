"""``blit`` — bit-block transfer (PowerStone ``blit``).

ORs a source bitmap into a destination bitmap at a sub-word bit offset:
every destination word combines the tail of one source word with the head
of the next, the classic shift-and-merge blit inner loop.  Access
pattern: two parallel streaming buffers with short-distance reuse of the
carry word.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_DEFAULT_ROWS = 48
_ROW_WORDS = 16
_SHIFT = 5


def golden(src: List[int], dst: List[int], rows: int, row_words: int, shift: int) -> int:
    """Checksum of the destination bitmap after the OR-blit."""
    dst = list(dst)
    for row in range(rows):
        base = row * row_words
        carry = 0
        for col in range(row_words):
            value = src[base + col]
            dst[base + col] |= carry | (value >> shift)
            carry = (value << (32 - shift)) & WORD_MASK
        # Final carry word of the row spills into the row's extra slot.
        dst[rows * row_words + row] |= carry
    checksum = 0
    for word in dst:
        checksum = (checksum + word) & WORD_MASK
    return checksum


def build(scale: str = "default") -> Workload:
    """Build the blit workload at a given scale."""
    rows = scaled(_DEFAULT_ROWS, scale)
    src = LCG(seed=0xB117).words(rows * _ROW_WORDS)
    dst = LCG(seed=0xD57).words(rows * _ROW_WORDS + rows)
    total_dst = rows * _ROW_WORDS + rows
    source = f"""
; blit: OR-merge a {rows}x{_ROW_WORDS}-word bitmap shifted by {_SHIFT} bits
        .equ ROWS, {rows}
        .equ ROWWORDS, {_ROW_WORDS}
        .equ SHIFT, {_SHIFT}
        .equ TOTALDST, {total_dst}
        .data
src:
{words_directive(src)}
dst:
{words_directive(dst)}
result: .word 0
        .text
main:   li   r1, 0              ; row
        li   r10, ROWS
        li   r11, ROWWORDS
rowlp:  mul  r2, r1, r11        ; row base
        li   r3, 0              ; col
        li   r4, 0              ; carry
collp:  add  r5, r2, r3         ; word index
        lw   r6, src(r5)
        srli r7, r6, SHIFT
        or   r7, r7, r4         ; merged word
        lw   r8, dst(r5)
        or   r8, r8, r7
        sw   r8, dst(r5)
        slli r4, r6, 32-SHIFT   ; next carry
        inc  r3
        blt  r3, r11, collp
        ; spill the final carry into the row's overflow slot
        mul  r5, r10, r11
        add  r5, r5, r1
        lw   r8, dst(r5)
        or   r8, r8, r4
        sw   r8, dst(r5)
        inc  r1
        blt  r1, r10, rowlp
        ; checksum the destination
        li   r1, 0
        li   r2, 0
        li   r10, TOTALDST
chklp:  lw   r3, dst(r1)
        add  r2, r2, r3
        inc  r1
        blt  r1, r10, chklp
        sw   r2, result
        halt
"""
    return Workload(
        name="blit",
        description="shift-and-merge bit-block transfer",
        source=source,
        expected=golden(src, dst, rows, _ROW_WORDS, _SHIFT),
        scale=scale,
        params={"rows": rows, "row_words": _ROW_WORDS, "shift": _SHIFT},
    )
