"""``bcnt`` — bit counting via byte lookup table (PowerStone ``bcnt``).

Counts the set bits of a word buffer by splitting each word into four
bytes and summing a 256-entry population-count table — the pattern the
original PowerStone kernel uses.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_DEFAULT_WORDS = 512


def popcount_table() -> List[int]:
    """256-entry byte population-count table."""
    return [bin(i).count("1") for i in range(256)]


def golden(data: List[int]) -> int:
    """Total set bits across all words."""
    return sum(bin(word & WORD_MASK).count("1") for word in data) & WORD_MASK


def build(scale: str = "default") -> Workload:
    """Build the bcnt workload at a given scale."""
    count = scaled(_DEFAULT_WORDS, scale)
    data = LCG(seed=0xBC7).words(count)
    source = f"""
; bcnt: population count of {count} words via byte lookup table
        .equ N, {count}
        .data
tab:
{words_directive(popcount_table())}
data:
{words_directive(data)}
result: .word 0
        .text
main:   li   r1, 0              ; word index
        li   r2, 0              ; total
        li   r8, N
loop:   lw   r3, data(r1)
        andi r4, r3, 0xFF       ; byte 0
        lw   r5, tab(r4)
        add  r2, r2, r5
        srli r3, r3, 8
        andi r4, r3, 0xFF       ; byte 1
        lw   r5, tab(r4)
        add  r2, r2, r5
        srli r3, r3, 8
        andi r4, r3, 0xFF       ; byte 2
        lw   r5, tab(r4)
        add  r2, r2, r5
        srli r3, r3, 8          ; byte 3
        lw   r5, tab(r3)
        add  r2, r2, r5
        inc  r1
        blt  r1, r8, loop
        sw   r2, result
        halt
"""
    return Workload(
        name="bcnt",
        description="bit counting via byte lookup table",
        source=source,
        expected=golden(data),
        scale=scale,
        params={"words": count},
    )
