"""``pocsag`` — POCSAG paging protocol BCH decoder (PowerStone ``pocsag``).

POCSAG codewords are BCH(31,21) protected: 21 message bits, 10 check bits
from the generator polynomial ``x^10+x^9+x^8+x^6+x^5+x^3+1`` (0x769).
The kernel computes the syndrome of each received codeword by bit-serial
polynomial division and counts corrupted words — a branchy shift/XOR
inner loop over a streaming buffer, faithful to the PowerStone original.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_GENERATOR = 0x769  # x^10+x^9+x^8+x^6+x^5+x^3+1
_DEFAULT_CODEWORDS = 192


def bch_encode(message: int) -> int:
    """Append the 10 BCH check bits to a 21-bit message."""
    if not 0 <= message < (1 << 21):
        raise ValueError("message must be 21 bits")
    remainder = message << 10
    for bit in range(30, 9, -1):
        if remainder & (1 << bit):
            remainder ^= _GENERATOR << (bit - 10)
    return (message << 10) | (remainder & 0x3FF)


def syndrome(codeword: int) -> int:
    """Bit-serial BCH syndrome of a 31-bit codeword (0 when valid)."""
    remainder = codeword
    for bit in range(30, 9, -1):
        if remainder & (1 << bit):
            remainder ^= _GENERATOR << (bit - 10)
    return remainder & 0x3FF


def make_codewords(count: int) -> List[int]:
    """Valid BCH codewords with every third one corrupted by a bit flip."""
    rng = LCG(seed=0x9C5A)
    words = []
    for i in range(count):
        codeword = bch_encode(rng.below(1 << 21))
        if i % 3 == 2:
            codeword ^= 1 << rng.below(31)
        words.append(codeword)
    return words


def golden(codewords: List[int]) -> int:
    """(error count << 16) XOR running syndrome mix."""
    errors = 0
    mix = 0
    for codeword in codewords:
        s = syndrome(codeword)
        if s:
            errors += 1
        mix = (mix * 5 + s) & 0xFFFF
    return ((errors << 16) ^ mix) & WORD_MASK


def build(scale: str = "default") -> Workload:
    """Build the pocsag workload at a given scale."""
    count = scaled(_DEFAULT_CODEWORDS, scale)
    codewords = make_codewords(count)
    source = f"""
; pocsag: BCH(31,21) syndrome check of {count} codewords
; phase 1 stores per-word syndromes, phase 2 scans them for errors --
; the two-pass structure a batch pager decoder uses per frame.
        .equ N, {count}
        .equ GEN, {_GENERATOR}
        .data
words:
{words_directive(codewords)}
synd:   .space N
result: .word 0
        .text
main:   li   r1, 0              ; codeword index
        li   r3, 0              ; syndrome mix
        li   r10, N
        li   r11, GEN
wloop:  lw   r4, words(r1)      ; remainder
        li   r5, 30             ; bit index
bloop:  srl  r6, r4, r5
        andi r6, r6, 1
        beqz r6, skip
        addi r7, r5, -10
        sll  r8, r11, r7
        xor  r4, r4, r8
skip:   dec  r5
        li   r9, 10
        bge  r5, r9, bloop
        andi r4, r4, 0x3FF      ; syndrome
        sw   r4, synd(r1)
        li   r9, 5
        mul  r3, r3, r9
        add  r3, r3, r4
        andi r3, r3, 0xFFFF
        inc  r1
        blt  r1, r10, wloop
        ; phase 2: count corrupted codewords from the syndrome array
        li   r1, 0
        li   r2, 0              ; error count
errlp:  lw   r4, synd(r1)
        beqz r4, errok
        inc  r2
errok:  inc  r1
        blt  r1, r10, errlp
        slli r2, r2, 16
        xor  r2, r2, r3
        sw   r2, result
        halt
"""
    return Workload(
        name="pocsag",
        description="POCSAG BCH(31,21) syndrome decoder",
        source=source,
        expected=golden(codewords),
        scale=scale,
        params={"codewords": count},
    )
