"""Shared infrastructure for the PowerStone-style workloads.

Each workload module provides ``build(scale) -> Workload``: an assembly
program, a golden result computed by a pure-Python model of the same
algorithm, and the data label where the kernel deposits its checksum.
Running the kernel on the VM and comparing against the golden result
proves the machine executed the algorithm faithfully — only then are its
traces trusted as experiment inputs.

Input data is generated with a deterministic 32-bit LCG so every build of
a workload is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.isa.assembler import assemble
from repro.isa.machine import Machine
from repro.trace.trace import Trace

WORD_MASK = 0xFFFFFFFF

#: Scale factors applied to each workload's default input size.
SCALES: Dict[str, float] = {"tiny": 0.125, "small": 0.5, "default": 1.0, "large": 2.0}


class LCG:
    """Deterministic 32-bit linear congruential generator (Numerical Recipes)."""

    def __init__(self, seed: int = 2003) -> None:
        self.state = seed & WORD_MASK

    def next(self) -> int:
        """Next raw 32-bit value."""
        self.state = (self.state * 1664525 + 1013904223) & WORD_MASK
        return self.state

    def below(self, bound: int) -> int:
        """Uniform-ish value in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next() % bound

    def words(self, count: int, bound: int = 1 << 32) -> List[int]:
        """A list of ``count`` values in ``[0, bound)``."""
        return [self.below(bound) for _ in range(count)]


def scaled(value: int, scale: str, minimum: int = 4) -> int:
    """Apply a named scale factor to a default size."""
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; expected one of {sorted(SCALES)}")
    return max(minimum, int(value * SCALES[scale]))


def words_directive(values: Iterable[int], per_line: int = 8) -> str:
    """Render values as ``.word`` lines (wrapping for readability)."""
    values = [v & WORD_MASK for v in values]
    if not values:
        raise ValueError("at least one word is required")
    lines = []
    for start in range(0, len(values), per_line):
        chunk = ", ".join(str(v) for v in values[start : start + per_line])
        lines.append(f"        .word {chunk}")
    return "\n".join(lines)


@dataclass
class Workload:
    """One benchmark kernel: program source plus its golden result.

    Attributes:
        name: kernel name (matches the paper's benchmark names).
        description: one-line summary of what the kernel computes.
        source: assembly source text.
        expected: golden checksum the kernel must deposit at
            ``result_symbol``.
        result_symbol: data label holding the kernel's checksum.
        scale: the scale the workload was built at.
        params: input-size parameters, for reporting.
    """

    name: str
    description: str
    source: str
    expected: int
    result_symbol: str = "result"
    scale: str = "default"
    params: Dict[str, int] = field(default_factory=dict)


@dataclass
class WorkloadRun:
    """A verified execution of a workload on the VM.

    Attributes:
        workload: the workload that ran.
        machine: the halted machine (registers/memory inspectable).
        instruction_trace: fetch-address trace.
        data_trace: data-address trace (kinds preserved).
        checksum: the value the kernel deposited.
    """

    workload: Workload
    machine: Machine
    instruction_trace: Trace
    data_trace: Trace
    checksum: int

    @property
    def verified(self) -> bool:
        """True when the kernel's checksum matches the golden model."""
        return self.checksum == self.workload.expected

    @property
    def unified_trace(self) -> Trace:
        """Instruction and data accesses merged in program order."""
        return self.machine.combined_trace(f"{self.workload.name}.unified")


def run_workload(
    workload: Workload,
    cycle_limit: int = 20_000_000,
    trace: bool = True,
) -> WorkloadRun:
    """Assemble, execute and verify a workload.

    Raises:
        AssertionError: when the kernel's checksum disagrees with the
            golden model — the traces of a mis-executing kernel are
            meaningless, so this is fatal by design.
    """
    program = assemble(workload.source, name=workload.name)
    machine = Machine(program, cycle_limit=cycle_limit, trace=trace)
    machine.run()
    checksum = machine.read_symbol(workload.result_symbol)
    if checksum != workload.expected:
        raise AssertionError(
            f"workload {workload.name!r} checksum mismatch: kernel produced "
            f"{checksum:#010x}, golden model expects {workload.expected:#010x}"
        )
    return WorkloadRun(
        workload=workload,
        machine=machine,
        instruction_trace=machine.instruction_trace(f"{workload.name}.inst"),
        data_trace=machine.data_trace(f"{workload.name}.data"),
        checksum=checksum,
    )
