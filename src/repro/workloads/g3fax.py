"""``g3fax`` — Group 3 fax run-length decoder (PowerStone ``g3fax``).

Decodes run-length codes into 1728-bit scanlines: each code indexes a
run-length table, and black runs are painted into the line buffer with
word-granular mask fills.  Access pattern: a streaming code buffer, a hot
run table, and repeated read-modify-write sweeps over a small line
buffer — the structure of the real modified-Huffman decoder with the
Huffman bit-unpacking replaced by table codes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_WIDTH = 1728  # standard G3 scanline width in pixels
_LINE_WORDS = _WIDTH // 32
_RUN_TABLE_SIZE = 64
_DEFAULT_LINES = 24


def make_run_table() -> List[int]:
    """Run lengths 1..63 addressed by code (code 0 -> 1 pixel)."""
    return [max(1, code) for code in range(_RUN_TABLE_SIZE)]


def golden(lines: int, code_pool: List[int]) -> Tuple[int, int]:
    """Decode ``lines`` scanlines; returns (checksum, codes consumed)."""
    run_table = make_run_table()
    buffer = [0] * _LINE_WORDS
    checksum = 0
    cursor = 0
    for _ in range(lines):
        pos = 0
        color = 0  # 0 = white, 1 = black
        while pos < _WIDTH:
            code = code_pool[cursor]
            cursor += 1
            run = run_table[code]
            run = min(run, _WIDTH - pos)
            if color:
                remaining = run
                while remaining > 0:
                    word = pos >> 5
                    bit = pos & 31
                    n = min(32 - bit, remaining)
                    mask = (0xFFFFFFFF >> (32 - n)) << bit
                    buffer[word] |= mask
                    pos += n
                    remaining -= n
            else:
                pos += run
            color ^= 1
        for i in range(_LINE_WORDS):
            checksum = (checksum + buffer[i] * (i + 1)) & WORD_MASK
            buffer[i] = 0
    return checksum, cursor


def build(scale: str = "default") -> Workload:
    """Build the g3fax workload at a given scale."""
    lines = scaled(_DEFAULT_LINES, scale)
    # Generous pool; the golden model tells us how much the kernel consumes.
    pool = LCG(seed=0x63FA).words(lines * 256, bound=_RUN_TABLE_SIZE)
    checksum, consumed = golden(lines, pool)
    codes = pool[:consumed]
    source = f"""
; g3fax: run-length decode of {lines} scanlines of {_WIDTH} pixels
        .equ LINES, {lines}
        .equ WIDTH, {_WIDTH}
        .equ LINEWORDS, {_LINE_WORDS}
        .data
runtab:
{words_directive(make_run_table())}
codes:
{words_directive(codes)}
linebuf: .space LINEWORDS
result: .word 0
        .text
main:   li   r1, 0              ; line
        li   r2, 0              ; checksum
        li   r3, 0              ; code stream cursor
lineloop:
        li   r4, 0              ; pos
        li   r5, 0              ; color (0 white, 1 black)
runloop:
        lw   r6, codes(r3)
        inc  r3
        lw   r6, runtab(r6)     ; run length
        add  r7, r4, r6
        li   r8, WIDTH
        ble  r7, r8, notrunc
        sub  r6, r8, r4         ; clip run at end of line
notrunc:
        beqz r5, advance        ; white runs just move the cursor
fill:   beqz r6, colorflip
        srli r9, r4, 5          ; word index
        andi r11, r4, 31        ; bit offset
        li   r12, 32
        sub  r12, r12, r11      ; space left in this word
        ble  r6, r12, usedrun
        mv   r13, r12           ; n = space
        j    gotn
usedrun:
        mv   r13, r6            ; n = run
gotn:   li   r7, 32
        sub  r7, r7, r13
        li   r8, 0xFFFFFFFF
        srl  r8, r8, r7
        sll  r8, r8, r11        ; mask of n bits at bit offset
        lw   r12, linebuf(r9)
        or   r12, r12, r8
        sw   r12, linebuf(r9)
        add  r4, r4, r13
        sub  r6, r6, r13
        j    fill
advance:
        add  r4, r4, r6
colorflip:
        xori r5, r5, 1
        li   r8, WIDTH
        blt  r4, r8, runloop
        ; line complete: fold into checksum and clear the buffer
        li   r9, 0
chkloop:
        lw   r12, linebuf(r9)
        addi r7, r9, 1
        mul  r12, r12, r7
        add  r2, r2, r12
        sw   r0, linebuf(r9)
        inc  r9
        li   r7, LINEWORDS
        blt  r9, r7, chkloop
        inc  r1
        li   r7, LINES
        blt  r1, r7, lineloop
        sw   r2, result
        halt
"""
    return Workload(
        name="g3fax",
        description="G3 fax run-length scanline decoder",
        source=source,
        expected=checksum,
        scale=scale,
        params={"lines": lines, "width": _WIDTH, "codes": consumed},
    )
