"""Workload registry — the reproduction's PowerStone suite.

The paper evaluates 12 PowerStone applications; this registry exposes our
re-implementations under the same names.  Workload builds are cached per
(name, scale) because building regenerates input data and assembles
nothing twice; :func:`run_workload_by_name` additionally caches verified
runs so tests and benchmarks can share traces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.workloads import (
    adpcm,
    bcnt,
    blit,
    compress,
    crc,
    des,
    engine,
    fir,
    g3fax,
    jpeg,
    pocsag,
    qurt,
    summin,
    ucbqsort,
    v42,
    whet,
)
from repro.workloads.common import Workload, WorkloadRun, run_workload

#: The paper's 12 PowerStone benchmarks, in its Table 5/6 order.
WORKLOAD_NAMES: Tuple[str, ...] = (
    "adpcm",
    "bcnt",
    "blit",
    "compress",
    "crc",
    "des",
    "engine",
    "fir",
    "g3fax",
    "pocsag",
    "qurt",
    "ucbqsort",
)

#: Additional PowerStone programs beyond the paper's evaluation set.
EXTRA_WORKLOAD_NAMES: Tuple[str, ...] = ("jpeg", "summin", "v42", "whet")

#: Every available workload.
ALL_WORKLOAD_NAMES: Tuple[str, ...] = WORKLOAD_NAMES + EXTRA_WORKLOAD_NAMES

_BUILDERS: Dict[str, Callable[[str], Workload]] = {
    "adpcm": adpcm.build,
    "bcnt": bcnt.build,
    "blit": blit.build,
    "compress": compress.build,
    "crc": crc.build,
    "des": des.build,
    "engine": engine.build,
    "fir": fir.build,
    "g3fax": g3fax.build,
    "jpeg": jpeg.build,
    "pocsag": pocsag.build,
    "qurt": qurt.build,
    "summin": summin.build,
    "ucbqsort": ucbqsort.build,
    "v42": v42.build,
    "whet": whet.build,
}

_workload_cache: Dict[Tuple[str, str], Workload] = {}
_run_cache: Dict[Tuple[str, str], WorkloadRun] = {}


def list_workloads(include_extras: bool = False) -> List[str]:
    """Names of available workloads, in the paper's table order.

    Args:
        include_extras: also list the PowerStone programs beyond the
            paper's 12-benchmark evaluation set.
    """
    if include_extras:
        return list(ALL_WORKLOAD_NAMES)
    return list(WORKLOAD_NAMES)


def get_workload(name: str, scale: str = "default") -> Workload:
    """Build (and cache) a workload by name.

    Raises:
        KeyError: for unknown workload names, listing the valid ones.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(ALL_WORKLOAD_NAMES)}"
        )
    key = (name, scale)
    if key not in _workload_cache:
        _workload_cache[key] = builder(scale)
    return _workload_cache[key]


def run_workload_by_name(
    name: str, scale: str = "default", cycle_limit: int = 20_000_000
) -> WorkloadRun:
    """Run (and cache) a verified workload execution."""
    key = (name, scale)
    if key not in _run_cache:
        _run_cache[key] = run_workload(
            get_workload(name, scale), cycle_limit=cycle_limit
        )
    return _run_cache[key]


def run_all(scale: str = "default") -> Dict[str, WorkloadRun]:
    """Run every workload; returns ``{name: run}`` in table order."""
    return {name: run_workload_by_name(name, scale) for name in WORKLOAD_NAMES}


def clear_caches() -> None:
    """Drop all cached builds and runs (mainly for tests)."""
    _workload_cache.clear()
    _run_cache.clear()
