"""``compress`` — LZW compression (PowerStone / Unix ``compress``).

LZW with a linear-probed hash table of (prefix, char) pairs, the data
structure at the heart of Unix ``compress`` (which uses open hashing with
double probing; linear probing preserves the same table-churn access
pattern).  Codes are capped at 10 bits so the table never fills.  Access
pattern: streaming input, data-dependent probe chains over a 1K-entry
table, and append-only table growth — strongly input-dependent locality.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_TABLE_SIZE = 1024
_HASH_MASK = _TABLE_SIZE - 1
_FIRST_CODE = 256
_MAX_CODE = 1024  # table stays at most 3/4 full: probes always terminate
_EMPTY = 0xFFFFFFFF
_ALPHABET = 16
_DEFAULT_INPUT_BYTES = 768


def golden(data: List[int]) -> Tuple[int, int]:
    """LZW-compress; returns (checksum over emitted codes, codes emitted)."""
    keys = [_EMPTY] * _TABLE_SIZE
    codes = [0] * _TABLE_SIZE
    next_code = _FIRST_CODE
    prefix = data[0]
    checksum = 0
    emitted = 0

    def emit(code: int) -> None:
        nonlocal checksum, emitted
        checksum = (checksum * 33 + code) & WORD_MASK
        emitted += 1

    for char in data[1:]:
        key = (prefix << 8) | char
        h = ((prefix << 4) ^ char) & _HASH_MASK
        while keys[h] != _EMPTY and keys[h] != key:
            h = (h + 1) & _HASH_MASK
        if keys[h] == key:
            prefix = codes[h]
        else:
            emit(prefix)
            if next_code < _MAX_CODE:
                keys[h] = key
                codes[h] = next_code
                next_code += 1
            prefix = char
    emit(prefix)
    return checksum, emitted


def build(scale: str = "default") -> Workload:
    """Build the compress workload at a given scale."""
    length = scaled(_DEFAULT_INPUT_BYTES, scale)
    # Small alphabet gives the dictionary real reuse, like text input.
    data = LCG(seed=0xC03F).words(length, bound=_ALPHABET)
    checksum, emitted = golden(data)
    source = f"""
; compress: LZW over {length} bytes, {_TABLE_SIZE}-entry hash table
        .equ N, {length}
        .equ HMASK, {_HASH_MASK}
        .equ MAXCODE, {_MAX_CODE}
        .data
input:
{words_directive(data)}
htkey:
{words_directive([_EMPTY] * _TABLE_SIZE)}
htcode: .space {_TABLE_SIZE}
result: .word 0
        .text
main:   lw   r3, input          ; prefix = input[0]
        li   r1, 1              ; input index
        li   r2, 0              ; checksum
        li   r4, {_FIRST_CODE}  ; next_code
        li   r10, N
        li   r12, 0xFFFFFFFF    ; EMPTY
loop:   bge  r1, r10, done
        lw   r5, input(r1)      ; c
        slli r6, r3, 8
        or   r6, r6, r5         ; key = (prefix << 8) | c
        slli r7, r3, 4
        xor  r7, r7, r5
        andi r7, r7, HMASK      ; h
probe:  lw   r8, htkey(r7)
        beq  r8, r12, miss
        beq  r8, r6, hit
        addi r7, r7, 1
        andi r7, r7, HMASK
        j    probe
hit:    lw   r3, htcode(r7)     ; prefix = code of (prefix, c)
        j    next
miss:   li   r9, 33             ; emit prefix
        mul  r2, r2, r9
        add  r2, r2, r3
        li   r9, MAXCODE
        bge  r4, r9, noinsert
        sw   r6, htkey(r7)
        sw   r4, htcode(r7)
        inc  r4
noinsert:
        mv   r3, r5             ; prefix = c
next:   inc  r1
        j    loop
done:   li   r9, 33             ; emit the final prefix
        mul  r2, r2, r9
        add  r2, r2, r3
        sw   r2, result
        halt
"""
    return Workload(
        name="compress",
        description="LZW compression with linear-probed hash table",
        source=source,
        expected=checksum,
        scale=scale,
        params={"input_bytes": length, "codes_emitted": emitted},
    )
