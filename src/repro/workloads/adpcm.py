"""``adpcm`` — IMA ADPCM speech encoder (PowerStone ``adpcm``).

The standard IMA/DVI ADPCM step-size adaptation: per 16-bit sample the
encoder quantizes the prediction error to a 4-bit code using the 89-entry
step table, updates the predictor and the step index, and emits the code.
Access pattern: two small hot tables indexed by adapting state, a
streaming sample buffer, and dense data-dependent branching.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_DEFAULT_SAMPLES = 384

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def golden(samples: List[int]) -> int:
    """Checksum over the emitted 4-bit codes (matches the kernel exactly)."""
    predictor = 0
    index = 0
    checksum = 0
    for sample in samples:
        diff = sample - predictor
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff
        step = STEP_TABLE[index]
        vpdiff = step >> 3
        delta = 0
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        predictor = predictor - vpdiff if sign else predictor + vpdiff
        predictor = max(-32768, min(32767, predictor))
        delta |= sign
        index = max(0, min(88, index + INDEX_TABLE[delta]))
        checksum = (checksum * 31 + delta) & WORD_MASK
    return checksum


def make_samples(count: int) -> List[int]:
    """A noisy-waveform sample stream in [-32768, 32767]."""
    rng = LCG(seed=0xADC)
    samples = []
    value = 0
    for _ in range(count):
        # Random walk with occasional jumps: exercises all delta codes.
        value += rng.below(4096) - 2048
        if rng.below(16) == 0:
            value = rng.below(65536) - 32768
        value = max(-32768, min(32767, value))
        samples.append(value)
    return samples


def build(scale: str = "default") -> Workload:
    """Build the adpcm workload at a given scale."""
    count = scaled(_DEFAULT_SAMPLES, scale)
    samples = make_samples(count)
    source = f"""
; adpcm: IMA ADPCM encode of {count} samples
        .equ N, {count}
        .data
steptab:
{words_directive(STEP_TABLE)}
idxtab:
{words_directive(INDEX_TABLE)}
samples:
{words_directive(samples)}
result: .word 0
        .text
main:   li   r1, 0              ; sample index
        li   r2, 0              ; checksum
        li   r3, 0              ; predictor
        li   r4, 0              ; step index
        li   r10, N
sloop:  lw   r5, samples(r1)
        sub  r6, r5, r3         ; diff
        li   r7, 0              ; sign
        bgez r6, pos
        li   r7, 8
        neg  r6, r6
pos:    lw   r8, steptab(r4)    ; step
        srli r9, r8, 3          ; vpdiff = step >> 3
        li   r12, 0             ; delta
        blt  r6, r8, d2
        addi r12, r12, 4
        sub  r6, r6, r8
        add  r9, r9, r8
d2:     srli r8, r8, 1
        blt  r6, r8, d1
        addi r12, r12, 2
        sub  r6, r6, r8
        add  r9, r9, r8
d1:     srli r8, r8, 1
        blt  r6, r8, dd
        addi r12, r12, 1
        add  r9, r9, r8
dd:     beqz r7, plus
        sub  r3, r3, r9
        j    clamphi
plus:   add  r3, r3, r9
clamphi:
        li   r8, 32767
        ble  r3, r8, clamplo
        mv   r3, r8
clamplo:
        li   r8, -32768
        bge  r3, r8, emit
        mv   r3, r8
emit:   or   r12, r12, r7       ; delta |= sign
        lw   r8, idxtab(r12)
        add  r4, r4, r8
        bgez r4, idxhi
        li   r4, 0
idxhi:  li   r8, 88
        ble  r4, r8, accum
        mv   r4, r8
accum:  li   r8, 31
        mul  r2, r2, r8
        add  r2, r2, r12
        inc  r1
        blt  r1, r10, sloop
        sw   r2, result
        halt
"""
    return Workload(
        name="adpcm",
        description="IMA ADPCM speech encoder",
        source=source,
        expected=golden(samples),
        scale=scale,
        params={"samples": count},
    )
