"""``whet`` — Whetstone-style synthetic mix, fixed point (PowerStone ``whet``).

Whetstone is a synthetic benchmark cycling through arithmetic modules:
array arithmetic, trigonometric evaluation, polynomial evaluation and
division-heavy loops.  The original is floating point; since this ISA
is integer-only, the kernel is a faithful *fixed-point* restatement
(Q12) with the transcendental module served by a 256-entry quarter-wave
sine table with linear interpolation — the standard embedded
substitution, recorded in DESIGN.md.  Access pattern: a rotating mix of
small-array sweeps, hot-table interpolation and pure register loops.

This kernel is an *extra* beyond the paper's 12 (see
``repro.workloads.registry.EXTRA_WORKLOAD_NAMES``).
"""

from __future__ import annotations

import math
from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_Q = 12
_ONE = 1 << _Q
_SINE_ENTRIES = 256
_ARRAY_LEN = 32
_DEFAULT_CYCLES = 24


def sine_table() -> List[int]:
    """Quarter-wave sine in Q12: sin(pi/2 * i / 256) scaled to [0, 4096]."""
    return [
        round(math.sin(math.pi / 2 * i / _SINE_ENTRIES) * _ONE)
        for i in range(_SINE_ENTRIES + 1)
    ]


def _interp_sine(table: List[int], phase: int) -> int:
    """Linear interpolation into the quarter-wave table (8-bit index)."""
    index = (phase >> 4) & 0xFF
    frac = phase & 0xF
    a = table[index]
    b = table[index + 1]
    return a + (((b - a) * frac) >> 4)


def golden(seeds: List[int], cycles: int) -> int:
    """Fixed-point Whetstone mix, matching the kernel exactly."""
    table = sine_table()
    array = list(seeds)
    checksum = 0
    x = _ONE // 2
    for cycle in range(cycles):
        # Module 1: array arithmetic a[i] = (a[i] + a[j]) * k >> Q.
        k = (cycle % 7) + 1
        for i in range(_ARRAY_LEN):
            j = (i + k) % _ARRAY_LEN
            array[i] = ((array[i] + array[j]) * k) & WORD_MASK
            array[i] = (array[i] >> 3) & WORD_MASK
        # Module 2: trig via table interpolation.
        phase = (x + cycle * 37) & 0xFFF
        s = _interp_sine(table, phase)
        x = (x + s) & WORD_MASK
        # Module 3: Horner polynomial p(s) = ((s*c3>>Q + c2)*s>>Q + c1).
        c1, c2, c3 = 0x400, 0x200, 0x100
        p = (s * c3) & WORD_MASK
        p = (p >> _Q) + c2
        p = (p * s) & WORD_MASK
        p = (p >> _Q) + c1
        x = (x ^ p) & WORD_MASK
        # Module 4: division loop (32-bit wrap add, signed truncating div,
        # matching the machine's semantics exactly).
        x1 = x | 1  # never zero
        d = x1
        for _ in range(8):
            total = (d + x1) & WORD_MASK
            signed = total - (1 << 32) if total & 0x80000000 else total
            d = int(signed / 2) & WORD_MASK
            d = d | 1
        checksum = (checksum + x + d + array[cycle % _ARRAY_LEN]) & WORD_MASK
    return checksum


def build(scale: str = "default") -> Workload:
    """Build the whet workload at a given scale."""
    cycles = scaled(_DEFAULT_CYCLES, scale)
    seeds = LCG(seed=0x3E7).words(_ARRAY_LEN, bound=_ONE)
    source = f"""
; whet: fixed-point Whetstone-style module mix, {cycles} cycles
        .equ CYCLES, {cycles}
        .equ ALEN, {_ARRAY_LEN}
        .equ Q, {_Q}
        .data
sintab:
{words_directive(sine_table())}
arr:
{words_directive(seeds)}
result: .word 0
        .text
main:   li   r1, 0              ; cycle
        li   r2, 0              ; checksum
        li   r3, {_ONE // 2}    ; x
        li   r10, CYCLES
cyc:    ; ---- module 1: array arithmetic, k = cycle % 7 + 1
        li   r4, 7
        rem  r4, r1, r4
        addi r4, r4, 1          ; k
        li   r5, 0              ; i
m1:     add  r6, r5, r4
        li   r7, ALEN
        rem  r6, r6, r7         ; j
        lw   r7, arr(r5)
        lw   r8, arr(r6)
        add  r7, r7, r8
        mul  r7, r7, r4
        srli r7, r7, 3
        sw   r7, arr(r5)
        inc  r5
        li   r7, ALEN
        blt  r5, r7, m1
        ; ---- module 2: sine interpolation
        li   r5, 37
        mul  r5, r1, r5
        add  r5, r3, r5
        andi r5, r5, 0xFFF      ; phase
        srli r6, r5, 4
        andi r6, r6, 0xFF       ; index
        andi r5, r5, 0xF        ; frac
        lw   r7, sintab(r6)     ; a
        addi r6, r6, 1
        lw   r8, sintab(r6)     ; b
        sub  r8, r8, r7
        mul  r8, r8, r5
        srai r8, r8, 4
        add  r7, r7, r8         ; s
        add  r3, r3, r7         ; x += s
        ; ---- module 3: Horner polynomial
        li   r9, 0x100
        mul  r8, r7, r9
        srli r8, r8, Q
        addi r8, r8, 0x200
        mul  r8, r8, r7
        srli r8, r8, Q
        addi r8, r8, 0x400
        xor  r3, r3, r8
        ; ---- module 4: division loop
        ori  r5, r3, 1          ; x|1
        mv   r6, r5             ; d
        li   r7, 0              ; iteration
m4:     add  r6, r6, r5
        li   r9, 2
        div  r6, r6, r9
        ori  r6, r6, 1
        inc  r7
        li   r9, 8
        blt  r7, r9, m4
        ; ---- accumulate
        li   r9, ALEN
        rem  r9, r1, r9
        lw   r9, arr(r9)
        add  r2, r2, r3
        add  r2, r2, r6
        add  r2, r2, r9
        inc  r1
        blt  r1, r10, cyc
        sw   r2, result
        halt
"""
    return Workload(
        name="whet",
        description="fixed-point Whetstone-style synthetic mix",
        source=source,
        expected=golden(seeds, cycles),
        scale=scale,
        params={"cycles": cycles, "array_len": _ARRAY_LEN},
    )
