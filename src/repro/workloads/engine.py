"""``engine`` — engine controller (PowerStone ``engine``).

Models a spark-advance controller: for each (rpm, load) operating-point
sample the kernel bilinearly interpolates a 16x16 calibration map in
8.8 fixed point, then takes a knock-limit branch that either accumulates
the advance or counts a retard event.  Access pattern: data-dependent 2D
table walks plus a streaming sample buffer — typical control-code
locality.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_MAP_DIM = 16
_DEFAULT_SAMPLES = 256
_KNOCK_LIMIT = 700


def golden(spark_map: List[int], samples: List[Tuple[int, int]]) -> int:
    """(retard count << 24) + accumulated advance, 32-bit wrapped."""
    advance_total = 0
    retards = 0
    for rpm, load in samples:
        i, fi = rpm >> 8, rpm & 0xFF
        j, fj = load >> 8, load & 0xFF
        v00 = spark_map[i * _MAP_DIM + j]
        v01 = spark_map[i * _MAP_DIM + j + 1]
        v10 = spark_map[(i + 1) * _MAP_DIM + j]
        v11 = spark_map[(i + 1) * _MAP_DIM + j + 1]
        top = (v00 * (256 - fj) + v01 * fj) >> 8
        bottom = (v10 * (256 - fj) + v11 * fj) >> 8
        value = (top * (256 - fi) + bottom * fi) >> 8
        if value > _KNOCK_LIMIT:
            retards += 1
        else:
            advance_total = (advance_total + value) & WORD_MASK
    return ((retards << 24) + advance_total) & WORD_MASK


def make_inputs(count: int) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Calibration map and operating-point samples."""
    rng = LCG(seed=0xE61E)
    spark_map = rng.words(_MAP_DIM * _MAP_DIM, bound=1024)
    limit = (_MAP_DIM - 1) * 256  # keep i+1, j+1 inside the map
    samples = [(rng.below(limit), rng.below(limit)) for _ in range(count)]
    return spark_map, samples


def build(scale: str = "default") -> Workload:
    """Build the engine workload at a given scale."""
    count = scaled(_DEFAULT_SAMPLES, scale)
    spark_map, samples = make_inputs(count)
    flat = [v for pair in samples for v in pair]
    source = f"""
; engine: bilinear spark-advance interpolation for {count} samples
        .equ N, {count}
        .equ DIM, {_MAP_DIM}
        .equ KNOCK, {_KNOCK_LIMIT}
        .data
map:
{words_directive(spark_map)}
samples:
{words_directive(flat)}
result: .word 0
        .text
main:   li   r1, 0              ; sample index
        li   r2, 0              ; advance total
        li   r3, 0              ; retard count
        li   r10, N
sloop:  slli r4, r1, 1
        lw   r5, samples(r4)    ; rpm
        addi r4, r4, 1
        lw   r6, samples(r4)    ; load
        srli r7, r5, 8          ; i
        andi r5, r5, 0xFF       ; fi
        srli r8, r6, 8          ; j
        andi r6, r6, 0xFF       ; fj
        ; v00/v01 row base = i*DIM + j
        li   r9, DIM
        mul  r9, r7, r9
        add  r9, r9, r8
        lw   r11, map(r9)       ; v00
        addi r9, r9, 1
        lw   r12, map(r9)       ; v01
        addi r9, r9, DIM-1
        lw   r13, map(r9)       ; v10
        addi r9, r9, 1
        lw   r9, map(r9)        ; v11
        ; top = (v00*(256-fj) + v01*fj) >> 8
        li   r4, 256
        sub  r4, r4, r6         ; 256-fj
        mul  r11, r11, r4
        mul  r12, r12, r6
        add  r11, r11, r12
        srli r11, r11, 8        ; top
        ; bottom = (v10*(256-fj) + v11*fj) >> 8
        mul  r13, r13, r4
        mul  r9, r9, r6
        add  r13, r13, r9
        srli r13, r13, 8        ; bottom
        ; value = (top*(256-fi) + bottom*fi) >> 8
        li   r4, 256
        sub  r4, r4, r5         ; 256-fi
        mul  r11, r11, r4
        mul  r13, r13, r5
        add  r11, r11, r13
        srli r11, r11, 8        ; value
        li   r4, KNOCK
        bgt  r11, r4, knock
        add  r2, r2, r11
        j    snext
knock:  inc  r3
snext:  inc  r1
        blt  r1, r10, sloop
        slli r3, r3, 24
        add  r2, r2, r3
        sw   r2, result
        halt
"""
    return Workload(
        name="engine",
        description="engine controller with bilinear map interpolation",
        source=source,
        expected=golden(spark_map, samples),
        scale=scale,
        params={"samples": count, "map_dim": _MAP_DIM},
    )
