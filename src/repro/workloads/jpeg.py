"""``jpeg`` — JPEG forward DCT + quantization (PowerStone ``jpeg``).

The compute core of the PowerStone JPEG encoder: a separable 8x8
integer discrete cosine transform (two passes of 8-point transforms via
a fixed-point cosine matrix) followed by quantization-table division.
Access pattern: block-strided pixel reads, a hot 64-entry coefficient
matrix, a 64-entry quantization table, and an in-place temp block —
dense small-matrix reuse, unlike any of the streaming kernels.

Fixed point: Q12 cosine coefficients; products are accumulated in
32-bit wrap-around arithmetic and arithmetically shifted back, exactly
as the kernel does it, so the golden model matches bit for bit.

This kernel is an *extra* (the paper's evaluation uses 12 PowerStone
programs; jpeg is part of the wider suite) — see
``repro.workloads.registry.EXTRA_WORKLOAD_NAMES``.
"""

from __future__ import annotations

import math
from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_DEFAULT_BLOCKS = 6
_Q = 12  # fixed-point fraction bits


def _sra32(value: int, shift: int) -> int:
    """Arithmetic shift right of a 32-bit two's-complement word."""
    value &= WORD_MASK
    if value & 0x80000000:
        value -= 1 << 32
    return (value >> shift) & WORD_MASK


def cosine_matrix() -> List[int]:
    """The 8x8 DCT-II basis in Q12 fixed point (row-major, masked)."""
    matrix = []
    for u in range(8):
        scale = math.sqrt(1.0 / 8.0) if u == 0 else math.sqrt(2.0 / 8.0)
        for x in range(8):
            value = scale * math.cos((2 * x + 1) * u * math.pi / 16.0)
            matrix.append(round(value * (1 << _Q)) & WORD_MASK)
    return matrix


def quant_table() -> List[int]:
    """A luminance-like quantization table (values 8..121)."""
    rng = LCG(seed=0x09E6)
    return [8 + rng.below(16) + 3 * (i // 8 + i % 8) for i in range(64)]


def golden(blocks: List[List[int]]) -> int:
    """Checksum of all quantized DCT coefficients."""
    cos = cosine_matrix()
    quant = quant_table()
    checksum = 0
    for block in blocks:
        temp = [0] * 64
        # Pass 1: temp = C x block  (rows of C against columns of block).
        for u in range(8):
            for y in range(8):
                acc = 0
                for x in range(8):
                    acc = (acc + cos[u * 8 + x] * block[x * 8 + y]) & WORD_MASK
                temp[u * 8 + y] = _sra32(acc, _Q)
        # Pass 2: out = temp x C^T.
        for u in range(8):
            for v in range(8):
                acc = 0
                for y in range(8):
                    acc = (acc + temp[u * 8 + y] * cos[v * 8 + y]) & WORD_MASK
                coeff = _sra32(acc, _Q)
                # Quantize: signed division truncating toward zero.
                signed = coeff - (1 << 32) if coeff & 0x80000000 else coeff
                q = int(signed / quant[u * 8 + v])
                checksum = (checksum * 17 + q) & WORD_MASK
    return checksum


def make_blocks(count: int) -> List[List[int]]:
    """Pixel blocks with smooth gradients plus noise (centered at 0)."""
    rng = LCG(seed=0x3BE6)
    blocks = []
    for _ in range(count):
        base = rng.below(128)
        block = []
        for x in range(8):
            for y in range(8):
                pixel = base + 4 * x + 2 * y + rng.below(32) - 128
                block.append(pixel & WORD_MASK)
        blocks.append(block)
    return blocks


def build(scale: str = "default") -> Workload:
    """Build the jpeg workload at a given scale."""
    count = scaled(_DEFAULT_BLOCKS, scale, minimum=1)
    blocks = make_blocks(count)
    flat = [v for block in blocks for v in block]
    source = f"""
; jpeg: separable 8x8 integer DCT + quantization over {count} blocks
        .equ NBLOCKS, {count}
        .equ Q, {_Q}
        .data
cosmat:
{words_directive(cosine_matrix())}
quant:
{words_directive(quant_table())}
pixels:
{words_directive(flat)}
temp:   .space 64
result: .word 0
        .text
main:   li   r1, 0              ; block index
        li   r2, 0              ; checksum
        li   r10, NBLOCKS
blklp:  li   r11, 64
        mul  r11, r1, r11       ; block base in pixels[]
        ; ---- pass 1: temp[u][y] = sra(sum_x cos[u][x]*pix[x][y], Q)
        li   r3, 0              ; u
p1u:    li   r4, 0              ; y
p1y:    li   r5, 0              ; acc
        li   r6, 0              ; x
p1x:    slli r7, r3, 3
        add  r7, r7, r6
        lw   r7, cosmat(r7)     ; cos[u][x]
        slli r8, r6, 3
        add  r8, r8, r4
        add  r8, r8, r11
        lw   r8, pixels(r8)     ; pix[x][y]
        mul  r7, r7, r8
        add  r5, r5, r7
        inc  r6
        li   r9, 8
        blt  r6, r9, p1x
        srai r5, r5, Q
        slli r7, r3, 3
        add  r7, r7, r4
        sw   r5, temp(r7)
        inc  r4
        li   r9, 8
        blt  r4, r9, p1y
        inc  r3
        li   r9, 8
        blt  r3, r9, p1u
        ; ---- pass 2: out[u][v] = sra(sum_y temp[u][y]*cos[v][y], Q) / quant
        li   r3, 0              ; u
p2u:    li   r4, 0              ; v
p2v:    li   r5, 0              ; acc
        li   r6, 0              ; y
p2y:    slli r7, r3, 3
        add  r7, r7, r6
        lw   r7, temp(r7)       ; temp[u][y]
        slli r8, r4, 3
        add  r8, r8, r6
        lw   r8, cosmat(r8)     ; cos[v][y]
        mul  r7, r7, r8
        add  r5, r5, r7
        inc  r6
        li   r9, 8
        blt  r6, r9, p2y
        srai r5, r5, Q
        slli r7, r3, 3
        add  r7, r7, r4
        lw   r8, quant(r7)      ; quant[u][v]
        div  r5, r5, r8         ; quantized coefficient
        li   r9, 17
        mul  r2, r2, r9
        add  r2, r2, r5
        inc  r4
        li   r9, 8
        blt  r4, r9, p2v
        inc  r3
        li   r9, 8
        blt  r3, r9, p2u
        inc  r1
        blt  r1, r10, blklp
        sw   r2, result
        halt
"""
    return Workload(
        name="jpeg",
        description="8x8 integer DCT with quantization",
        source=source,
        expected=golden(blocks),
        scale=scale,
        params={"blocks": count},
    )
