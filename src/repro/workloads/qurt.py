"""``qurt`` — quadratic equation root solver (PowerStone ``qurt``).

Solves ``a x^2 + b x + c = 0`` for batches of integer coefficient
triples: discriminant, Newton integer square root, and truncating
division for the two roots; complex-root cases take a separate path.
Control-heavy with a data-dependent iteration count — the PowerStone
original is the same computation in fixed point.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_DEFAULT_TRIPLES = 96


def isqrt_newton(value: int) -> int:
    """Integer square root by Newton iteration (matches the kernel)."""
    if value < 0:
        raise ValueError("value must be non-negative")
    x = value
    y = (x + 1) >> 1
    while y < x:
        x = y
        y = (x + value // x) >> 1
    return x


def _trunc_div(a: int, b: int) -> int:
    """Division truncating toward zero (the machine's ``div`` semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


_PASSES = 3


def golden(triples: List[Tuple[int, int, int]], passes: int = _PASSES) -> int:
    """Checksum over roots / complex markers, over ``passes`` sweeps.

    The kernel re-solves the whole batch several times (the PowerStone
    original iterates its fixed-point refinement similarly); repeated
    sweeps give the data trace the coefficient-reuse the cache
    experiments need.
    """
    checksum = 0
    for _ in range(passes):
        for a, b, c in triples:
            disc = b * b - 4 * a * c
            if disc >= 0:
                s = isqrt_newton(disc)
                root1 = _trunc_div(-b + s, 2 * a)
                root2 = _trunc_div(-b - s, 2 * a)
                checksum = (checksum + root1 + 3 * root2) & WORD_MASK
            else:
                checksum = (checksum ^ (0x9E3779B9 + disc)) & WORD_MASK
    return checksum


def make_triples(count: int) -> List[Tuple[int, int, int]]:
    """Coefficient triples with a mix of real and complex root cases."""
    rng = LCG(seed=0x4127)
    triples = []
    for _ in range(count):
        a = rng.below(15) + 1
        b = rng.below(512) - 256
        c = rng.below(512) - 256
        triples.append((a, b, c))
    return triples


def build(scale: str = "default") -> Workload:
    """Build the qurt workload at a given scale."""
    count = scaled(_DEFAULT_TRIPLES, scale)
    triples = make_triples(count)
    flat = [v for triple in triples for v in triple]
    source = f"""
; qurt: integer quadratic roots for {count} coefficient triples, {_PASSES} passes
        .equ N, {count}
        .equ PASSES, {_PASSES}
        .data
coeffs:
{words_directive(flat)}
result: .word 0
        .text
main:   li   r11, 0             ; pass counter
        li   r2, 0              ; checksum
passlp: li   r1, 0              ; triple index
        li   r10, N
tloop:  li   r3, 3
        mul  r3, r1, r3
        lw   r4, coeffs(r3)     ; a
        addi r3, r3, 1
        lw   r5, coeffs(r3)     ; b
        addi r3, r3, 1
        lw   r6, coeffs(r3)     ; c
        mul  r7, r5, r5         ; b*b
        mul  r8, r4, r6
        slli r8, r8, 2          ; 4ac
        sub  r7, r7, r8         ; disc
        bltz r7, complex
        ; integer sqrt of r7 -> r8  (x=r8, y=r9)
        mv   r8, r7             ; x = disc
        addi r9, r8, 1
        srli r9, r9, 1          ; y = (x+1)>>1
sqloop: bge  r9, r8, sqdone
        mv   r8, r9             ; x = y
        div  r9, r7, r8
        add  r9, r9, r8
        srli r9, r9, 1          ; y = (x + disc/x)>>1
        j    sqloop
sqdone: ; roots: (-b +/- s) / (2a)
        neg  r9, r5             ; -b
        add  r12, r9, r8        ; -b + s
        sub  r13, r9, r8        ; -b - s
        slli r9, r4, 1          ; 2a
        div  r12, r12, r9       ; root1
        div  r13, r13, r9       ; root2
        add  r2, r2, r12
        li   r9, 3
        mul  r13, r13, r9
        add  r2, r2, r13
        j    next
complex:
        li   r9, 0x9E3779B9
        add  r9, r9, r7
        xor  r2, r2, r9
next:   inc  r1
        blt  r1, r10, tloop
        inc  r11
        li   r10, PASSES
        blt  r11, r10, passlp
        sw   r2, result
        halt
"""
    return Workload(
        name="qurt",
        description="quadratic roots with Newton integer sqrt",
        source=source,
        expected=golden(triples),
        scale=scale,
        params={"triples": count},
    )
