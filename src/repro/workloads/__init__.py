"""The 12 PowerStone-style benchmark kernels.

Re-implementations, for the :mod:`repro.isa` virtual machine, of the 12
PowerStone applications the paper evaluates: ``adpcm``, ``bcnt``,
``blit``, ``compress``, ``crc``, ``des``, ``engine``, ``fir``, ``g3fax``,
``pocsag``, ``qurt`` and ``ucbqsort``.  Each kernel ships with a
pure-Python golden model; a run is only trusted (and its traces only
used) when the kernel's checksum matches the golden result.

Use :func:`repro.workloads.registry.run_workload_by_name` (or
:func:`~repro.workloads.registry.run_all`) to obtain verified
instruction/data traces.
"""

from repro.workloads.common import (
    LCG,
    SCALES,
    Workload,
    WorkloadRun,
    run_workload,
    scaled,
    words_directive,
)
from repro.workloads.registry import (
    ALL_WORKLOAD_NAMES,
    EXTRA_WORKLOAD_NAMES,
    WORKLOAD_NAMES,
    get_workload,
    list_workloads,
    run_all,
    run_workload_by_name,
)

__all__ = [
    "LCG",
    "SCALES",
    "Workload",
    "WorkloadRun",
    "run_workload",
    "scaled",
    "words_directive",
    "ALL_WORKLOAD_NAMES",
    "EXTRA_WORKLOAD_NAMES",
    "WORKLOAD_NAMES",
    "get_workload",
    "list_workloads",
    "run_all",
    "run_workload_by_name",
]
