"""``fir`` — finite impulse response filter (PowerStone ``fir``).

A ``TAPS``-tap integer FIR over a sampled signal: the inner loop streams
``TAPS`` adjacent samples against the coefficient vector — a small, hot
coefficient array against a sliding window of the signal.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_DEFAULT_SAMPLES = 256
_TAPS = 16


def golden(signal: List[int], coefficients: List[int]) -> int:
    """Checksum of all filter outputs (32-bit wrap-around arithmetic)."""
    taps = len(coefficients)
    checksum = 0
    for n in range(len(signal) - taps):
        acc = 0
        for k in range(taps):
            acc = (acc + coefficients[k] * signal[n + k]) & WORD_MASK
        checksum = (checksum + acc) & WORD_MASK
    return checksum


def build(scale: str = "default") -> Workload:
    """Build the fir workload at a given scale."""
    samples = scaled(_DEFAULT_SAMPLES, scale, minimum=_TAPS + 4)
    rng = LCG(seed=0xF13)
    signal = rng.words(samples + _TAPS, bound=1 << 16)
    coefficients = rng.words(_TAPS, bound=256)
    outputs = samples
    source = f"""
; fir: {_TAPS}-tap FIR filter over {outputs} outputs
        .equ N, {outputs}
        .equ TAPS, {_TAPS}
        .data
coef:
{words_directive(coefficients)}
x:
{words_directive(signal)}
result: .word 0
        .text
main:   li   r1, 0              ; n (output index)
        li   r9, 0              ; checksum
        li   r10, N
        li   r11, TAPS
outer:  li   r2, 0              ; k (tap index)
        li   r3, 0              ; acc
inner:  add  r4, r1, r2         ; signal index n + k
        lw   r5, x(r4)
        lw   r6, coef(r2)
        mul  r7, r5, r6
        add  r3, r3, r7
        inc  r2
        blt  r2, r11, inner
        add  r9, r9, r3
        inc  r1
        blt  r1, r10, outer
        sw   r9, result
        halt
"""
    return Workload(
        name="fir",
        description=f"{_TAPS}-tap integer FIR filter",
        source=source,
        expected=golden(signal, coefficients),
        scale=scale,
        params={"outputs": outputs, "taps": _TAPS},
    )
