"""``summin`` — vector-quantization nearest-codeword search (PowerStone ``summin``).

For each input vector, scan a codebook and find the entry minimizing
the sum of absolute differences — the handwriting-recognition /
VQ-encoding pattern of the PowerStone original.  Access pattern: the
whole codebook is re-scanned per input (strong reuse of a mid-sized
table) against a streaming input buffer, with a data-dependent early
exit when a running sum exceeds the best-so-far.

This kernel is an *extra* beyond the paper's 12 (see
``repro.workloads.registry.EXTRA_WORKLOAD_NAMES``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_VECTOR_LEN = 16
_CODEBOOK = 48
_DEFAULT_INPUTS = 40


def golden(codebook: List[List[int]], inputs: List[List[int]]) -> int:
    """Checksum over (best index, best distance) of every input vector.

    Mirrors the kernel exactly, including the early-exit: a candidate is
    abandoned as soon as its partial sum reaches the current minimum, so
    the reported distance is the true minimum either way.
    """
    checksum = 0
    for vector in inputs:
        best_index = 0
        best_distance = None
        for index, candidate in enumerate(codebook):
            distance = 0
            for a, b in zip(vector, candidate):
                distance += abs(a - b)
                if best_distance is not None and distance >= best_distance:
                    break
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_index = index
        checksum = (checksum * 31 + best_index) & WORD_MASK
        checksum = (checksum + best_distance) & WORD_MASK
    return checksum


def make_inputs(count: int) -> Tuple[List[List[int]], List[List[int]]]:
    """Codebook and input vectors (small positive components)."""
    rng = LCG(seed=0x5311)
    codebook = [rng.words(_VECTOR_LEN, bound=256) for _ in range(_CODEBOOK)]
    inputs = []
    for _ in range(count):
        # Perturb a random codeword so searches have near matches.
        base = codebook[rng.below(_CODEBOOK)]
        inputs.append([(v + rng.below(32)) & 0xFF for v in base])
    return codebook, inputs


def build(scale: str = "default") -> Workload:
    """Build the summin workload at a given scale."""
    count = scaled(_DEFAULT_INPUTS, scale)
    codebook, inputs = make_inputs(count)
    flat_code = [v for vec in codebook for v in vec]
    flat_in = [v for vec in inputs for v in vec]
    source = f"""
; summin: nearest-codeword search, {count} vectors x {_CODEBOOK} codewords
        .equ NIN, {count}
        .equ NCODE, {_CODEBOOK}
        .equ VLEN, {_VECTOR_LEN}
        .equ BIG, 0x7FFFFFFF
        .data
codebook:
{words_directive(flat_code)}
inputs:
{words_directive(flat_in)}
result: .word 0
        .text
main:   li   r1, 0              ; input index
        li   r2, 0              ; checksum
        li   r10, NIN
inlp:   li   r11, VLEN
        mul  r11, r1, r11       ; input vector base
        li   r3, 0              ; candidate index
        li   r4, BIG            ; best distance
        li   r5, 0              ; best index
cand:   li   r12, VLEN
        mul  r12, r3, r12       ; candidate base
        li   r6, 0              ; component
        li   r7, 0              ; distance accumulator
comp:   add  r8, r11, r6
        lw   r8, inputs(r8)
        add  r9, r12, r6
        lw   r9, codebook(r9)
        sub  r8, r8, r9         ; a - b
        bgez r8, posd
        neg  r8, r8
posd:   add  r7, r7, r8
        bge  r7, r4, abandon    ; early exit: cannot beat the best
        inc  r6
        li   r9, VLEN
        blt  r6, r9, comp
        ; full scan finished with r7 < best
        mv   r4, r7
        mv   r5, r3
abandon:
        inc  r3
        li   r9, NCODE
        blt  r3, r9, cand
        li   r9, 31
        mul  r2, r2, r9
        add  r2, r2, r5
        add  r2, r2, r4
        inc  r1
        blt  r1, r10, inlp
        sw   r2, result
        halt
"""
    return Workload(
        name="summin",
        description="sum-of-absolute-differences nearest-codeword search",
        source=source,
        expected=golden(codebook, inputs),
        scale=scale,
        params={"inputs": count, "codebook": _CODEBOOK, "vector_len": _VECTOR_LEN},
    )
