"""``ucbqsort`` — the Berkeley quicksort (PowerStone ``ucbqsort``).

An in-place quicksort with an explicit stack of (lo, hi) ranges (the
recursion of the BSD libc qsort turned iterative) and Lomuto
partitioning.  Access pattern: partition sweeps over shrinking array
slices plus stack push/pop traffic — the classic divide-and-conquer
locality profile.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_DEFAULT_ELEMENTS = 256


def golden(data: List[int]) -> int:
    """Positional checksum of the sorted array (verifies sortedness)."""
    ordered = sorted(data)
    checksum = 0
    for i, value in enumerate(ordered):
        checksum = (checksum + (i + 1) * value) & WORD_MASK
    return checksum


def build(scale: str = "default") -> Workload:
    """Build the ucbqsort workload at a given scale."""
    count = scaled(_DEFAULT_ELEMENTS, scale)
    data = LCG(seed=0x5047).words(count, bound=10000)
    stack_words = 2 * count + 8
    source = f"""
; ucbqsort: iterative quicksort of {count} elements
        .equ N, {count}
        .data
arr:
{words_directive(data)}
stack:  .space {stack_words}
result: .word 0
        .text
main:   li   r12, 0             ; stack pointer (word offset into stack)
        ; push initial range (0, N-1)
        sw   r0, stack(r12)     ; lo = 0
        addi r12, r12, 1
        li   r4, N-1
        sw   r4, stack(r12)
        addi r12, r12, 1
mainloop:
        beqz r12, sorted        ; stack empty -> done
        dec  r12
        lw   r4, stack(r12)     ; hi
        dec  r12
        lw   r3, stack(r12)     ; lo
        bge  r3, r4, mainloop   ; ranges of length < 2 are sorted
        ; Lomuto partition with pivot = arr[hi]
        lw   r5, arr(r4)        ; pivot
        addi r1, r3, -1         ; i = lo - 1
        mv   r2, r3             ; j = lo
partloop:
        bge  r2, r4, partdone
        lw   r6, arr(r2)
        bgt  r6, r5, noswap
        inc  r1
        lw   r7, arr(r1)        ; swap arr[i] <-> arr[j]
        sw   r6, arr(r1)
        sw   r7, arr(r2)
noswap: inc  r2
        j    partloop
partdone:
        inc  r1                 ; p = i + 1
        lw   r7, arr(r1)        ; swap arr[p] <-> arr[hi]
        lw   r6, arr(r4)
        sw   r6, arr(r1)
        sw   r7, arr(r4)
        ; push (lo, p-1)
        sw   r3, stack(r12)
        addi r12, r12, 1
        addi r7, r1, -1
        sw   r7, stack(r12)
        addi r12, r12, 1
        ; push (p+1, hi)
        addi r7, r1, 1
        sw   r7, stack(r12)
        addi r12, r12, 1
        sw   r4, stack(r12)
        addi r12, r12, 1
        j    mainloop
sorted: ; positional checksum
        li   r1, 0
        li   r2, 0
        li   r10, N
chkloop:
        lw   r3, arr(r1)
        addi r4, r1, 1
        mul  r3, r3, r4
        add  r2, r2, r3
        inc  r1
        blt  r1, r10, chkloop
        sw   r2, result
        halt
"""
    return Workload(
        name="ucbqsort",
        description="iterative quicksort with explicit range stack",
        source=source,
        expected=golden(data),
        scale=scale,
        params={"elements": count},
    )
