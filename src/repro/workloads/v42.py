"""``v42`` — V.42bis-style dictionary compression (PowerStone ``v42``).

V.42bis (the modem compression standard) builds its dictionary as a
*trie*: each node's children form a linked sibling list that the
matcher walks character by character.  That pointer-chasing access
pattern — first-child / next-sibling arrays traversed data-dependently —
is what distinguishes this kernel from the hash-probing ``compress``
kernel, and is faithfully reproduced here.

Algorithm: longest-match against the trie; on mismatch, emit the code
of the matched node, add one new node extending the match, restart at
the mismatching character's root node.  Codes are capped so the
dictionary never overflows its arrays.

This kernel is an *extra* beyond the paper's 12 (see
``repro.workloads.registry.EXTRA_WORKLOAD_NAMES``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_ALPHABET = 16
_MAX_NODES = 1024
_DEFAULT_INPUT = 640


def golden(data: List[int]) -> Tuple[int, int]:
    """Trie-based longest-match compression; returns (checksum, codes)."""
    # Node arrays: the first _ALPHABET nodes are the single-char roots.
    first_child = [0] * _MAX_NODES  # 0 = none (node 0 is unused/reserved)
    next_sibling = [0] * _MAX_NODES
    char_of = [0] * _MAX_NODES
    node_count = _ALPHABET + 1  # nodes 1.._ALPHABET are roots
    checksum = 0
    emitted = 0

    def root(char: int) -> int:
        return char + 1

    def emit(code: int) -> None:
        nonlocal checksum, emitted
        checksum = (checksum * 33 + code) & WORD_MASK
        emitted += 1

    current = root(data[0])
    for char in data[1:]:
        # Walk the sibling list of current's children looking for char.
        child = first_child[current]
        while child and char_of[child] != char:
            child = next_sibling[child]
        if child:
            current = child
            continue
        emit(current)
        if node_count < _MAX_NODES:
            node = node_count
            node_count += 1
            char_of[node] = char
            next_sibling[node] = first_child[current]
            first_child[current] = node
        current = root(char)
    emit(current)
    return checksum, emitted


def build(scale: str = "default") -> Workload:
    """Build the v42 workload at a given scale."""
    length = scaled(_DEFAULT_INPUT, scale)
    data = LCG(seed=0x42B15).words(length, bound=_ALPHABET)
    checksum, emitted = golden(data)
    source = f"""
; v42: trie-based longest-match compression of {length} symbols
        .equ N, {length}
        .equ ALPHA, {_ALPHABET}
        .equ MAXNODES, {_MAX_NODES}
        .data
input:
{words_directive(data)}
firstchild: .space MAXNODES
nextsib:    .space MAXNODES
charof:     .space MAXNODES
result: .word 0
        .text
main:   li   r1, 1              ; input index (symbol 0 seeds `current`)
        li   r2, 0              ; checksum
        li   r4, ALPHA+1        ; node_count
        li   r10, N
        lw   r3, input          ; current = root(data[0]) = data[0] + 1
        addi r3, r3, 1
loop:   bge  r1, r10, done
        lw   r5, input(r1)      ; char
        ; walk sibling list of current's children
        lw   r6, firstchild(r3)
walk:   beqz r6, nomatch
        lw   r7, charof(r6)
        beq  r7, r5, match
        lw   r6, nextsib(r6)
        j    walk
match:  mv   r3, r6             ; descend
        j    next
nomatch:
        li   r9, 33             ; emit current
        mul  r2, r2, r9
        add  r2, r2, r3
        li   r9, MAXNODES
        bge  r4, r9, noinsert
        ; insert new node r4 as current's first child
        sw   r5, charof(r4)
        lw   r7, firstchild(r3)
        sw   r7, nextsib(r4)
        sw   r4, firstchild(r3)
        inc  r4
noinsert:
        addi r3, r5, 1          ; current = root(char)
next:   inc  r1
        j    loop
done:   li   r9, 33             ; emit the final match
        mul  r2, r2, r9
        add  r2, r2, r3
        sw   r2, result
        halt
"""
    return Workload(
        name="v42",
        description="V.42bis-style trie compression",
        source=source,
        expected=checksum,
        scale=scale,
        params={"input_symbols": length, "codes_emitted": emitted},
    )
