"""``crc`` — table-driven CRC-32 checksum (PowerStone ``crc``).

The classic reflected CRC-32 (polynomial ``0xEDB88320``) over a message
buffer, one table lookup per byte.  Access pattern: a hot 256-word lookup
table indexed by data-dependent bytes plus a streaming read of the
message — the canonical mixed temporal/spatial-locality kernel.
"""

from __future__ import annotations

from typing import List

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_POLY = 0xEDB88320
_DEFAULT_MESSAGE_BYTES = 1024


def crc_table() -> List[int]:
    """The 256-entry reflected CRC-32 table."""
    table = []
    for byte in range(256):
        value = byte
        for _ in range(8):
            if value & 1:
                value = (value >> 1) ^ _POLY
            else:
                value >>= 1
        table.append(value)
    return table


def golden(message: List[int]) -> int:
    """Reference CRC-32 of a byte sequence."""
    table = crc_table()
    crc = 0xFFFFFFFF
    for byte in message:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def build(scale: str = "default") -> Workload:
    """Build the crc workload at a given scale."""
    length = scaled(_DEFAULT_MESSAGE_BYTES, scale)
    message = LCG(seed=0xC0C).words(length, bound=256)
    source = f"""
; crc: table-driven CRC-32 over {length} message bytes
        .equ N, {length}
        .data
crctab:
{words_directive(crc_table())}
msg:
{words_directive(message)}
result: .word 0
        .text
main:   li   r1, 0              ; i
        li   r2, 0xFFFFFFFF     ; crc
        li   r6, N
loop:   lw   r3, msg(r1)        ; next message byte
        xor  r4, r2, r3
        andi r4, r4, 0xFF
        lw   r4, crctab(r4)     ; table[(crc ^ byte) & 0xFF]
        srli r5, r2, 8
        xor  r2, r4, r5
        inc  r1
        blt  r1, r6, loop
        li   r6, 0xFFFFFFFF
        xor  r2, r2, r6
        sw   r2, result
        halt
"""
    return Workload(
        name="crc",
        description="table-driven CRC-32 checksum",
        source=source,
        expected=golden(message) & WORD_MASK,
        scale=scale,
        params={"message_bytes": length},
    )
