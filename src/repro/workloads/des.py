"""``des`` — block cipher encryption (PowerStone ``des``).

A 16-round Feistel network whose round function XORs four S-box lookups,
one per byte of the expanded half-block — the access pattern that makes
real DES cache-interesting (hot S-box tables indexed by key/data-derived
bytes).  Full DES bit permutations (IP/E/P/PC1/PC2) are dropped: they are
pure register shuffling and contribute no memory references, which is
what this reproduction needs to preserve.  The simplification is recorded
in DESIGN.md.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads.common import LCG, WORD_MASK, Workload, scaled, words_directive

_ROUNDS = 16
_DEFAULT_BLOCKS = 96


def _feistel(right: int, key: int, sboxes: List[List[int]]) -> int:
    """Round function: XOR of per-byte S-box lookups of ``right ^ key``."""
    t = (right ^ key) & WORD_MASK
    return (
        sboxes[0][t & 0xFF]
        ^ sboxes[1][(t >> 8) & 0xFF]
        ^ sboxes[2][(t >> 16) & 0xFF]
        ^ sboxes[3][(t >> 24) & 0xFF]
    )


def encrypt_block(
    left: int, right: int, round_keys: List[int], sboxes: List[List[int]]
) -> Tuple[int, int]:
    """Run the 16 Feistel rounds on one (L, R) pair."""
    for key in round_keys:
        left, right = right, left ^ _feistel(right, key, sboxes)
    return left, right


def golden(
    blocks: List[Tuple[int, int]], round_keys: List[int], sboxes: List[List[int]]
) -> int:
    """Checksum over all ciphertext halves."""
    checksum = 0
    for left, right in blocks:
        left, right = encrypt_block(left, right, round_keys, sboxes)
        checksum = (checksum + left) & WORD_MASK
        checksum = (checksum ^ right) & WORD_MASK
    return checksum


def make_inputs(count: int):
    """S-boxes, round keys and plaintext blocks."""
    rng = LCG(seed=0xDE5)
    sboxes = [rng.words(256) for _ in range(4)]
    round_keys = rng.words(_ROUNDS)
    blocks = [(rng.next(), rng.next()) for _ in range(count)]
    return sboxes, round_keys, blocks


def build(scale: str = "default") -> Workload:
    """Build the des workload at a given scale."""
    count = scaled(_DEFAULT_BLOCKS, scale)
    sboxes, round_keys, blocks = make_inputs(count)
    flat_blocks = [v for pair in blocks for v in pair]
    source = f"""
; des: {_ROUNDS}-round table-driven Feistel cipher over {count} blocks
        .equ N, {count}
        .equ ROUNDS, {_ROUNDS}
        .data
sbox0:
{words_directive(sboxes[0])}
sbox1:
{words_directive(sboxes[1])}
sbox2:
{words_directive(sboxes[2])}
sbox3:
{words_directive(sboxes[3])}
rkeys:
{words_directive(round_keys)}
blocks:
{words_directive(flat_blocks)}
result: .word 0
        .text
main:   li   r1, 0              ; block index
        li   r2, 0              ; checksum
        li   r10, N
        li   r11, ROUNDS
bloop:  slli r3, r1, 1
        lw   r4, blocks(r3)     ; L
        addi r3, r3, 1
        lw   r5, blocks(r3)     ; R
        li   r6, 0              ; round
rloop:  lw   r7, rkeys(r6)
        xor  r7, r7, r5         ; t = R ^ K
        andi r8, r7, 0xFF
        lw   r9, sbox0(r8)      ; f accumulates in r9
        srli r7, r7, 8
        andi r8, r7, 0xFF
        lw   r12, sbox1(r8)
        xor  r9, r9, r12
        srli r7, r7, 8
        andi r8, r7, 0xFF
        lw   r12, sbox2(r8)
        xor  r9, r9, r12
        srli r7, r7, 8
        lw   r12, sbox3(r7)
        xor  r9, r9, r12
        xor  r9, r9, r4         ; L ^ f
        mv   r4, r5             ; L = R
        mv   r5, r9             ; R = L ^ f
        inc  r6
        blt  r6, r11, rloop
        add  r2, r2, r4
        xor  r2, r2, r5
        inc  r1
        blt  r1, r10, bloop
        sw   r2, result
        halt
"""
    return Workload(
        name="des",
        description="16-round table-driven Feistel cipher",
        source=source,
        expected=golden(blocks, round_keys, sboxes),
        scale=scale,
        params={"blocks": count, "rounds": _ROUNDS},
    )
