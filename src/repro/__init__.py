"""repro — Analytical Design Space Exploration of Caches for Embedded Systems.

A complete reproduction of Ghosh & Givargis (DATE 2003): an analytical
algorithm that, given a memory-reference trace and a miss budget K,
directly computes the minimum associativity for every cache depth — no
per-configuration simulation — plus every substrate the paper's
evaluation depends on:

* :mod:`repro.trace`     — traces, stripping, statistics, file I/O,
  synthetic generators
* :mod:`repro.isa`       — a small RISC VM + assembler (stands in for the
  paper's MIPS R3000 simulator)
* :mod:`repro.workloads` — the 12 PowerStone-style benchmark kernels
* :mod:`repro.cache`     — set-associative cache simulator and Mattson
  one-pass stack-distance simulator
* :mod:`repro.core`      — the paper's contribution (BCAT, MRCT, postlude)
* :mod:`repro.explore`   — traditional DSE baselines and comparisons
* :mod:`repro.analysis`  — table rendering and runtime measurement
* :mod:`repro.obs`       — per-phase telemetry (recorders, run manifests)
* :mod:`repro.store`     — persistent content-addressed artifact cache
  (warm-starts repeated explorations of the same trace)
* :mod:`repro.scenario`  — policy-aware exploration beyond the paper's
  fixed point: FIFO replacement, two-level hierarchies, cost models
* :mod:`repro.verify`    — differential verification: corpus-driven
  fuzzing oracle, metamorphic invariants, trace shrinking, failure corpus
* :mod:`repro.serve`     — the exploration daemon: async HTTP/JSON
  service with in-flight dedup, a worker pool, and live /metrics
  (kept out of the top-level namespace; ``from repro.serve import ...``)

Quickstart::

    from repro.trace import loop_nest_trace
    from repro.core import AnalyticalCacheExplorer

    trace = loop_nest_trace(footprint=64, iterations=100)
    result = AnalyticalCacheExplorer(trace).explore(budget=0)
    for instance in result:
        print(instance)
"""

from repro.core import (
    AnalyticalCacheExplorer,
    CacheInstance,
    ExplorationReport,
    ExplorationRequest,
    ExplorationResult,
    explore,
    explore_request,
)
from repro.cache import CacheConfig, CacheSimulator, SimulationResult, simulate_trace
from repro.obs import NullRecorder, Recorder, RunManifest, validate_manifest
from repro.scenario import COST_MODELS, ScenarioSpec
from repro.store import ArtifactStore, StoreStats, default_cache_dir, trace_digest
from repro.trace import Trace, compute_statistics, read_trace, write_trace
from repro.verify import VerifyConfig, VerifyReport, run_verify

__version__ = "1.9.0"

__all__ = [
    "AnalyticalCacheExplorer",
    "ArtifactStore",
    "CacheInstance",
    "ExplorationReport",
    "ExplorationRequest",
    "ExplorationResult",
    "StoreStats",
    "default_cache_dir",
    "explore",
    "explore_request",
    "trace_digest",
    "CacheConfig",
    "CacheSimulator",
    "SimulationResult",
    "simulate_trace",
    "COST_MODELS",
    "ScenarioSpec",
    "NullRecorder",
    "Recorder",
    "RunManifest",
    "validate_manifest",
    "Trace",
    "compute_statistics",
    "read_trace",
    "write_trace",
    "VerifyConfig",
    "VerifyReport",
    "run_verify",
    "__version__",
]
