"""Instruction set definition.

Every instruction is stored fully decoded as an :class:`Instruction` —
an opcode plus up to three integer operands whose meaning depends on the
opcode's *shape*:

=========  =======================  =====================================
shape      operands (a, b, c)       semantics
=========  =======================  =====================================
R          rd, rs, rt               ``rd <- rs OP rt``
I          rd, rs, imm              ``rd <- rs OP imm``
LI         rd, imm, -               ``rd <- imm``
MEM        reg, imm, rs             ``lw: reg <- M[rs + imm]``;
                                    ``sw: M[rs + imm] <- reg``
BR         rs, rt, target           branch to instruction index ``target``
J          target, -, -             jump / jump-and-link
JR         rs, -, -                 jump to register
HALT       -, -, -                  stop
=========  =======================  =====================================

Registers are ``r0`` ... ``r15``; ``r0`` reads as zero and ignores
writes.  Conventional aliases: ``zero`` = r0, ``sp`` = r14, ``ra`` = r15.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict

NUM_REGISTERS = 16
WORD_MASK = 0xFFFFFFFF
WORD_SIGN = 0x80000000

REGISTER_ALIASES: Dict[str, int] = {
    **{f"r{i}": i for i in range(NUM_REGISTERS)},
    "zero": 0,
    "sp": 14,
    "ra": 15,
}


class Opcode(enum.IntEnum):
    """All machine opcodes (pseudo-instructions expand to these)."""

    # R-type ALU
    ADD = enum.auto()
    SUB = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    NOR = enum.auto()
    SLL = enum.auto()
    SRL = enum.auto()
    SRA = enum.auto()
    SLT = enum.auto()
    SLTU = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    REM = enum.auto()
    # I-type ALU
    ADDI = enum.auto()
    ANDI = enum.auto()
    ORI = enum.auto()
    XORI = enum.auto()
    SLTI = enum.auto()
    SLLI = enum.auto()
    SRLI = enum.auto()
    SRAI = enum.auto()
    LI = enum.auto()
    # memory
    LW = enum.auto()
    SW = enum.auto()
    # control
    BEQ = enum.auto()
    BNE = enum.auto()
    BLT = enum.auto()
    BGE = enum.auto()
    BLTU = enum.auto()
    BGEU = enum.auto()
    J = enum.auto()
    JAL = enum.auto()
    JR = enum.auto()
    HALT = enum.auto()


class Shape(enum.Enum):
    """Operand shape of an opcode (drives assembler parsing)."""

    R = "r"          # op rd, rs, rt
    I = "i"          # op rd, rs, imm
    LI = "li"        # op rd, imm
    MEM = "mem"      # op reg, imm(rs)
    BR = "br"        # op rs, rt, label
    J = "j"          # op label
    JR = "jr"        # op rs
    HALT = "halt"    # op


SHAPES: Dict[Opcode, Shape] = {
    Opcode.ADD: Shape.R,
    Opcode.SUB: Shape.R,
    Opcode.AND: Shape.R,
    Opcode.OR: Shape.R,
    Opcode.XOR: Shape.R,
    Opcode.NOR: Shape.R,
    Opcode.SLL: Shape.R,
    Opcode.SRL: Shape.R,
    Opcode.SRA: Shape.R,
    Opcode.SLT: Shape.R,
    Opcode.SLTU: Shape.R,
    Opcode.MUL: Shape.R,
    Opcode.DIV: Shape.R,
    Opcode.REM: Shape.R,
    Opcode.ADDI: Shape.I,
    Opcode.ANDI: Shape.I,
    Opcode.ORI: Shape.I,
    Opcode.XORI: Shape.I,
    Opcode.SLTI: Shape.I,
    Opcode.SLLI: Shape.I,
    Opcode.SRLI: Shape.I,
    Opcode.SRAI: Shape.I,
    Opcode.LI: Shape.LI,
    Opcode.LW: Shape.MEM,
    Opcode.SW: Shape.MEM,
    Opcode.BEQ: Shape.BR,
    Opcode.BNE: Shape.BR,
    Opcode.BLT: Shape.BR,
    Opcode.BGE: Shape.BR,
    Opcode.BLTU: Shape.BR,
    Opcode.BGEU: Shape.BR,
    Opcode.J: Shape.J,
    Opcode.JAL: Shape.J,
    Opcode.JR: Shape.JR,
    Opcode.HALT: Shape.HALT,
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Attributes:
        op: the opcode.
        a, b, c: operands; meaning is shape-dependent (see module doc).
        source_line: 1-based line in the assembly source (0 if synthetic).
    """

    op: Opcode
    a: int = 0
    b: int = 0
    c: int = 0
    source_line: int = 0

    def __str__(self) -> str:
        shape = SHAPES[self.op]
        name = self.op.name.lower()
        if shape is Shape.R:
            return f"{name} r{self.a}, r{self.b}, r{self.c}"
        if shape is Shape.I:
            return f"{name} r{self.a}, r{self.b}, {self.c}"
        if shape is Shape.LI:
            return f"{name} r{self.a}, {self.b}"
        if shape is Shape.MEM:
            return f"{name} r{self.a}, {self.b}(r{self.c})"
        if shape is Shape.BR:
            return f"{name} r{self.a}, r{self.b}, @{self.c}"
        if shape is Shape.J:
            return f"{name} @{self.a}"
        if shape is Shape.JR:
            return f"{name} r{self.a}"
        return name


def to_signed(value: int) -> int:
    """Interpret a 32-bit word as a signed integer."""
    value &= WORD_MASK
    return value - (1 << 32) if value & WORD_SIGN else value


def to_unsigned(value: int) -> int:
    """Mask a Python int to a 32-bit word."""
    return value & WORD_MASK
