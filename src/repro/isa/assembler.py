"""Two-pass assembler for the repro ISA.

Source format (MIPS-flavoured, one statement per line)::

    ; comment            # comment
            .equ  SIZE, 64          ; named constant
            .data
    table:  .word 1, 2, 3, 0x10     ; initialized words
    buf:    .space SIZE             ; zero-filled words
            .text
    main:   li    r1, 0
    loop:   lw    r2, table(r1)     ; register + symbol offset
            add   r3, r3, r2
            addi  r1, r1, 1
            blt   r1, r4, loop
            sw    r3, result
            halt

Labels defined in ``.text`` resolve to fetch addresses (``code_base`` +
instruction index); labels in ``.data`` resolve to data word addresses.
Operand expressions may combine integers, constants and labels with
``+``/``-``.

Pseudo-instructions (each expands to exactly one machine instruction):
``mv``, ``nop``, ``neg``, ``not``, ``b``, ``beqz``, ``bnez``, ``bltz``,
``bgez``, ``bgtz``, ``blez``, ``bgt``, ``ble``, ``call``, ``ret``,
``inc``, ``dec``, ``subi``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple

from repro.isa.errors import AssemblerError
from repro.isa.instructions import (
    Instruction,
    Opcode,
    REGISTER_ALIASES,
    SHAPES,
    Shape,
)
from repro.isa.program import CODE_BASE, DATA_BASE, DEFAULT_ADDRESS_BITS, Program

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_MEM_OPERAND_RE = re.compile(r"^(?P<offset>[^()]*)\((?P<reg>[^()]+)\)$")


def _split_statement(line: str) -> str:
    """Strip comments (``;`` or ``#``) and surrounding whitespace."""
    for marker in (";", "#"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _split_operands(text: str) -> List[str]:
    """Split an operand field on commas outside parentheses."""
    operands: List[str] = []
    depth = 0
    current = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            operands.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        operands.append(current.strip())
    return operands


class _Statement:
    """A parsed source line awaiting pass-2 encoding."""

    __slots__ = ("mnemonic", "operands", "line")

    def __init__(self, mnemonic: str, operands: List[str], line: int) -> None:
        self.mnemonic = mnemonic
        self.operands = operands
        self.line = line


# Pseudo-instruction rewriters: operands -> (opcode-name, operands)
_PSEUDOS: Dict[str, Callable[[List[str]], Tuple[str, List[str]]]] = {
    "mv": lambda ops: ("add", [ops[0], ops[1], "r0"]),
    "nop": lambda ops: ("add", ["r0", "r0", "r0"]),
    "neg": lambda ops: ("sub", [ops[0], "r0", ops[1]]),
    "not": lambda ops: ("nor", [ops[0], ops[1], "r0"]),
    "b": lambda ops: ("j", ops),
    "beqz": lambda ops: ("beq", [ops[0], "r0", ops[1]]),
    "bnez": lambda ops: ("bne", [ops[0], "r0", ops[1]]),
    "bltz": lambda ops: ("blt", [ops[0], "r0", ops[1]]),
    "bgez": lambda ops: ("bge", [ops[0], "r0", ops[1]]),
    "bgtz": lambda ops: ("blt", ["r0", ops[0], ops[1]]),
    "blez": lambda ops: ("bge", ["r0", ops[0], ops[1]]),
    "bgt": lambda ops: ("blt", [ops[1], ops[0], ops[2]]),
    "ble": lambda ops: ("bge", [ops[1], ops[0], ops[2]]),
    "call": lambda ops: ("jal", ops),
    "ret": lambda ops: ("jr", ["ra"]),
    "inc": lambda ops: ("addi", [ops[0], ops[0], "1"]),
    "dec": lambda ops: ("addi", [ops[0], ops[0], "-1"]),
    "subi": lambda ops: ("addi", [ops[0], ops[1], f"-({ops[2]})"]),
}

_PSEUDO_OPERAND_COUNT = {
    "mv": 2, "nop": 0, "neg": 2, "not": 2, "b": 1, "beqz": 2, "bnez": 2,
    "bltz": 2, "bgez": 2, "bgtz": 2, "blez": 2, "bgt": 3, "ble": 3,
    "call": 1, "ret": 0, "inc": 1, "dec": 1, "subi": 3,
}


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(
        self,
        code_base: int = CODE_BASE,
        data_base: int = DATA_BASE,
        address_bits: int = DEFAULT_ADDRESS_BITS,
    ) -> None:
        if code_base < 0 or data_base < 0:
            raise ValueError("code_base and data_base must be non-negative")
        self.code_base = code_base
        self.data_base = data_base
        self.address_bits = address_bits

    # -- expression evaluation ----------------------------------------------

    def _lookup(self, token: str, symbols: Dict[str, int], line: int) -> int:
        token = token.strip()
        if not token:
            raise AssemblerError("empty expression term", line)
        negative = False
        while token and token[0] in "+-":
            if token[0] == "-":
                negative = not negative
            token = token[1:].strip()
        if token.startswith("("):
            if not token.endswith(")"):
                raise AssemblerError(f"unbalanced parentheses in {token!r}", line)
            value = self._evaluate(token[1:-1], symbols, line)
        elif token.startswith("0x") or token.startswith("0X"):
            value = int(token, 16)
        elif token.startswith("0b") or token.startswith("0B"):
            value = int(token, 2)
        elif token.lstrip("-").isdigit():
            value = int(token)
        elif token.startswith("'") and token.endswith("'") and len(token) == 3:
            value = ord(token[1])
        elif _LABEL_RE.match(token):
            if token not in symbols:
                raise AssemblerError(f"undefined symbol {token!r}", line)
            value = symbols[token]
        else:
            raise AssemblerError(f"cannot parse expression term {token!r}", line)
        return -value if negative else value

    def _evaluate(self, expr: str, symbols: Dict[str, int], line: int) -> int:
        """Evaluate ``term (+|- term)*`` with parenthesized sub-expressions."""
        expr = expr.strip()
        if not expr:
            raise AssemblerError("empty expression", line)
        terms: List[str] = []
        signs: List[int] = []
        depth = 0
        current = ""
        sign = 1
        for ch in expr:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if depth == 0 and ch in "+-" and current.strip():
                terms.append(current)
                signs.append(sign)
                sign = 1 if ch == "+" else -1
                current = ""
            else:
                current += ch
        terms.append(current)
        signs.append(sign)
        return sum(s * self._lookup(t, symbols, line) for s, t in zip(signs, terms))

    def _register(self, token: str, line: int) -> int:
        token = token.strip().lower()
        if token not in REGISTER_ALIASES:
            raise AssemblerError(f"unknown register {token!r}", line)
        return REGISTER_ALIASES[token]

    # -- passes -------------------------------------------------------------------

    def assemble(self, source: str, name: str = "") -> Program:
        """Assemble a source string into a :class:`Program`."""
        statements, data_items, symbols = self._pass_one(source)
        instructions = [self._encode(stmt, symbols) for stmt in statements]
        data = self._layout_data(data_items, symbols)
        return Program(
            instructions=instructions,
            data=data,
            symbols=symbols,
            code_base=self.code_base,
            data_base=self.data_base,
            address_bits=self.address_bits,
            name=name,
        )

    def _pass_one(self, source: str):
        """Collect statements, data items and the symbol table."""
        statements: List[_Statement] = []
        # data item: (kind, payload, line) where kind is "word" or "space"
        data_items: List[Tuple[str, object, int]] = []
        symbols: Dict[str, int] = {}
        section = "text"
        data_cursor = self.data_base

        for lineno, raw in enumerate(source.splitlines(), start=1):
            text = _split_statement(raw)
            if not text:
                continue
            # Peel off any leading labels.
            while True:
                match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*)\s*:\s*(.*)$", text)
                if not match:
                    break
                label, text = match.group(1), match.group(2)
                if label in symbols:
                    raise AssemblerError(f"duplicate label {label!r}", lineno)
                if section == "text":
                    symbols[label] = self.code_base + len(statements)
                else:
                    symbols[label] = data_cursor
                if not text:
                    break
            if not text:
                continue

            parts = text.split(None, 1)
            mnemonic = parts[0].lower()
            rest = parts[1] if len(parts) > 1 else ""

            if mnemonic == ".text":
                section = "text"
            elif mnemonic == ".data":
                section = "data"
            elif mnemonic == ".equ":
                operands = _split_operands(rest)
                if len(operands) != 2:
                    raise AssemblerError(".equ needs NAME, VALUE", lineno)
                const_name = operands[0]
                if not _LABEL_RE.match(const_name):
                    raise AssemblerError(
                        f"bad constant name {const_name!r}", lineno
                    )
                if const_name in symbols:
                    raise AssemblerError(
                        f"duplicate symbol {const_name!r}", lineno
                    )
                symbols[const_name] = self._evaluate(operands[1], symbols, lineno)
            elif mnemonic == ".word":
                if section != "data":
                    raise AssemblerError(".word outside .data section", lineno)
                values = _split_operands(rest)
                if not values:
                    raise AssemblerError(".word needs at least one value", lineno)
                data_items.append(("word", (data_cursor, values), lineno))
                data_cursor += len(values)
            elif mnemonic == ".space":
                if section != "data":
                    raise AssemblerError(".space outside .data section", lineno)
                count = self._evaluate(rest, symbols, lineno)
                if count < 0:
                    raise AssemblerError(".space size must be >= 0", lineno)
                data_cursor += count
            elif mnemonic == ".align":
                if section != "data":
                    raise AssemblerError(".align outside .data section", lineno)
                boundary = self._evaluate(rest, symbols, lineno)
                if boundary < 1 or (boundary & (boundary - 1)) != 0:
                    raise AssemblerError(
                        ".align boundary must be a power of two", lineno
                    )
                data_cursor = (data_cursor + boundary - 1) & ~(boundary - 1)
            elif mnemonic == ".ascii":
                if section != "data":
                    raise AssemblerError(".ascii outside .data section", lineno)
                text_value = rest.strip()
                if (
                    len(text_value) < 2
                    or text_value[0] != '"'
                    or text_value[-1] != '"'
                ):
                    raise AssemblerError('.ascii needs a "quoted string"', lineno)
                chars = [str(ord(ch)) for ch in text_value[1:-1]]
                if not chars:
                    raise AssemblerError(".ascii string must be non-empty", lineno)
                # One character per word: this machine is word-addressed.
                data_items.append(("word", (data_cursor, chars), lineno))
                data_cursor += len(chars)
            elif mnemonic.startswith("."):
                raise AssemblerError(f"unknown directive {mnemonic!r}", lineno)
            else:
                if section != "text":
                    raise AssemblerError(
                        f"instruction {mnemonic!r} outside .text section", lineno
                    )
                statements.append(
                    _Statement(mnemonic, _split_operands(rest), lineno)
                )
        return statements, data_items, symbols

    def _layout_data(self, data_items, symbols) -> List[Tuple[int, int]]:
        """Resolve .word expressions now that all symbols are known."""
        image: List[Tuple[int, int]] = []
        for kind, payload, lineno in data_items:
            if kind != "word":
                continue
            base, values = payload
            for offset, expr in enumerate(values):
                image.append((base + offset, self._evaluate(expr, symbols, lineno)))
        return image

    def _encode(self, stmt: _Statement, symbols: Dict[str, int]) -> Instruction:
        """Pass 2: encode one statement into an :class:`Instruction`."""
        mnemonic, operands, line = stmt.mnemonic, stmt.operands, stmt.line
        if mnemonic in _PSEUDOS:
            expected = _PSEUDO_OPERAND_COUNT[mnemonic]
            if len(operands) != expected:
                raise AssemblerError(
                    f"{mnemonic} expects {expected} operand(s), got {len(operands)}",
                    line,
                )
            mnemonic, operands = _PSEUDOS[mnemonic](operands)
        try:
            opcode = Opcode[mnemonic.upper()]
        except KeyError:
            raise AssemblerError(f"unknown instruction {mnemonic!r}", line) from None

        shape = SHAPES[opcode]
        if shape is Shape.R:
            self._expect(operands, 3, mnemonic, line)
            return Instruction(
                opcode,
                self._register(operands[0], line),
                self._register(operands[1], line),
                self._register(operands[2], line),
                source_line=line,
            )
        if shape is Shape.I:
            self._expect(operands, 3, mnemonic, line)
            return Instruction(
                opcode,
                self._register(operands[0], line),
                self._register(operands[1], line),
                self._evaluate(operands[2], symbols, line),
                source_line=line,
            )
        if shape is Shape.LI:
            self._expect(operands, 2, mnemonic, line)
            return Instruction(
                opcode,
                self._register(operands[0], line),
                self._evaluate(operands[1], symbols, line),
                source_line=line,
            )
        if shape is Shape.MEM:
            self._expect(operands, 2, mnemonic, line)
            reg = self._register(operands[0], line)
            offset, base_reg = self._memory_operand(operands[1], symbols, line)
            return Instruction(opcode, reg, offset, base_reg, source_line=line)
        if shape is Shape.BR:
            self._expect(operands, 3, mnemonic, line)
            target = self._code_target(operands[2], symbols, line)
            return Instruction(
                opcode,
                self._register(operands[0], line),
                self._register(operands[1], line),
                target,
                source_line=line,
            )
        if shape is Shape.J:
            self._expect(operands, 1, mnemonic, line)
            return Instruction(
                opcode, self._code_target(operands[0], symbols, line), source_line=line
            )
        if shape is Shape.JR:
            self._expect(operands, 1, mnemonic, line)
            return Instruction(
                opcode, self._register(operands[0], line), source_line=line
            )
        self._expect(operands, 0, mnemonic, line)
        return Instruction(opcode, source_line=line)

    @staticmethod
    def _expect(operands: List[str], count: int, mnemonic: str, line: int) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"{mnemonic} expects {count} operand(s), got {len(operands)}", line
            )

    def _memory_operand(
        self, text: str, symbols: Dict[str, int], line: int
    ) -> Tuple[int, int]:
        """Parse ``offset(reg)``, ``(reg)`` or a bare absolute expression."""
        match = _MEM_OPERAND_RE.match(text.strip())
        if match:
            offset_text = match.group("offset").strip()
            offset = (
                self._evaluate(offset_text, symbols, line) if offset_text else 0
            )
            return offset, self._register(match.group("reg"), line)
        return self._evaluate(text, symbols, line), 0

    def _code_target(self, text: str, symbols: Dict[str, int], line: int) -> int:
        """Resolve a branch/jump target to an instruction index."""
        address = self._evaluate(text, symbols, line)
        index = address - self.code_base
        if index < 0:
            raise AssemblerError(
                f"branch target {text!r} resolves below the code base", line
            )
        return index


def assemble(
    source: str,
    name: str = "",
    code_base: int = CODE_BASE,
    data_base: int = DATA_BASE,
    address_bits: int = DEFAULT_ADDRESS_BITS,
) -> Program:
    """Assemble source text with default memory layout (module-level helper)."""
    return Assembler(
        code_base=code_base, data_base=data_base, address_bits=address_bits
    ).assemble(source, name=name)
