"""A small word-addressed RISC virtual machine with an assembler.

This package stands in for the paper's instrumented MIPS R3000 simulator:
the 12 PowerStone-style workloads (:mod:`repro.workloads`) are written in
its assembly language, executed by :class:`~repro.isa.machine.Machine`,
and the machine's fetch/load/store hooks emit the separate instruction
and data address traces the paper's experiments consume.

The ISA is deliberately MIPS-flavoured — 16 general registers (``r0``
hardwired to zero), three-address register ALU ops, ``lw``/``sw`` with
register+offset addressing, compare-and-branch, ``jal``/``jr`` linkage —
but word-addressed and unencoded: one instruction occupies one word of
the address space, so the program counter sequence *is* the instruction
trace.
"""

from repro.isa.errors import AssemblerError, MachineError, MachineFault
from repro.isa.instructions import Opcode, Instruction, REGISTER_ALIASES
from repro.isa.program import Program
from repro.isa.assembler import Assembler, assemble
from repro.isa.machine import Machine, MachineState

__all__ = [
    "AssemblerError",
    "MachineError",
    "MachineFault",
    "Opcode",
    "Instruction",
    "REGISTER_ALIASES",
    "Program",
    "Assembler",
    "assemble",
    "Machine",
    "MachineState",
]
