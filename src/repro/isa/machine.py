"""The virtual machine.

:class:`Machine` executes an assembled :class:`~repro.isa.program.Program`
and, when tracing is enabled, records

* the **instruction trace** — the fetch address ``code_base + pc`` of
  every executed instruction, and
* the **data trace** — the word address and kind (read/write) of every
  ``lw``/``sw``,

which are exactly the two traces the paper's MIPS R3000 simulator was
instrumented to emit.

Execution semantics: 32-bit two's-complement registers, ``r0`` hardwired
to zero, signed compare/shift/divide where MIPS has them, division
truncating toward zero, faults on division by zero and runaway PCs, and a
configurable cycle limit as a safety net for buggy kernels.
"""

from __future__ import annotations

import enum
from array import array
from typing import List, Optional, Union

from repro.isa.errors import CycleLimitExceeded, MachineError, MachineFault
from repro.isa.instructions import (
    Opcode,
    REGISTER_ALIASES,
    WORD_MASK,
    to_signed,
)
from repro.isa.program import Program
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace


class MachineState(enum.Enum):
    """Lifecycle of a machine run."""

    READY = "ready"
    PAUSED = "paused"
    HALTED = "halted"


class Machine:
    """Executes one program, optionally collecting traces.

    Args:
        program: the assembled program to run.
        cycle_limit: maximum instructions to execute before raising
            :class:`CycleLimitExceeded`.
        trace: collect instruction/data traces while running.

    Example:
        >>> from repro.isa import assemble, Machine
        >>> program = assemble('''
        ...         .text
        ...         li r1, 6
        ...         li r2, 7
        ...         mul r3, r1, r2
        ...         halt
        ... ''')
        >>> machine = Machine(program)
        >>> machine.run()
        <MachineState.HALTED: 'halted'>
        >>> machine.register("r3")
        42
    """

    def __init__(
        self,
        program: Program,
        cycle_limit: int = 20_000_000,
        trace: bool = True,
    ) -> None:
        if cycle_limit < 1:
            raise ValueError("cycle_limit must be positive")
        self.program = program
        self.cycle_limit = cycle_limit
        self.tracing = trace
        self.memory: List[int] = [0] * (1 << program.address_bits)
        for address, value in program.data:
            if not 0 <= address < len(self.memory):
                raise MachineFault(
                    f"data image address {address:#x} outside memory"
                )
            self.memory[address] = value & WORD_MASK
        self.registers: List[int] = [0] * 16
        # Conventional stack: top of memory, growing down.
        self.registers[REGISTER_ALIASES["sp"]] = len(self.memory) - 16
        self.state = MachineState.READY
        self.pc = 0
        self.instructions_executed = 0
        # One merged event stream in program order; instruction and data
        # traces are filtered views, and the merged stream itself is the
        # unified-cache trace.
        self._taddr = array("q")
        self._tkind = array("b")

    # -- inspection ---------------------------------------------------------------

    def register(self, which: Union[int, str]) -> int:
        """Read a register by index or name/alias."""
        if isinstance(which, str):
            which = REGISTER_ALIASES[which.lower()]
        return self.registers[which]

    def read_word(self, address: int) -> int:
        """Read a memory word (no trace side effects)."""
        return self.memory[address]

    def read_symbol(self, name: str) -> int:
        """Read the memory word at a data label."""
        return self.memory[self.program.symbol(name)]

    def read_block(self, name: str, count: int) -> List[int]:
        """Read ``count`` words starting at a data label."""
        base = self.program.symbol(name)
        return self.memory[base : base + count]

    def _default_name(self, suffix: str) -> str:
        return f"{self.program.name}.{suffix}" if self.program.name else ""

    def instruction_trace(self, name: str = "") -> Trace:
        """The fetch-address trace collected so far."""
        fetch = AccessKind.FETCH.value
        addresses = [
            addr for addr, kind in zip(self._taddr, self._tkind) if kind == fetch
        ]
        return Trace(
            addresses,
            address_bits=self.program.address_bits,
            name=name or self._default_name("inst"),
        )

    def data_trace(self, name: str = "") -> Trace:
        """The data-address trace collected so far (kinds preserved)."""
        fetch = AccessKind.FETCH.value
        pairs = [
            (addr, AccessKind(kind))
            for addr, kind in zip(self._taddr, self._tkind)
            if kind != fetch
        ]
        return Trace(
            (addr for addr, _ in pairs),
            address_bits=self.program.address_bits,
            kinds=[kind for _, kind in pairs],
            name=name or self._default_name("data"),
        )

    def combined_trace(self, name: str = "") -> Trace:
        """Instruction and data accesses merged in program order.

        This is the trace a *unified* cache sees: each instruction's
        fetch immediately precedes any data access it performs.
        """
        return Trace(
            self._taddr,
            address_bits=self.program.address_bits,
            kinds=[AccessKind(kind) for kind in self._tkind],
            name=name or self._default_name("unified"),
        )

    # -- execution -----------------------------------------------------------------

    def step(self, count: int = 1) -> MachineState:
        """Execute at most ``count`` instructions, then pause (debugger aid).

        Resumable: a subsequent :meth:`run` or :meth:`step` continues
        from the paused program counter.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        return self.run(max_instructions=count)

    def dump_registers(self) -> str:
        """Human-readable register file snapshot (debugger aid)."""
        cells = [
            f"r{i:<2}={value:#010x}" for i, value in enumerate(self.registers)
        ]
        rows = [
            "  ".join(cells[start : start + 4]) for start in range(0, 16, 4)
        ]
        return "\n".join(rows + [f"pc ={self.pc:#010x}  state={self.state.value}"])

    def run(
        self,
        entry: Optional[str] = None,
        max_instructions: Optional[int] = None,
    ) -> MachineState:
        """Execute until ``halt`` (or for ``max_instructions`` steps).

        Starts from ``entry`` when given; otherwise from instruction 0 on
        a fresh machine, or from the paused program counter when resuming.

        Raises:
            MachineFault: on bad PCs, bad addresses or division by zero.
            CycleLimitExceeded: when the cycle limit is hit.
        """
        if self.state is MachineState.HALTED:
            raise MachineError("machine already halted; build a new one")
        if max_instructions is not None and max_instructions < 1:
            raise ValueError("max_instructions must be >= 1")
        program = self.program
        instructions = [(i.op, i.a, i.b, i.c) for i in program.instructions]
        count = len(instructions)
        code_base = program.code_base
        memory = self.memory
        address_mask = len(memory) - 1
        regs = self.registers
        tracing = self.tracing
        taddr = self._taddr.append
        tkind = self._tkind.append
        read_kind = AccessKind.READ.value
        write_kind = AccessKind.WRITE.value
        fetch_kind = AccessKind.FETCH.value
        limit = self.cycle_limit
        executed = self.instructions_executed
        # stop_at folds the pause point into the cycle-limit comparison so
        # the hot loop pays one check, not two.
        stop_at = (
            limit
            if max_instructions is None
            else min(limit, executed + max_instructions)
        )

        if entry is not None:
            pc = program.symbol(entry) - code_base
        elif self.state is MachineState.PAUSED:
            pc = self.pc
        else:
            pc = 0

        op_lw, op_sw = Opcode.LW, Opcode.SW
        op_add, op_addi, op_li = Opcode.ADD, Opcode.ADDI, Opcode.LI
        op_beq, op_bne, op_blt, op_bge = (
            Opcode.BEQ,
            Opcode.BNE,
            Opcode.BLT,
            Opcode.BGE,
        )
        op_bltu, op_bgeu = Opcode.BLTU, Opcode.BGEU
        op_j, op_jal, op_jr, op_halt = Opcode.J, Opcode.JAL, Opcode.JR, Opcode.HALT
        op_sub, op_and, op_or, op_xor, op_nor = (
            Opcode.SUB,
            Opcode.AND,
            Opcode.OR,
            Opcode.XOR,
            Opcode.NOR,
        )
        op_sll, op_srl, op_sra = Opcode.SLL, Opcode.SRL, Opcode.SRA
        op_slt, op_sltu = Opcode.SLT, Opcode.SLTU
        op_mul, op_div, op_rem = Opcode.MUL, Opcode.DIV, Opcode.REM
        op_andi, op_ori, op_xori, op_slti = (
            Opcode.ANDI,
            Opcode.ORI,
            Opcode.XORI,
            Opcode.SLTI,
        )
        op_slli, op_srli, op_srai = Opcode.SLLI, Opcode.SRLI, Opcode.SRAI

        while True:
            if not 0 <= pc < count:
                raise MachineFault(f"program counter out of range ({count} insns)", pc)
            if executed >= stop_at:
                self.instructions_executed = executed
                if executed >= limit:
                    raise CycleLimitExceeded(
                        f"cycle limit of {limit} instructions exceeded"
                    )
                self.pc = pc
                self.state = MachineState.PAUSED
                return self.state
            executed += 1
            if tracing:
                taddr(code_base + pc)
                tkind(fetch_kind)
            op, a, b, c = instructions[pc]
            pc += 1

            if op is op_lw:
                address = (regs[c] + b) & address_mask
                if tracing:
                    taddr(address)
                    tkind(read_kind)
                if a:
                    regs[a] = memory[address]
            elif op is op_sw:
                address = (regs[c] + b) & address_mask
                if tracing:
                    taddr(address)
                    tkind(write_kind)
                memory[address] = regs[a]
            elif op is op_addi:
                if a:
                    regs[a] = (regs[b] + c) & WORD_MASK
            elif op is op_add:
                if a:
                    regs[a] = (regs[b] + regs[c]) & WORD_MASK
            elif op is op_beq:
                if regs[a] == regs[b]:
                    pc = c
            elif op is op_bne:
                if regs[a] != regs[b]:
                    pc = c
            elif op is op_blt:
                if to_signed(regs[a]) < to_signed(regs[b]):
                    pc = c
            elif op is op_bge:
                if to_signed(regs[a]) >= to_signed(regs[b]):
                    pc = c
            elif op is op_bltu:
                if regs[a] < regs[b]:
                    pc = c
            elif op is op_bgeu:
                if regs[a] >= regs[b]:
                    pc = c
            elif op is op_li:
                if a:
                    regs[a] = b & WORD_MASK
            elif op is op_j:
                pc = a
            elif op is op_jal:
                regs[15] = code_base + pc  # pc already advanced: return address
                pc = a
            elif op is op_jr:
                pc = regs[a] - code_base
            elif op is op_sub:
                if a:
                    regs[a] = (regs[b] - regs[c]) & WORD_MASK
            elif op is op_and:
                if a:
                    regs[a] = regs[b] & regs[c]
            elif op is op_or:
                if a:
                    regs[a] = regs[b] | regs[c]
            elif op is op_xor:
                if a:
                    regs[a] = regs[b] ^ regs[c]
            elif op is op_nor:
                if a:
                    regs[a] = ~(regs[b] | regs[c]) & WORD_MASK
            elif op is op_sll:
                if a:
                    regs[a] = (regs[b] << (regs[c] & 31)) & WORD_MASK
            elif op is op_srl:
                if a:
                    regs[a] = regs[b] >> (regs[c] & 31)
            elif op is op_sra:
                if a:
                    regs[a] = (to_signed(regs[b]) >> (regs[c] & 31)) & WORD_MASK
            elif op is op_slt:
                if a:
                    regs[a] = 1 if to_signed(regs[b]) < to_signed(regs[c]) else 0
            elif op is op_sltu:
                if a:
                    regs[a] = 1 if regs[b] < regs[c] else 0
            elif op is op_mul:
                if a:
                    regs[a] = (regs[b] * regs[c]) & WORD_MASK
            elif op is op_div:
                divisor = to_signed(regs[c])
                if divisor == 0:
                    raise MachineFault("division by zero", pc - 1)
                quotient = int(to_signed(regs[b]) / divisor)  # truncate to zero
                if a:
                    regs[a] = quotient & WORD_MASK
            elif op is op_rem:
                divisor = to_signed(regs[c])
                if divisor == 0:
                    raise MachineFault("remainder by zero", pc - 1)
                dividend = to_signed(regs[b])
                remainder = dividend - int(dividend / divisor) * divisor
                if a:
                    regs[a] = remainder & WORD_MASK
            elif op is op_andi:
                if a:
                    regs[a] = regs[b] & (c & WORD_MASK)
            elif op is op_ori:
                if a:
                    regs[a] = regs[b] | (c & WORD_MASK)
            elif op is op_xori:
                if a:
                    regs[a] = regs[b] ^ (c & WORD_MASK)
            elif op is op_slti:
                if a:
                    regs[a] = 1 if to_signed(regs[b]) < c else 0
            elif op is op_slli:
                if a:
                    regs[a] = (regs[b] << (c & 31)) & WORD_MASK
            elif op is op_srli:
                if a:
                    regs[a] = regs[b] >> (c & 31)
            elif op is op_srai:
                if a:
                    regs[a] = (to_signed(regs[b]) >> (c & 31)) & WORD_MASK
            elif op is op_halt:
                break
            else:  # pragma: no cover - every opcode is handled above
                raise MachineFault(f"unimplemented opcode {op!r}", pc - 1)

        self.instructions_executed = executed
        self.pc = pc
        self.state = MachineState.HALTED
        return self.state


def run_program(
    program: Program, cycle_limit: int = 20_000_000, trace: bool = True
) -> Machine:
    """Assemble-and-go helper: run a program and return the halted machine."""
    machine = Machine(program, cycle_limit=cycle_limit, trace=trace)
    machine.run()
    return machine
