"""Assembled programs.

A :class:`Program` is the loadable output of the assembler: the decoded
instruction list, the initial data image, the symbol table and the memory
layout constants.  Code occupies word addresses ``[code_base,
code_base + len(instructions))``; the program counter is an index into
``instructions`` and the fetch address is ``code_base + pc``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.isa.instructions import Instruction

CODE_BASE = 0x0000
DATA_BASE = 0x4000
DEFAULT_ADDRESS_BITS = 16


@dataclass
class Program:
    """An assembled program ready to load into a :class:`~repro.isa.machine.Machine`.

    Attributes:
        instructions: decoded instructions; index = program counter.
        data: initial data image as ``(word_address, value)`` pairs.
        symbols: label -> word address (data labels) or instruction index
            (code labels, stored as absolute fetch addresses).
        code_base: word address of instruction 0.
        data_base: word address where the data section starts.
        address_bits: width of the machine address space this program
            assumes.
        name: optional program label.
    """

    instructions: List[Instruction]
    data: List[Tuple[int, int]] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    code_base: int = CODE_BASE
    data_base: int = DATA_BASE
    address_bits: int = DEFAULT_ADDRESS_BITS
    name: str = ""

    @property
    def code_words(self) -> int:
        """Size of the code segment in words."""
        return len(self.instructions)

    @property
    def data_words(self) -> int:
        """Highest data word used, relative to ``data_base`` (0 if none)."""
        if not self.data:
            return 0
        return max(addr for addr, _ in self.data) - self.data_base + 1

    def symbol(self, name: str) -> int:
        """Resolve a symbol to its word address.

        Raises:
            KeyError: with the close-match candidates when unknown.
        """
        try:
            return self.symbols[name]
        except KeyError:
            close = [s for s in self.symbols if s.startswith(name[:3])]
            hint = f" (did you mean one of {close}?)" if close else ""
            raise KeyError(f"unknown symbol {name!r}{hint}") from None

    def disassemble(self) -> str:
        """Textual listing: address, instruction, symbols as comments."""
        by_address: Dict[int, List[str]] = {}
        for sym, addr in self.symbols.items():
            by_address.setdefault(addr, []).append(sym)
        lines: List[str] = []
        for pc, instruction in enumerate(self.instructions):
            addr = self.code_base + pc
            for sym in by_address.get(addr, []):
                lines.append(f"{sym}:")
            lines.append(f"  {addr:#06x}  {instruction}")
        return "\n".join(lines)
