"""Errors raised by the assembler and the virtual machine."""

from __future__ import annotations


class AssemblerError(Exception):
    """A syntax or semantic error in assembly source.

    Attributes:
        line: 1-based source line the error was detected on (0 if unknown).
    """

    def __init__(self, message: str, line: int = 0) -> None:
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)
        self.line = line


class MachineError(Exception):
    """Base class for runtime errors in the virtual machine."""


class MachineFault(MachineError):
    """A fault during execution (bad address, division by zero, ...).

    Attributes:
        pc: program counter (instruction index) at the faulting instruction.
    """

    def __init__(self, message: str, pc: int = -1) -> None:
        prefix = f"pc={pc}: " if pc >= 0 else ""
        super().__init__(prefix + message)
        self.pc = pc


class CycleLimitExceeded(MachineError):
    """The machine ran longer than its configured cycle limit."""
