"""Executes the scenario extras: second-level exploration and costing.

The request layer runs the (policy-selected) L1 exploration itself;
this module layers the two scenario dimensions that *derive* from it:

* **Two-level hierarchies** — for each budget, the L1 winner (the
  smallest budget-satisfying instance) is materialized as a simulator
  config under the scenario's replacement policy, its recorded miss
  stream (:func:`repro.cache.simulator.miss_stream`) becomes the L2's
  input trace, and the same policy engine re-explores it with depths
  bounded by ``l2_depth``.  The counters are validated against
  :func:`repro.cache.multilevel.simulate_two_level`'s composed
  simulation exactly (tested).
* **Cost models** — each budget's instances are ranked by the
  :mod:`repro.analysis.hwmodel` estimate the scenario selects: total
  run energy, area, or access time.

Everything returns plain JSON-ready dicts, carried on
:attr:`repro.core.request.ExplorationReport.scenario`; baseline
scenarios (LRU, single level, no cost model) produce no section at
all, keeping pre-scenario reports byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.config import ReplacementKind
from repro.cache.simulator import miss_stream
from repro.core import engines as _engines
from repro.core.instance import CacheInstance, ExplorationResult
from repro.scenario.spec import ScenarioSpec
from repro.trace.trace import Trace

#: Ranking key per cost model, over `repro.explore.selection.CostedInstance`.
_COST_KEYS = {
    "energy": lambda c: c.run_energy,
    "area": lambda c: c.estimate.area_bits,
    "time": lambda c: c.estimate.access_time,
}


def explore_second_level(
    trace: Trace,
    l1: CacheInstance,
    budget: int,
    spec: ScenarioSpec,
    recorder=None,
    store=None,
) -> Dict:
    """Re-explore one L1 winner's miss stream at L2 granularity.

    The L1 is simulated under the scenario's replacement policy (the
    same policy the exploration answered for), its miss stream captured
    at L1-line granularity, and the stream explored with the scenario's
    policy engine bounded at ``l2_depth`` — exactly what an L2 behind
    this L1 would see, per :mod:`repro.cache.multilevel`.
    """
    config = l1.to_config(replacement=ReplacementKind(spec.policy))
    stream, l1_result = miss_stream(trace, config)
    explorer = _engines.policy_explorer(
        spec.policy,
        stream,
        max_depth=spec.l2_depth,
        engine=spec.engine,
        processes=spec.processes,
        prelude=spec.prelude,
        recorder=recorder,
        store=store,
    )
    result = explorer.explore(budget)
    return {
        "budget": budget,
        "l1": {"depth": l1.depth, "associativity": l1.associativity},
        "l1_cold_misses": l1_result.cold_misses,
        "l1_non_cold_misses": l1_result.non_cold_misses,
        "miss_trace_name": stream.name,
        "miss_trace_length": len(stream),
        "result": result.to_json_dict(),
    }


def cost_ranking(
    explorer,
    result: ExplorationResult,
    model: str,
    address_bits: int,
) -> Dict:
    """Rank one budget's instances by the selected cost model."""
    from repro.explore.selection import cost_exploration

    key = _COST_KEYS[model]
    costed = sorted(
        cost_exploration(explorer, result, address_bits=address_bits), key=key
    )
    return {
        "budget": result.budget,
        "designs": [
            {
                "depth": c.instance.depth,
                "associativity": c.instance.associativity,
                "size_words": c.size_words,
                "non_cold_misses": c.non_cold_misses,
                "area_bits": c.estimate.area_bits,
                "access_energy": c.estimate.access_energy,
                "access_time": c.estimate.access_time,
                "run_energy": c.run_energy,
                "cost": key(c),
            }
            for c in costed
        ],
    }


def scenario_extras(
    trace: Trace,
    spec: ScenarioSpec,
    budgets: Sequence[int],
    results: Sequence[ExplorationResult],
    explorer,
    recorder=None,
    store=None,
) -> Optional[Dict]:
    """The report's ``scenario`` section, or ``None`` for the baseline.

    ``results`` must align with ``budgets`` (one L1 exploration per
    budget, percent budgets already resolved).
    """
    if spec.is_baseline():
        return None
    extras: Dict[str, object] = {
        "policy": spec.policy,
        "levels": spec.levels,
    }
    if spec.l2_depth is not None:
        entries: List[Dict] = []
        # One miss-stream simulation per distinct winner, not per budget.
        cache: Dict[Tuple[int, int, int], Dict] = {}
        for budget, result in zip(budgets, results):
            winner = result.smallest()
            if winner is None:
                continue
            key = (winner.depth, winner.associativity, budget)
            if key not in cache:
                cache[key] = explore_second_level(
                    trace,
                    winner,
                    budget,
                    spec,
                    recorder=recorder,
                    store=store,
                )
            entries.append(cache[key])
        extras["l2"] = {"l2_depth": spec.l2_depth, "explorations": entries}
    if spec.cost_model is not None:
        extras["cost"] = {
            "model": spec.cost_model,
            "rankings": [
                cost_ranking(
                    explorer,
                    result,
                    spec.cost_model,
                    address_bits=trace.address_bits,
                )
                for result in results
            ],
        }
    return extras
