"""The scenario contract: one frozen value for *how* to explore.

:class:`ScenarioSpec` collapses the machinery knobs that used to travel
as loose :class:`repro.core.request.ExplorationRequest` kwargs
(``engine``/``processes``/``prelude``/``max_depth``/
``include_depth_one``) together with the policy-aware dimensions the
scenario tier adds (replacement ``policy``, a second cache level via
``l2_depth``, a ``cost_model`` for ranking) into one validated,
hashable dataclass.  The request carries a spec; the loose kwargs
remain as deprecation shims that build one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import engines as _engines

#: Cost models a scenario can rank designs by: total dynamic energy of
#: replaying the trace, silicon area in bit-equivalents, or access time.
COST_MODELS = ("energy", "area", "time")


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, validated description of one exploration scenario.

    Attributes:
        engine: histogram engine name (see :mod:`repro.core.engines`).
        processes: worker count for the ``parallel`` engine.
        prelude: prelude builder mode (``auto``/``fast``/``python``).
        max_depth: deepest cache depth to report (power of two).
        include_depth_one: also report the fully associative depth-1
            column.
        policy: replacement policy to explore under — any name in
            :func:`repro.core.engines.policy_names` (``lru`` is the
            paper's fully analytical pipeline; ``fifo`` the DEW-style
            hybrid).
        l2_depth: when set, also explore a second cache level: the L1
            winner's recorded miss stream is re-explored with depths
            bounded by this power of two.  ``None`` means single-level.
        cost_model: when set, rank each budget's instances by hardware
            cost — one of :data:`COST_MODELS`.  ``None`` disables
            costing.
    """

    engine: str = _engines.AUTO_ENGINE
    processes: int = 2
    prelude: str = "auto"
    max_depth: Optional[int] = None
    include_depth_one: bool = False
    policy: str = "lru"
    l2_depth: Optional[int] = None
    cost_model: Optional[str] = None

    def __post_init__(self) -> None:
        _engines.canonical_name(self.engine)  # fail fast on unknown names
        if self.prelude not in _engines.PRELUDE_MODES:
            raise ValueError(
                f"prelude must be one of {_engines.PRELUDE_MODES}, "
                f"got {self.prelude!r}"
            )
        if self.processes < 1:
            raise ValueError("processes must be >= 1")
        if self.max_depth is not None and not _is_power_of_two(self.max_depth):
            raise ValueError(
                f"max_depth must be a power of two, got {self.max_depth}"
            )
        if self.policy not in _engines.policy_names():
            raise ValueError(
                f"policy must be one of {_engines.policy_names()}, "
                f"got {self.policy!r}"
            )
        if self.l2_depth is not None and not _is_power_of_two(self.l2_depth):
            raise ValueError(
                f"l2_depth must be a power of two, got {self.l2_depth}"
            )
        if self.cost_model is not None and self.cost_model not in COST_MODELS:
            raise ValueError(
                f"cost_model must be one of {COST_MODELS}, "
                f"got {self.cost_model!r}"
            )

    @property
    def levels(self) -> int:
        """Hierarchy depth: 2 when an L2 sweep is requested, else 1."""
        return 2 if self.l2_depth is not None else 1

    def is_baseline(self) -> bool:
        """True when the scenario adds nothing beyond the paper's space.

        A baseline scenario (LRU, single level, no cost model) produces
        byte-identical reports to pre-scenario releases — the report's
        ``scenario`` section is only emitted otherwise.
        """
        return (
            self.policy == "lru"
            and self.l2_depth is None
            and self.cost_model is None
        )

    def replace(self, **changes: object) -> "ScenarioSpec":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    def to_json_dict(self) -> Dict:
        """The scenario's wire form (the ``/1.2`` request block)."""
        return {
            "policy": self.policy,
            "l2_depth": self.l2_depth,
            "cost_model": self.cost_model,
        }
