"""Policy-aware exploration scenarios: replacement x hierarchy x cost.

The scenario tier answers the paper's budget -> design-space question
beyond its fixed point (single-level, one-word-line, LRU):

* :class:`ScenarioSpec` — the frozen contract carried by every
  :class:`repro.core.request.ExplorationRequest`, bundling the
  machinery knobs with the scenario dimensions (replacement ``policy``,
  second-level ``l2_depth``, ``cost_model``).
* :mod:`repro.scenario.runner` — executes the extras: L1-winner miss
  streams re-explored at L2 granularity (validated against
  :mod:`repro.cache.multilevel`'s composed simulation) and per-budget
  hardware-cost rankings.

Policy engines themselves live in the registry
(:func:`repro.core.engines.policy_explorer`); ``fifo`` resolves to the
DEW-style hybrid of :mod:`repro.core.fifo`.
"""

from repro.scenario.spec import COST_MODELS, ScenarioSpec

__all__ = [
    "COST_MODELS",
    "ScenarioSpec",
    "cost_ranking",
    "explore_second_level",
    "scenario_extras",
]

_RUNNER_EXPORTS = ("cost_ranking", "explore_second_level", "scenario_extras")


def __getattr__(name: str):
    # Lazy: runner pulls in cache/explore modules the spec does not
    # need, and must not load while repro.core is mid-import.
    if name in _RUNNER_EXPORTS:
        from repro.scenario import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    # Make the lazy runner names visible to dir()/introspection.
    return sorted(set(globals()) | set(_RUNNER_EXPORTS))
