"""Trace-driven set-associative cache simulator.

This is the reference comparator for the analytical algorithm: for an LRU
cache with one-word lines, :func:`simulate_trace` must report *exactly*
the non-cold miss count the analytical postlude computes — a property the
test suite enforces on random traces.

The simulator also supports multi-word lines, FIFO/random/PLRU
replacement and write-back/write-through accounting for experiments beyond
the paper's fixed choices.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Set, Tuple

from repro.cache.config import CacheConfig, WritePolicy
from repro.cache.policies import SetPolicy, make_set_policy
from repro.cache.result import SimulationResult
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace


class CacheSimulator:
    """A stateful cache that replays accesses one at a time.

    Example:
        >>> from repro.cache import CacheConfig, CacheSimulator
        >>> sim = CacheSimulator(CacheConfig(depth=2, associativity=1))
        >>> sim.access(0), sim.access(2), sim.access(0)
        (False, False, False)
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._sets: Dict[int, SetPolicy] = {}
        self._seen_lines: Set[int] = set()
        self._dirty: Set[int] = set()
        self.accesses = 0
        self.hits = 0
        self.cold_misses = 0
        self.non_cold_misses = 0
        self.writebacks = 0
        self.write_throughs = 0

    def _set_for(self, index: int) -> SetPolicy:
        policy = self._sets.get(index)
        if policy is None:
            policy = make_set_policy(self.config, self._rng)
            self._sets[index] = policy
        return policy

    def access(self, address: int, kind: AccessKind = AccessKind.READ) -> bool:
        """Replay one access; returns True on hit."""
        config = self.config
        line = config.line_address(address)
        index = config.set_index(address)
        tag = config.tag(address)
        policy = self._set_for(index)

        hit, evicted = policy.lookup(tag)
        self.accesses += 1
        if hit:
            self.hits += 1
        elif line in self._seen_lines:
            self.non_cold_misses += 1
        else:
            self.cold_misses += 1
            self._seen_lines.add(line)

        if evicted is not None:
            evicted_line = (evicted << config.index_bits) | index
            if evicted_line in self._dirty:
                self._dirty.discard(evicted_line)
                self.writebacks += 1

        if kind is AccessKind.WRITE:
            if config.write_policy is WritePolicy.WRITE_BACK:
                self._dirty.add(line)
            else:
                self.write_throughs += 1
        return hit

    def contains(self, address: int) -> bool:
        """True when the line holding ``address`` is resident (no side effects)."""
        config = self.config
        index = config.set_index(address)
        policy = self._sets.get(index)
        if policy is None:
            return False
        return policy.contains(config.tag(address))

    def flush(self) -> int:
        """Write back all dirty lines; returns how many were written."""
        flushed = len(self._dirty)
        self.writebacks += flushed
        self._dirty.clear()
        return flushed

    def result(self) -> SimulationResult:
        """Snapshot the counters as a :class:`SimulationResult`."""
        return SimulationResult(
            config=self.config,
            accesses=self.accesses,
            hits=self.hits,
            cold_misses=self.cold_misses,
            non_cold_misses=self.non_cold_misses,
            writebacks=self.writebacks,
            write_throughs=self.write_throughs,
        )


def simulate_trace(trace: Trace, config: CacheConfig) -> SimulationResult:
    """Replay a whole trace through a fresh cache.

    Access kinds attached to the trace are honoured (for write accounting);
    untyped traces replay as reads, which leaves miss counts unchanged.
    """
    sim = CacheSimulator(config)
    if trace.has_kinds:
        for i, addr in enumerate(trace):
            sim.access(addr, trace.kind(i))
    else:
        access = sim.access
        for addr in trace:
            access(addr)
    return sim.result()


def simulate_many(
    trace: Trace, configs: Iterable[CacheConfig]
) -> Dict[CacheConfig, SimulationResult]:
    """Exhaustively simulate a trace over many configs (Figure 1(a) style)."""
    return {config: simulate_trace(trace, config) for config in configs}


def miss_stream(trace: Trace, config: CacheConfig) -> Tuple[Trace, SimulationResult]:
    """Replay a trace and collect the *miss stream* — the line-address
    sequence of every miss, in order.

    This is what the next level of a cache hierarchy sees: an L2 cache
    services exactly the (cold + non-cold) misses of the L1 in front of
    it, at L1-line granularity.  Feeding the miss stream to the
    analytical explorer extends the paper's method one level down the
    hierarchy.

    Returns:
        ``(misses, result)`` — the miss trace (kinds preserved when the
        input carries them; a miss triggered by a write is tagged WRITE)
        and the L1 simulation result.
    """
    sim = CacheSimulator(config)
    addresses = []
    kinds = [] if trace.has_kinds else None
    for i, addr in enumerate(trace):
        kind = trace.kind(i)
        if not sim.access(addr, kind):
            addresses.append(config.line_address(addr))
            if kinds is not None:
                kinds.append(kind)
    bits = max(1, trace.address_bits - config.offset_bits)
    stream = Trace(
        addresses,
        address_bits=bits,
        kinds=kinds,
        name=f"{trace.name}/missL1" if trace.name else "",
    )
    return stream, sim.result()
