"""Composed two-level cache simulation.

A straightforward L1→L2 simulator: every access probes L1; L1 misses
probe L2 (at L1-line granularity).  Exists to validate the hierarchy
*exploration* path end to end — simulating L2 over the recorded L1 miss
stream must give exactly the same L2 counters as this composed
simulation, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig
from repro.cache.result import SimulationResult
from repro.cache.simulator import CacheSimulator
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TwoLevelResult:
    """Counters of a composed L1+L2 run.

    Attributes:
        l1: the first-level result (sees every access).
        l2: the second-level result (sees L1 misses, at L1-line
            granularity).
    """

    l1: SimulationResult
    l2: SimulationResult

    @property
    def memory_accesses(self) -> int:
        """Accesses that fell through both levels (all L2 misses)."""
        return self.l2.misses

    @property
    def global_miss_rate(self) -> float:
        """Fraction of processor accesses served by neither level."""
        if self.l1.accesses == 0:
            return 0.0
        return self.memory_accesses / self.l1.accesses

    @property
    def amat(self) -> float:
        """Average memory access time for unit costs (1 / 10 / 100).

        A conventional teaching model: L1 hit = 1 cycle, L2 hit adds 10,
        memory adds 100.  Useful for ranking, not absolute timing.
        """
        if self.l1.accesses == 0:
            return 0.0
        return (
            self.l1.accesses
            + 10 * self.l1.misses
            + 100 * self.l2.misses
        ) / self.l1.accesses


class TwoLevelSimulator:
    """L1 backed by L2; replays accesses one at a time.

    The L2 is indexed with *L1-line addresses* (the unit of transfer out
    of L1), so ``l2_config.line_words`` counts L1 lines per L2 line.
    """

    def __init__(self, l1_config: CacheConfig, l2_config: CacheConfig) -> None:
        self.l1 = CacheSimulator(l1_config)
        self.l2 = CacheSimulator(l2_config)
        self._l1_config = l1_config

    def access(self, address: int, kind: AccessKind = AccessKind.READ) -> bool:
        """Replay one access; returns True when it hit in L1."""
        if self.l1.access(address, kind):
            return True
        self.l2.access(self._l1_config.line_address(address), kind)
        return False

    def result(self) -> TwoLevelResult:
        """Snapshot both levels' counters."""
        return TwoLevelResult(l1=self.l1.result(), l2=self.l2.result())


def simulate_two_level(
    trace: Trace, l1_config: CacheConfig, l2_config: CacheConfig
) -> TwoLevelResult:
    """Replay a whole trace through a fresh two-level hierarchy."""
    sim = TwoLevelSimulator(l1_config, l2_config)
    for i, addr in enumerate(trace):
        sim.access(addr, trace.kind(i))
    return sim.result()
