"""Set-associative cache simulator.

This package is the "traditional approach" substrate of the paper's
Figure 1(a): a trace-driven cache simulator in the style of dinero, used
to (1) calibrate the *maximum misses* figure of Tables 5/6, (2) validate
the analytical algorithm (its miss counts must match simulation exactly
for LRU caches with one-word lines), and (3) provide the
design-simulate-analyze baseline the paper's analytical method replaces.

A Mattson stack-distance *one-pass* simulator
(:mod:`repro.cache.onepass`) evaluates all associativities of a given
depth simultaneously, reproducing the single-pass techniques of the
paper's related work [16][17].
"""

from repro.cache.config import CacheConfig, ReplacementKind, WritePolicy
from repro.cache.result import SimulationResult
from repro.cache.simulator import CacheSimulator, miss_stream, simulate_trace
from repro.cache.onepass import StackDistanceProfile, stack_distance_profile
from repro.cache.multilevel import (
    TwoLevelResult,
    TwoLevelSimulator,
    simulate_two_level,
)
from repro.cache.victim import (
    VictimCacheSimulator,
    VictimResult,
    simulate_victim,
)

__all__ = [
    "CacheConfig",
    "ReplacementKind",
    "WritePolicy",
    "SimulationResult",
    "CacheSimulator",
    "miss_stream",
    "simulate_trace",
    "StackDistanceProfile",
    "stack_distance_profile",
    "TwoLevelResult",
    "TwoLevelSimulator",
    "simulate_two_level",
    "VictimCacheSimulator",
    "VictimResult",
    "simulate_victim",
]
