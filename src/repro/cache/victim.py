"""Victim buffer simulation.

A small fully-associative buffer behind a direct-mapped (or low-way)
cache catches its conflict victims — Jouppi's classic design, used by
the paper's research group in follow-up work ("Using a Victim Buffer in
an Application-Specific Memory Hierarchy").  The interesting question
for this repository: how many victim entries make a direct-mapped cache
match the set-associative instance the analytical explorer derived?

Semantics (standard swap policy):

* main hit — done;
* main miss, victim hit — the lines *swap*: the victim line moves into
  its main slot, the displaced main line becomes the victim's MRU entry;
* both miss — fetch from memory into main; the displaced main line (if
  any) enters the victim buffer, evicting its LRU entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.config import CacheConfig
from repro.trace.trace import Trace


@dataclass(frozen=True)
class VictimResult:
    """Counters of a main-cache + victim-buffer run.

    Attributes:
        accesses: total references replayed.
        main_hits: hits in the main cache.
        victim_hits: main misses caught by the victim buffer.
        cold_misses: first-ever touches of a line (unavoidable).
        non_cold_misses: remaining memory fetches — comparable to the
            analytical model's non-cold miss count.
    """

    accesses: int
    main_hits: int
    victim_hits: int
    cold_misses: int
    non_cold_misses: int

    @property
    def memory_fetches(self) -> int:
        """All fetches from memory (cold included)."""
        return self.cold_misses + self.non_cold_misses

    @property
    def hits(self) -> int:
        """Hits at either level."""
        return self.main_hits + self.victim_hits


class VictimCacheSimulator:
    """Main cache (any geometry) backed by a fully-associative victim buffer.

    Args:
        main_config: the main cache; the victim buffer uses its line size.
        victim_entries: victim buffer capacity in lines (0 disables it).
    """

    def __init__(self, main_config: CacheConfig, victim_entries: int) -> None:
        if victim_entries < 0:
            raise ValueError("victim_entries must be >= 0")
        self.config = main_config
        self.victim_entries = victim_entries
        # Main cache modeled directly (need victim interaction, so the
        # plain CacheSimulator is not reusable here): per-set LRU lists.
        self._sets: Dict[int, List[int]] = {}
        self._victim: List[int] = []  # line addresses, MRU first
        self._seen: set = set()
        self.accesses = 0
        self.main_hits = 0
        self.victim_hits = 0
        self.cold_misses = 0
        self.non_cold_misses = 0

    def _main_lookup(self, index: int, tag: int) -> bool:
        """LRU probe of the main set; True on hit (refreshes recency)."""
        ways = self._sets.get(index)
        if ways is None:
            self._sets[index] = []
            return False
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            return True
        return False

    def _main_fill(self, index: int, tag: int) -> Optional[int]:
        """Insert a line into the main set; returns the evicted tag."""
        ways = self._sets.setdefault(index, [])
        ways.insert(0, tag)
        if len(ways) > self.config.associativity:
            return ways.pop()
        return None

    def access(self, address: int) -> bool:
        """Replay one access; True when served by main or victim."""
        config = self.config
        line = config.line_address(address)
        index = config.set_index(address)
        tag = config.tag(address)
        self.accesses += 1

        if self._main_lookup(index, tag):
            self.main_hits += 1
            return True

        victim = self._victim
        if line in victim:
            # Swap: promote the line into main, demote main's victim.
            self.victim_hits += 1
            victim.remove(line)
            evicted = self._main_fill(index, tag)
            if evicted is not None:
                evicted_line = (evicted << config.index_bits) | index
                victim.insert(0, evicted_line)
            return True

        # Memory fetch.
        if line in self._seen:
            self.non_cold_misses += 1
        else:
            self.cold_misses += 1
            self._seen.add(line)
        evicted = self._main_fill(index, tag)
        if evicted is not None and self.victim_entries:
            evicted_line = (evicted << config.index_bits) | index
            victim.insert(0, evicted_line)
            if len(victim) > self.victim_entries:
                victim.pop()
        return False

    def result(self) -> VictimResult:
        """Snapshot the counters."""
        return VictimResult(
            accesses=self.accesses,
            main_hits=self.main_hits,
            victim_hits=self.victim_hits,
            cold_misses=self.cold_misses,
            non_cold_misses=self.non_cold_misses,
        )


def simulate_victim(
    trace: Trace, main_config: CacheConfig, victim_entries: int
) -> VictimResult:
    """Replay a whole trace through main cache + victim buffer."""
    sim = VictimCacheSimulator(main_config, victim_entries)
    for addr in trace:
        sim.access(addr)
    return sim.result()
