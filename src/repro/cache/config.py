"""Cache configuration.

The paper's design space is (depth ``D``, associativity ``A``) with the
line size fixed at one word and LRU write-back control (section 2.1).  The
simulator is nevertheless fully parameterized — line size, replacement
policy and write policy are all configurable — because the traditional
design-simulate-analyze baseline, the validation harness and several
ablations need them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ReplacementKind(enum.Enum):
    """Replacement policy selector."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"
    PLRU = "plru"


class WritePolicy(enum.Enum):
    """Write policy selector (both are write-allocate)."""

    WRITE_BACK = "write-back"
    WRITE_THROUGH = "write-through"


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """A single cache design point.

    Attributes:
        depth: number of cache rows (sets); must be a power of two so that
            ``log2(depth)`` address bits form the index (paper section 2.1).
        associativity: ways per set (>= 1); need not be a power of two
            except under PLRU replacement.
        line_words: words per cache line; power of two, defaults to the
            paper's fixed value of 1.
        replacement: replacement policy (paper fixes LRU).
        write_policy: write policy (paper fixes write-back).
        seed: RNG seed used only by RANDOM replacement.
    """

    depth: int
    associativity: int
    line_words: int = 1
    replacement: ReplacementKind = ReplacementKind.LRU
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    seed: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not is_power_of_two(self.depth):
            raise ValueError(f"depth must be a power of two, got {self.depth}")
        if self.associativity < 1:
            raise ValueError(
                f"associativity must be >= 1, got {self.associativity}"
            )
        if not is_power_of_two(self.line_words):
            raise ValueError(
                f"line_words must be a power of two, got {self.line_words}"
            )
        if self.replacement is ReplacementKind.PLRU and not is_power_of_two(
            self.associativity
        ):
            raise ValueError("PLRU requires a power-of-two associativity")

    @property
    def index_bits(self) -> int:
        """Number of index bits, ``log2(depth)``."""
        return self.depth.bit_length() - 1

    @property
    def offset_bits(self) -> int:
        """Number of in-line offset bits, ``log2(line_words)``."""
        return self.line_words.bit_length() - 1

    @property
    def size_words(self) -> int:
        """Total capacity in words: ``depth * associativity * line_words``.

        With one-word lines this is the paper's ``2**log2(D) * A`` size.
        """
        return self.depth * self.associativity * self.line_words

    def set_index(self, address: int) -> int:
        """Cache set index for a word address."""
        return (address >> self.offset_bits) & (self.depth - 1)

    def tag(self, address: int) -> int:
        """Tag portion of a word address."""
        return address >> (self.offset_bits + self.index_bits)

    def line_address(self, address: int) -> int:
        """Address of the line containing a word address."""
        return address >> self.offset_bits

    def describe(self) -> str:
        """Human-readable one-liner, e.g. ``D=64 A=2 line=1 lru/write-back``."""
        return (
            f"D={self.depth} A={self.associativity} line={self.line_words} "
            f"{self.replacement.value}/{self.write_policy.value}"
        )
