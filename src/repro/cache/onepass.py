"""Mattson stack-distance one-pass simulation.

The paper's related work ([16][17], Mattson et al. 1970) evaluates many
cache configurations in a single pass using the LRU *inclusion* property:
an access whose per-set LRU stack distance is ``d`` hits in every cache of
that depth with associativity ``> d`` and misses in every one with
associativity ``<= d``.  One pass therefore yields the miss count of
*every* associativity at a fixed depth.

This module provides the honest re-implementation of that technique — it
is both a validation oracle for the analytical algorithm (the two must
agree exactly) and the subject of the one-pass ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cache.config import is_power_of_two
from repro.trace.trace import Trace


@dataclass(frozen=True)
class StackDistanceProfile:
    """Per-set LRU stack-distance histogram for one cache depth.

    Attributes:
        depth: cache depth (number of sets).
        histogram: ``histogram[d]`` = number of accesses with stack
            distance ``d`` (0 = re-touch of the most recent line in the
            set).  Cold accesses (infinite distance) are *not* included.
        cold: number of cold accesses.
        accesses: total accesses profiled.
    """

    depth: int
    histogram: Dict[int, int]
    cold: int
    accesses: int

    def non_cold_misses(self, associativity: int) -> int:
        """Non-cold misses of a ``depth x associativity`` LRU cache."""
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        return sum(
            count for dist, count in self.histogram.items() if dist >= associativity
        )

    def hits(self, associativity: int) -> int:
        """Hits of a ``depth x associativity`` LRU cache."""
        return self.accesses - self.cold - self.non_cold_misses(associativity)

    @property
    def max_distance(self) -> int:
        """Largest observed stack distance (-1 when every access is cold)."""
        return max(self.histogram, default=-1)

    @property
    def zero_miss_associativity(self) -> int:
        """Smallest associativity with zero non-cold misses (the paper's
        ``A_zero`` for this depth)."""
        return self.max_distance + 1 if self.histogram else 1

    def min_associativity(self, k: int) -> int:
        """Smallest associativity whose non-cold misses are ``<= k``.

        This is the simulation-side answer to the paper's postlude
        question and the oracle the analytical algorithm is checked
        against.
        """
        if k < 0:
            raise ValueError("miss budget k must be non-negative")
        remaining = sum(self.histogram.values())
        if remaining <= k:
            return 1
        assoc = 1
        # misses(assoc) = remaining - sum(histogram[d] for d < assoc)
        while True:
            remaining -= self.histogram.get(assoc - 1, 0)
            if remaining <= k:
                return assoc
            assoc += 1


def stack_distance_profile(trace: Trace, depth: int) -> StackDistanceProfile:
    """Profile per-set LRU stack distances in one pass over the trace.

    Args:
        trace: word-addressed trace (one-word lines, as the paper fixes).
        depth: cache depth; must be a power of two.
    """
    if not is_power_of_two(depth):
        raise ValueError(f"depth must be a power of two, got {depth}")
    mask = depth - 1
    stacks: Dict[int, List[int]] = {}
    histogram: Dict[int, int] = {}
    cold = 0
    for addr in trace:
        index = addr & mask
        stack = stacks.get(index)
        if stack is None:
            stack = []
            stacks[index] = stack
        try:
            dist = stack.index(addr)
        except ValueError:
            cold += 1
            stack.insert(0, addr)
            continue
        histogram[dist] = histogram.get(dist, 0) + 1
        del stack[dist]
        stack.insert(0, addr)
    return StackDistanceProfile(
        depth=depth, histogram=histogram, cold=cold, accesses=len(trace)
    )


def profile_all_depths(trace: Trace, max_depth: int) -> Dict[int, StackDistanceProfile]:
    """Stack-distance profiles for every power-of-two depth up to ``max_depth``."""
    if not is_power_of_two(max_depth):
        raise ValueError(f"max_depth must be a power of two, got {max_depth}")
    profiles: Dict[int, StackDistanceProfile] = {}
    depth = 1
    while depth <= max_depth:
        profiles[depth] = stack_distance_profile(trace, depth)
        depth *= 2
    return profiles
