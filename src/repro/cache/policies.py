"""Replacement policies.

Each policy manages the contents of one cache *set*.  The simulator calls
:meth:`SetPolicy.lookup` for every access; the policy returns whether the
tag hit and performs any fill/eviction internally, reporting the evicted
tag (if any) so the simulator can account for write-backs.

LRU is the policy the paper fixes; FIFO, seeded-random and tree-PLRU exist
for the baseline/ablation experiments and for users exploring beyond the
paper's space.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.cache.config import CacheConfig, ReplacementKind


class SetPolicy:
    """Replacement state for a single cache set."""

    __slots__ = ("associativity",)

    def __init__(self, associativity: int) -> None:
        self.associativity = associativity

    def lookup(self, tag: int) -> Tuple[bool, Optional[int]]:
        """Access ``tag``; fill on miss.

        Returns:
            ``(hit, evicted_tag)`` — ``evicted_tag`` is ``None`` unless the
            fill displaced a resident line.
        """
        raise NotImplementedError

    def resident_tags(self) -> List[int]:
        """Tags currently resident in this set (order unspecified)."""
        raise NotImplementedError

    def contains(self, tag: int) -> bool:
        """True when ``tag`` is resident (no state change)."""
        return tag in self.resident_tags()


class LRUSet(SetPolicy):
    """Least-recently-used: evict the line untouched for longest.

    The stack is kept most-recent-first in a plain list; embedded-scale
    associativities are small, so the linear ``remove`` is cheap.
    """

    __slots__ = ("_stack",)

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._stack: List[int] = []

    def lookup(self, tag: int) -> Tuple[bool, Optional[int]]:
        stack = self._stack
        if tag in stack:
            stack.remove(tag)
            stack.insert(0, tag)
            return True, None
        stack.insert(0, tag)
        evicted = stack.pop() if len(stack) > self.associativity else None
        return False, evicted

    def resident_tags(self) -> List[int]:
        return list(self._stack)


class FIFOSet(SetPolicy):
    """First-in-first-out: evict the oldest fill; hits do not reorder."""

    __slots__ = ("_queue",)

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._queue: List[int] = []

    def lookup(self, tag: int) -> Tuple[bool, Optional[int]]:
        queue = self._queue
        if tag in queue:
            return True, None
        queue.insert(0, tag)
        evicted = queue.pop() if len(queue) > self.associativity else None
        return False, evicted

    def resident_tags(self) -> List[int]:
        return list(self._queue)


class RandomSet(SetPolicy):
    """Random replacement with a deterministic per-set RNG."""

    __slots__ = ("_ways", "_rng")

    def __init__(self, associativity: int, rng: random.Random) -> None:
        super().__init__(associativity)
        self._ways: List[int] = []
        self._rng = rng

    def lookup(self, tag: int) -> Tuple[bool, Optional[int]]:
        ways = self._ways
        if tag in ways:
            return True, None
        if len(ways) < self.associativity:
            ways.append(tag)
            return False, None
        victim = self._rng.randrange(self.associativity)
        evicted = ways[victim]
        ways[victim] = tag
        return False, evicted

    def resident_tags(self) -> List[int]:
        return list(self._ways)


class PLRUSet(SetPolicy):
    """Tree-based pseudo-LRU for power-of-two associativities.

    A binary tree of ``A - 1`` direction bits selects the victim; every
    access flips the bits on its path to point away from the accessed way.

    The ``A - 1`` internal nodes are stored heap-ordered: node ``i`` has
    children ``2i+1`` and ``2i+2``; a child index ``>= A - 1`` denotes the
    leaf (way) ``child - (A - 1)``.  A bit of 0 sends the victim search
    left, 1 sends it right.
    """

    __slots__ = ("_ways", "_bits", "_where")

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        self._ways: List[Optional[int]] = [None] * associativity
        self._bits: List[int] = [0] * max(associativity - 1, 0)
        self._where: Dict[int, int] = {}

    def _touch(self, way: int) -> None:
        """Flip the bits on ``way``'s root path to point away from it."""
        internal = len(self._bits)
        child = way + internal
        while child > 0:
            parent = (child - 1) // 2
            # If we reached the leaf through the left child, send future
            # victim searches right, and vice versa.
            self._bits[parent] = 0 if child == 2 * parent + 2 else 1
            child = parent

    def _victim(self) -> int:
        """Follow the tree bits down to the pseudo-LRU way."""
        internal = len(self._bits)
        node = 0
        while node < internal:
            node = 2 * node + 1 + self._bits[node]
        return node - internal

    def lookup(self, tag: int) -> Tuple[bool, Optional[int]]:
        way = self._where.get(tag)
        if way is not None:
            self._touch(way)
            return True, None
        # Fill an empty way first.
        for idx, resident in enumerate(self._ways):
            if resident is None:
                self._ways[idx] = tag
                self._where[tag] = idx
                self._touch(idx)
                return False, None
        victim = self._victim()
        evicted = self._ways[victim]
        assert evicted is not None
        del self._where[evicted]
        self._ways[victim] = tag
        self._where[tag] = victim
        self._touch(victim)
        return False, evicted

    def resident_tags(self) -> List[int]:
        return [t for t in self._ways if t is not None]


def make_set_policy(config: CacheConfig, rng: random.Random) -> SetPolicy:
    """Instantiate the per-set replacement state for a config."""
    kind = config.replacement
    if kind is ReplacementKind.LRU:
        return LRUSet(config.associativity)
    if kind is ReplacementKind.FIFO:
        return FIFOSet(config.associativity)
    if kind is ReplacementKind.RANDOM:
        return RandomSet(config.associativity, rng)
    if kind is ReplacementKind.PLRU:
        return PLRUSet(config.associativity)
    raise ValueError(f"unhandled replacement kind: {kind}")
