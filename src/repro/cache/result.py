"""Simulation results and miss accounting.

The paper's miss budget ``K`` counts misses *beyond* the cold (compulsory)
misses, "as cold misses cannot be avoided" (section 2.1).  The simulator
therefore classifies every miss as cold (first access to that line ever)
or non-cold, and all comparisons with the analytical algorithm use the
non-cold count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one trace through one cache configuration.

    Attributes:
        config: the simulated cache design point.
        accesses: total references replayed.
        hits: accesses that hit in the cache.
        cold_misses: first-ever accesses to each line (compulsory misses).
        non_cold_misses: remaining misses — the quantity the paper's K
            constrains.
        writebacks: dirty lines written back to memory (write-back policy).
        write_throughs: stores forwarded to memory (write-through policy).
    """

    config: CacheConfig
    accesses: int
    hits: int
    cold_misses: int
    non_cold_misses: int
    writebacks: int = 0
    write_throughs: int = 0

    def __post_init__(self) -> None:
        if self.hits + self.cold_misses + self.non_cold_misses != self.accesses:
            raise ValueError(
                "inconsistent result: hits + misses must equal accesses "
                f"({self.hits} + {self.cold_misses} + {self.non_cold_misses} "
                f"!= {self.accesses})"
            )

    @property
    def misses(self) -> int:
        """All misses, cold included."""
        return self.cold_misses + self.non_cold_misses

    @property
    def miss_rate(self) -> float:
        """Overall miss ratio (0.0 for an empty trace)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def non_cold_miss_rate(self) -> float:
        """Non-cold miss ratio (0.0 for an empty trace)."""
        if self.accesses == 0:
            return 0.0
        return self.non_cold_misses / self.accesses

    def meets_budget(self, k: int) -> bool:
        """True when non-cold misses are within the paper's budget K."""
        return self.non_cold_misses <= k

    def __repr__(self) -> str:
        return (
            f"<SimulationResult {self.config.describe()} "
            f"accesses={self.accesses} hits={self.hits} "
            f"cold={self.cold_misses} non_cold={self.non_cold_misses}>"
        )
