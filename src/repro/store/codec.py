"""Versioned binary serialization for the pipeline's artifacts.

Each pipeline stage has one codec — an object with a ``stage`` name, a
``version`` (the schema coordinate of :class:`repro.store.ArtifactKey`),
``encode(value) -> bytes`` and ``decode(payload, context=None) ->
value``.  The big set-valued structures (zero/one sets, MRCT conflict
sets) are arbitrary-precision ints used as bit vectors; they serialize
as length-prefixed little-endian byte strings, which round-trips exactly
and costs no more than the ints' own storage.

On disk every payload travels inside a self-checking container
(:func:`pack_entry` / :func:`unpack_entry`): magic, container version,
codec version, SHA-256 payload checksum, payload length, payload.  Any
mismatch — bad magic, truncation, a flipped bit — raises
:class:`CorruptArtifact`, which the store treats as a cache miss and
quarantines (a corrupt entry must never poison a computation).

Bumping a codec's ``version`` silently invalidates that stage's old
entries: the version participates in the artifact key, so old entries
simply stop being addressed and age out via LRU eviction.
"""

from __future__ import annotations

import hashlib
import struct
import sys
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mrct import MRCT
from repro.core.postlude import LevelHistogram
from repro.core.zerosets import ZeroOneSets
from repro.trace.strip import StrippedTrace
from repro.trace.trace import Trace

#: Container framing magic; identifies a store entry file.
MAGIC = b"RART"

#: Version of the container framing itself (not of any payload).
CONTAINER_VERSION = 1

#: Container header: magic, container version, codec version,
#: SHA-256 payload digest, payload length.
_HEADER = struct.Struct("<4sHH32sQ")


class CorruptArtifact(ValueError):
    """A store entry failed framing, checksum or decode validation."""


def pack_entry(codec_version: int, payload: bytes) -> bytes:
    """Frame a payload for disk: header + checksum + payload."""
    digest = hashlib.sha256(payload).digest()
    return (
        _HEADER.pack(
            MAGIC, CONTAINER_VERSION, codec_version, digest, len(payload)
        )
        + payload
    )


def unpack_entry(blob, codec_version: int):
    """Validate framing and checksum; return the payload.

    ``blob`` may be ``bytes`` or a ``memoryview`` (e.g. over an ``mmap``
    of the entry file); the returned payload is the same kind — a
    memoryview in, a zero-copy memoryview slice out, which zero-copy
    codecs decode into array views without materializing the payload.

    Raises:
        CorruptArtifact: on bad magic, version mismatch, truncation or
            checksum failure.
    """
    if len(blob) < _HEADER.size:
        raise CorruptArtifact("entry shorter than its header")
    magic, container, version, digest, length = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CorruptArtifact(f"bad magic {magic!r}")
    if container != CONTAINER_VERSION:
        raise CorruptArtifact(f"unknown container version {container}")
    if version != codec_version:
        raise CorruptArtifact(
            f"codec version {version} != expected {codec_version}"
        )
    payload = blob[_HEADER.size:]
    if len(payload) != length:
        raise CorruptArtifact(
            f"payload truncated: {len(payload)} bytes, header says {length}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise CorruptArtifact("payload checksum mismatch")
    return payload


class _Reader:
    """Sequential struct reader over a payload, bounds-checked."""

    __slots__ = ("_view", "_pos")

    def __init__(self, payload: bytes) -> None:
        self._view = memoryview(payload)
        self._pos = 0

    def unpack(self, fmt: str) -> Tuple:
        size = struct.calcsize(fmt)
        if self._pos + size > len(self._view):
            raise CorruptArtifact("payload truncated mid-field")
        values = struct.unpack_from(fmt, self._view, self._pos)
        self._pos += size
        return values

    def read(self, size: int) -> bytes:
        if self._pos + size > len(self._view):
            raise CorruptArtifact("payload truncated mid-block")
        block = self._view[self._pos:self._pos + size].tobytes()
        self._pos += size
        return block

    def view(self, size: int) -> memoryview:
        """A zero-copy window over the next ``size`` payload bytes.

        The view borrows the payload's buffer: whatever is built on it
        (e.g. ``np.frombuffer``) keeps the payload — and, for a mapped
        entry, the mapping — alive through ordinary refcounting.
        """
        if self._pos + size > len(self._view):
            raise CorruptArtifact("payload truncated mid-block")
        block = self._view[self._pos:self._pos + size]
        self._pos += size
        return block

    def expect_end(self) -> None:
        if self._pos != len(self._view):
            raise CorruptArtifact(
                f"{len(self._view) - self._pos} trailing bytes in payload"
            )


def _array_bytes(values: array) -> bytes:
    """An array's buffer as little-endian bytes (copy on BE hosts)."""
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        values = array(values.typecode, values)
        values.byteswap()
    return values.tobytes()


def _array_from(typecode: str, data: bytes) -> array:
    values = array(typecode)
    values.frombytes(data)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        values.byteswap()
    return values


def _encode_bigints(values: Sequence[int]) -> bytes:
    """Length-prefixed little-endian encoding of bit-vector ints."""
    parts: List[bytes] = [struct.pack("<I", len(values))]
    for value in values:
        raw = value.to_bytes((value.bit_length() + 7) // 8, "little")
        parts.append(struct.pack("<I", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def _decode_bigints(reader: _Reader) -> List[int]:
    (count,) = reader.unpack("<I")
    values: List[int] = []
    for _ in range(count):
        (size,) = reader.unpack("<I")
        values.append(int.from_bytes(reader.read(size), "little"))
    return values


class StrippedTraceCodec:
    """Stripped trace: unique addresses + identifier sequence.

    Decoding needs the raw :class:`Trace` as ``context`` — a
    :class:`StrippedTrace` keeps a reference to its source trace, and
    the cache is only ever consulted by a caller that holds it (the
    trace digest in the key came from somewhere).
    """

    stage = "stripped"
    version = 1

    def encode(self, stripped: StrippedTrace) -> bytes:
        addresses = array("q", stripped.unique_addresses)
        ids = array("I", stripped.id_sequence)
        return b"".join(
            (
                struct.pack(
                    "<IIQ", stripped.address_bits, stripped.n_unique, stripped.n
                ),
                _array_bytes(addresses),
                _array_bytes(ids),
            )
        )

    def decode(
        self, payload: bytes, context: Optional[Trace] = None
    ) -> StrippedTrace:
        if context is None:
            raise ValueError("StrippedTraceCodec.decode needs the raw trace")
        reader = _Reader(payload)
        address_bits, n_unique, n = reader.unpack("<IIQ")
        unique = _array_from("q", reader.read(8 * n_unique)).tolist()
        ids = _array_from("I", reader.read(4 * n))
        reader.expect_end()
        if n != len(context):
            raise CorruptArtifact(
                f"stripped entry covers {n} references, trace has {len(context)}"
            )
        return StrippedTrace(
            trace=context,
            unique_addresses=unique,
            id_of={addr: ident for ident, addr in enumerate(unique)},
            id_sequence=ids,
            address_bits=address_bits,
        )


class ZeroOneSetsCodec:
    """Per-bit zero/one sets: two tuples of bit-vector bigints."""

    stage = "zerosets"
    version = 1

    def encode(self, zerosets: ZeroOneSets) -> bytes:
        return b"".join(
            (
                struct.pack("<I", zerosets.n_unique),
                _encode_bigints(zerosets.zero),
                _encode_bigints(zerosets.one),
            )
        )

    def decode(
        self, payload: bytes, context: Optional[Trace] = None
    ) -> ZeroOneSets:
        reader = _Reader(payload)
        (n_unique,) = reader.unpack("<I")
        zero = tuple(_decode_bigints(reader))
        one = tuple(_decode_bigints(reader))
        reader.expect_end()
        if len(zero) != len(one):
            raise CorruptArtifact("zero/one set arrays differ in length")
        return ZeroOneSets(zero=zero, one=one, n_unique=n_unique)


class MRCTCodec:
    """Conflict table: per-reference lists of bit-vector bigints."""

    stage = "mrct"
    version = 1

    def encode(self, mrct: MRCT) -> bytes:
        parts: List[bytes] = [struct.pack("<I", mrct.n_unique)]
        parts.extend(_encode_bigints(sets) for sets in mrct.sets)
        return b"".join(parts)

    def decode(self, payload: bytes, context: Optional[Trace] = None) -> MRCT:
        reader = _Reader(payload)
        (n_unique,) = reader.unpack("<I")
        sets = [_decode_bigints(reader) for _ in range(n_unique)]
        reader.expect_end()
        return MRCT(sets=sets, n_unique=n_unique)


class HistogramsCodec:
    """Per-level conflict histograms: ``{level: {distance: count}}``.

    Engine-independent by design: every registered engine produces
    bit-identical histograms (differentially tested), so an entry
    written by one engine warm-starts every other.
    """

    stage = "histograms"
    version = 1

    def encode(self, histograms: Dict[int, LevelHistogram]) -> bytes:
        parts: List[bytes] = [struct.pack("<I", len(histograms))]
        for level in sorted(histograms):
            counts = histograms[level].counts
            parts.append(struct.pack("<II", level, len(counts)))
            for distance in sorted(counts):
                parts.append(struct.pack("<IQ", distance, counts[distance]))
        return b"".join(parts)

    def decode(
        self, payload: bytes, context: Optional[Trace] = None
    ) -> Dict[int, LevelHistogram]:
        reader = _Reader(payload)
        (n_levels,) = reader.unpack("<I")
        histograms: Dict[int, LevelHistogram] = {}
        for _ in range(n_levels):
            level, n_entries = reader.unpack("<II")
            counts: Dict[int, int] = {}
            for _ in range(n_entries):
                distance, count = reader.unpack("<IQ")
                counts[distance] = count
            histograms[level] = LevelHistogram(level=level, counts=counts)
        reader.expect_end()
        return histograms


def _le_array_view(reader: _Reader, dtype: str, count: int):
    """The next ``count`` little-endian items as a read-only array view.

    Zero-copy on little-endian hosts: a ``np.frombuffer`` view over the
    payload (which may itself be a view over a mapped entry file).  Only
    big-endian hosts pay a byteswap copy.  The view is marked read-only
    either way — decoded artifacts are shared through the store's memory
    tier, so nothing downstream may scribble on them.
    """
    import numpy as np

    itemsize = np.dtype(dtype).itemsize
    values = np.frombuffer(reader.view(itemsize * count), dtype=dtype)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        values = values.astype(values.dtype.newbyteorder("="))
    values.flags.writeable = False
    return values


class PackedMRCTCodec:
    """Packed conflict bit-matrix (:class:`repro.core.prelude_fast.PackedMRCT`).

    Fixed-width little-endian arrays — identifiers, weights, then the
    uint64 matrix — so encode is a single buffer copy and decode is
    *zero*-copy: the arrays are read-only ``np.frombuffer`` views over
    the payload (only byte-swapping big-endian hosts copy).  With the
    store's mmap read path the views point straight into the mapped
    entry file, so a warm hit never materializes a second copy of the
    matrix.  Requires NumPy to decode; the store only consults this
    stage from the fused path, which is NumPy-gated.
    """

    stage = "packed-mrct"
    version = 1

    #: Decoded values are views over the payload — the store's mmap read
    #: path keys off this to map the entry file instead of reading it.
    zero_copy = True

    def encode(self, packed) -> bytes:
        import numpy as np

        rows, words = packed.matrix.shape
        return b"".join(
            (
                struct.pack("<IIQ", packed.n_unique, words, rows),
                np.ascontiguousarray(packed.idents, dtype="<i8").tobytes(),
                np.ascontiguousarray(packed.weights, dtype="<i8").tobytes(),
                np.ascontiguousarray(packed.matrix, dtype="<u8").tobytes(),
            )
        )

    def decode(self, payload, context: Optional[Trace] = None):
        from repro.core.prelude_fast import PackedMRCT

        reader = _Reader(payload)
        n_unique, words, rows = reader.unpack("<IIQ")
        if words != (n_unique + 63) // 64:
            raise CorruptArtifact(
                f"packed matrix is {words} words wide, "
                f"{n_unique} unique references need {(n_unique + 63) // 64}"
            )
        idents = _le_array_view(reader, "<i8", rows)
        weights = _le_array_view(reader, "<i8", rows)
        matrix = _le_array_view(reader, "<u8", rows * words).reshape(rows, words)
        reader.expect_end()
        if rows and (
            (idents < 0).any() or (idents >= max(n_unique, 1)).any()
        ):
            raise CorruptArtifact("packed row identifier out of range")
        if rows and (weights <= 0).any():
            raise CorruptArtifact("packed row weight must be positive")
        return PackedMRCT(
            matrix=matrix, idents=idents, weights=weights, n_unique=n_unique
        )


class StreamCheckpointCodec:
    """A :class:`repro.core.streaming.StreamingState` snapshot.

    Layout: header (address width, bound flag + bound, total references,
    digest accumulators), the LRU stack as int64 little-endian addresses
    most recent first (the stack holds exactly the unique references —
    nothing is ever evicted), uint64 occurrence counts aligned to the
    stack, then the *raw* per-level cardinality counts in the
    :class:`HistogramsCodec` layout (raw: before the singleton-row
    post-filter, which is re-derived from the restored state).  Row
    membership is rebuilt from the stack on decode.
    """

    stage = "stream-checkpoint"
    version = 1

    def encode(self, snapshot: Dict[str, object]) -> bytes:
        stack = snapshot["stack"]
        occurrences = snapshot["occurrences"]
        max_level = snapshot["max_level"]
        bounded = 0 if max_level is None else 1
        counts: List[Dict[int, int]] = snapshot["counts"]  # type: ignore[assignment]
        parts: List[bytes] = [
            struct.pack(
                "<IBIQQQQ",
                snapshot["address_bits"],
                bounded,
                0 if max_level is None else int(max_level),
                snapshot["total_refs"],
                snapshot["h1"],
                snapshot["h2"],
                len(stack),
            ),
            _array_bytes(array("q", stack)),
            _array_bytes(array("Q", occurrences)),
            struct.pack("<I", len(counts)),
        ]
        for level, level_counts in enumerate(counts):
            parts.append(struct.pack("<II", level, len(level_counts)))
            for distance in sorted(level_counts):
                parts.append(struct.pack("<IQ", distance, level_counts[distance]))
        return b"".join(parts)

    def decode(
        self, payload: bytes, context: Optional[Trace] = None
    ) -> Dict[str, object]:
        reader = _Reader(payload)
        (
            address_bits,
            bounded,
            bound,
            total_refs,
            h1,
            h2,
            n_unique,
        ) = reader.unpack("<IBIQQQQ")
        stack = _array_from("q", reader.read(8 * n_unique)).tolist()
        occurrences = _array_from("Q", reader.read(8 * n_unique)).tolist()
        (n_levels,) = reader.unpack("<I")
        counts: List[Dict[int, int]] = []
        for expected in range(n_levels):
            level, n_entries = reader.unpack("<II")
            if level != expected:
                raise CorruptArtifact(
                    f"checkpoint level {level} out of order (expected {expected})"
                )
            level_counts: Dict[int, int] = {}
            for _ in range(n_entries):
                distance, count = reader.unpack("<IQ")
                level_counts[distance] = count
            counts.append(level_counts)
        reader.expect_end()
        if address_bits < 1:
            raise CorruptArtifact("checkpoint address_bits must be >= 1")
        max_level = int(bound) if bounded else None
        limit = address_bits if max_level is None else min(max_level, address_bits)
        if n_levels != limit + 1:
            raise CorruptArtifact(
                f"checkpoint carries {n_levels} levels, expected {limit + 1}"
            )
        if len(set(stack)) != len(stack):
            raise CorruptArtifact("checkpoint stack repeats an address")
        if any(a < 0 or a >= (1 << address_bits) for a in stack):
            raise CorruptArtifact("checkpoint stack address out of range")
        if any(c < 1 for c in occurrences):
            raise CorruptArtifact("checkpoint occurrence count must be >= 1")
        if sum(occurrences) > total_refs:
            raise CorruptArtifact(
                "checkpoint occurrence counts exceed total references"
            )
        return {
            "address_bits": address_bits,
            "max_level": max_level,
            "total_refs": total_refs,
            "h1": h1,
            "h2": h2,
            "stack": stack,
            "occurrences": occurrences,
            "counts": counts,
        }


class PolicyMissesCodec:
    """Per-depth miss table of one non-LRU replacement policy.

    Keyed with the policy name and depth as artifact-key params — a
    stage of its own, disjoint from the (LRU-only) ``histograms``
    stage, so policy entries can never be addressed by an LRU
    warm-start or vice versa.
    """

    stage = "policy-misses"
    version = 1

    def encode(self, table) -> bytes:
        counts = table.counts
        parts: List[bytes] = [
            struct.pack(
                "<III", table.depth, table.zero_associativity, len(counts)
            )
        ]
        for assoc in sorted(counts):
            parts.append(struct.pack("<IQ", assoc, counts[assoc]))
        return b"".join(parts)

    def decode(self, payload: bytes, context: Optional[Trace] = None):
        from repro.core.fifo import PolicyMissTable

        reader = _Reader(payload)
        depth, zero, n_entries = reader.unpack("<III")
        if depth < 1 or (depth & (depth - 1)) != 0:
            raise CorruptArtifact(f"depth {depth} is not a power of two")
        if zero < 1:
            raise CorruptArtifact(f"zero associativity {zero} < 1")
        counts: Dict[int, int] = {}
        previous = 1
        for _ in range(n_entries):
            assoc, misses = reader.unpack("<IQ")
            if not previous < assoc < zero:
                raise CorruptArtifact(
                    f"associativity {assoc} out of order or outside "
                    f"(1, {zero})"
                )
            previous = assoc
            counts[assoc] = misses
        reader.expect_end()
        return PolicyMissTable(
            depth=depth, zero_associativity=zero, counts=counts
        )


#: Shared codec instances, one per pipeline stage.
STRIPPED_CODEC = StrippedTraceCodec()
ZEROSETS_CODEC = ZeroOneSetsCodec()
MRCT_CODEC = MRCTCodec()
HISTOGRAMS_CODEC = HistogramsCodec()
PACKED_MRCT_CODEC = PackedMRCTCodec()
STREAM_CHECKPOINT_CODEC = StreamCheckpointCodec()
POLICY_MISSES_CODEC = PolicyMissesCodec()

#: All stage codecs by stage name (CLI stats iterate this).
STAGE_CODECS = {
    codec.stage: codec
    for codec in (
        STRIPPED_CODEC,
        ZEROSETS_CODEC,
        MRCT_CODEC,
        PACKED_MRCT_CODEC,
        HISTOGRAMS_CODEC,
        STREAM_CHECKPOINT_CODEC,
        POLICY_MISSES_CODEC,
    )
}
