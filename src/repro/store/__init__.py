"""Persistent, content-addressed artifact cache for the pipeline.

See :mod:`repro.store.fs` for the store itself, :mod:`repro.store.keys`
for the content-addressing scheme and :mod:`repro.store.codec` for the
versioned binary serialization.  Typical use::

    from repro import ArtifactStore, AnalyticalCacheExplorer

    store = ArtifactStore("~/.cache/repro/store")
    explorer = AnalyticalCacheExplorer(trace, store=store)
    explorer.explore(budget)          # cold: computes and persists
    # ... later, any process, any engine:
    explorer = AnalyticalCacheExplorer(trace, store=store)
    explorer.explore(budget)          # warm: loads stripped/zerosets/
                                      # mrct/histograms from the store
"""

from repro.store.codec import (
    CONTAINER_VERSION,
    CorruptArtifact,
    HISTOGRAMS_CODEC,
    HistogramsCodec,
    MAGIC,
    MRCT_CODEC,
    MRCTCodec,
    PACKED_MRCT_CODEC,
    POLICY_MISSES_CODEC,
    PackedMRCTCodec,
    PolicyMissesCodec,
    STAGE_CODECS,
    STREAM_CHECKPOINT_CODEC,
    STRIPPED_CODEC,
    StreamCheckpointCodec,
    StrippedTraceCodec,
    ZEROSETS_CODEC,
    ZeroOneSetsCodec,
    pack_entry,
    unpack_entry,
)
from repro.store.fs import (
    ArtifactStore,
    CACHE_DIR_ENV,
    DEFAULT_MAX_BYTES,
    DEFAULT_MEMORY_ENTRIES,
    QUARANTINE_DIR,
    StoreEntry,
    StoreStats,
    default_cache_dir,
)
from repro.store.keys import ArtifactKey, TRACE_DIGEST_SCHEMA, trace_digest

__all__ = [
    "ArtifactKey",
    "ArtifactStore",
    "CACHE_DIR_ENV",
    "CONTAINER_VERSION",
    "CorruptArtifact",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MEMORY_ENTRIES",
    "HISTOGRAMS_CODEC",
    "HistogramsCodec",
    "MAGIC",
    "MRCT_CODEC",
    "MRCTCodec",
    "PACKED_MRCT_CODEC",
    "POLICY_MISSES_CODEC",
    "PackedMRCTCodec",
    "PolicyMissesCodec",
    "QUARANTINE_DIR",
    "STAGE_CODECS",
    "STREAM_CHECKPOINT_CODEC",
    "STRIPPED_CODEC",
    "StoreEntry",
    "StoreStats",
    "StreamCheckpointCodec",
    "StrippedTraceCodec",
    "TRACE_DIGEST_SCHEMA",
    "ZEROSETS_CODEC",
    "ZeroOneSetsCodec",
    "default_cache_dir",
    "pack_entry",
    "trace_digest",
    "unpack_entry",
]
