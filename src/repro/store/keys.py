"""Content-addressed keys for pipeline artifacts.

Every cacheable artifact is identified by four coordinates: the digest
of the trace it was derived from, the pipeline *stage* that produced it
(``stripped``, ``zerosets``, ``mrct``, ``histograms``), the stage's
parameters (e.g. the histogram ``max_level``), and the stage codec's
schema version.  Two runs that agree on all four are guaranteed to
produce bit-identical artifacts — the engines are differentially tested
for exactly that — so the cache never needs heuristics about freshness:
a key either exists with the right content or it does not.

The trace digest is *content*-addressed: it hashes the address sequence
and the declared address width, not the trace's name or provenance.
Re-emitting the same workload trace under a different file name warm-
starts from the same artifacts.  Access kinds are deliberately excluded:
every prelude/postlude product depends only on the address sequence.

Digests use SHA-256, so they are stable across processes, interpreter
restarts and machines (Python's builtin ``hash`` is salted per process
and would be useless here).
"""

from __future__ import annotations

import hashlib
import struct
import sys
from array import array
from dataclasses import dataclass
from typing import Tuple

from repro.trace.trace import Trace

#: Version tag mixed into every trace digest; bump if the digest's
#: byte-level definition ever changes.
TRACE_DIGEST_SCHEMA = b"repro-trace-digest/1"


def trace_digest(trace: Trace) -> str:
    """SHA-256 content digest of a trace (addresses + address width).

    Stable across runs and hosts: addresses are hashed as packed
    little-endian 64-bit words regardless of the platform's byte order.
    """
    hasher = hashlib.sha256()
    hasher.update(TRACE_DIGEST_SCHEMA)
    hasher.update(struct.pack("<qq", trace.address_bits, len(trace)))
    addresses = array("q", trace.addresses)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        addresses.byteswap()
    hasher.update(addresses.tobytes())
    return hasher.hexdigest()


@dataclass(frozen=True)
class ArtifactKey:
    """One artifact's identity: ``(trace digest, stage, params, schema)``.

    Attributes:
        trace_digest: :func:`trace_digest` of the source trace.
        stage: pipeline stage name (a codec's ``stage`` attribute).
        schema: the stage codec's serialization version; bumping a codec
            version invalidates that stage's old entries without
            touching any other stage.
        params: canonicalized stage parameters as sorted
            ``(name, repr(value))`` pairs — build via :meth:`for_stage`.
    """

    trace_digest: str
    stage: str
    schema: int
    params: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def for_stage(
        cls, trace_digest: str, stage: str, schema: int, **params: object
    ) -> "ArtifactKey":
        """Build a key, canonicalizing keyword parameters."""
        canonical = tuple(
            sorted((name, repr(value)) for name, value in params.items())
        )
        return cls(
            trace_digest=trace_digest,
            stage=stage,
            schema=schema,
            params=canonical,
        )

    @property
    def digest(self) -> str:
        """SHA-256 hex digest naming this artifact on disk."""
        hasher = hashlib.sha256()
        hasher.update(
            f"{self.trace_digest}\x00{self.stage}\x00{self.schema}\x00".encode()
        )
        for name, value in self.params:
            hasher.update(f"{name}={value}\x00".encode())
        return hasher.hexdigest()

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.params) or "-"
        return (
            f"{self.stage}/v{self.schema}"
            f"[{self.trace_digest[:12]}; {params}]"
        )
