"""The artifact store: a persistent, content-addressed pipeline cache.

:class:`ArtifactStore` memoizes pipeline-stage artifacts keyed by
:class:`repro.store.ArtifactKey` across two tiers:

* a **filesystem tier** under one root directory — entries are written
  atomically (temp file + ``os.replace``), so concurrent writers of the
  same key both succeed and readers never observe a half-written file;
  every entry is framed with a SHA-256 checksum, and anything that fails
  validation is treated as a *miss* and moved to ``quarantine/`` rather
  than deleted (so a corruption can be diagnosed) or re-trusted;
* an **in-process memory tier** — a small LRU map of decoded artifacts,
  so repeated stage lookups inside one process skip the disk and the
  decode entirely.

The filesystem tier is size-capped: when a put pushes the store past
``max_bytes``, least-recently-*used* entries are evicted (reads bump an
entry's mtime, making mtime order LRU order).  Eviction, like every
other failure mode here, degrades to a cache miss — the pipeline
recomputes and rewrites.

Telemetry: every ``get``/``put`` updates the store's :class:`StoreStats`
and, when a :class:`repro.obs.Recorder` is passed, records
``store_hits`` / ``store_misses`` / ``store_bytes_read`` /
``store_bytes_written`` counters on the innermost open phase, so run
manifests show cache effectiveness alongside the timings.
"""

from __future__ import annotations

import mmap as _mmap
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.obs.recorder import NULL_RECORDER
from repro.store.codec import CorruptArtifact, pack_entry, unpack_entry
from repro.store.keys import ArtifactKey

#: Default filesystem-tier size cap (bytes).
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

#: Default memory-tier capacity (decoded artifacts, counted not sized).
DEFAULT_MEMORY_ENTRIES = 64

#: File suffix of a store entry.
ENTRY_SUFFIX = ".art"

#: Subdirectory corrupt entries are moved into (never read back).
QUARANTINE_DIR = "quarantine"

#: Environment variable naming the default store location for the CLI.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The CLI's default store root.

    ``$REPRO_CACHE_DIR`` when set, else ``$XDG_CACHE_HOME/repro/store``,
    else ``~/.cache/repro/store``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro", "store")


@dataclass
class StoreStats:
    """Counters for one store instance's lifetime.

    ``hits`` counts both tiers; ``memory_hits`` the subset served
    without touching the disk.  ``corrupt`` counts entries quarantined
    after failing validation (each also counts as a miss).
    """

    hits: int = 0
    memory_hits: int = 0
    mmap_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (manifest/JSON friendly)."""
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "mmap_hits": self.mmap_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk entry, as listed by :meth:`ArtifactStore.entries`."""

    path: Path
    stage: str
    size: int
    mtime: float


class ArtifactStore:
    """Two-tier (memory + filesystem) content-addressed artifact cache.

    Args:
        root: store directory; created on first use.  Entries land in
            one subdirectory per pipeline stage.
        max_bytes: filesystem-tier size cap; ``None`` disables eviction.
        memory_entries: memory-tier capacity (0 disables the tier —
            useful for measuring true disk warm-start costs).
        mmap_reads: the memory-mapped read path.  ``"auto"`` (default)
            maps entry files for codecs that declare ``zero_copy`` —
            their decode then returns read-only array views straight
            over the mapping, so a warm hit allocates nothing
            artifact-sized; ``"always"`` maps every read;
            ``"never"`` always reads entry bytes into memory.
            ``True``/``False`` are accepted as ``"always"``/``"never"``.
            The mapping lives exactly as long as the views built on it
            (NumPy refcounting); eviction of a mapped entry is safe —
            POSIX keeps mapped pages valid after unlink.

    A store object is cheap; its identity does not matter, only its
    root does.  Separate processes pointing at the same root share one
    cache safely: writes are atomic renames and a torn or corrupt read
    degrades to a miss.
    """

    def __init__(
        self,
        root,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        mmap_reads="auto",
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative or None")
        if memory_entries < 0:
            raise ValueError("memory_entries must be non-negative")
        if mmap_reads is True:
            mmap_reads = "always"
        elif mmap_reads is False:
            mmap_reads = "never"
        if mmap_reads not in ("auto", "always", "never"):
            raise ValueError(
                "mmap_reads must be 'auto', 'always', 'never' or a bool"
            )
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.memory_entries = memory_entries
        self.mmap_reads = mmap_reads
        self.stats = StoreStats()
        self._memory: "OrderedDict[str, object]" = OrderedDict()

    # -- paths ------------------------------------------------------------------

    def _entry_path(self, key: ArtifactKey) -> Path:
        return self.root / key.stage / f"{key.digest}{ENTRY_SUFFIX}"

    def _quarantine_path(self, path: Path) -> Path:
        return self.root / QUARANTINE_DIR / f"{path.parent.name}-{path.name}"

    # -- memory tier ------------------------------------------------------------

    def _memory_get(self, digest: str) -> Optional[object]:
        if digest in self._memory:
            self._memory.move_to_end(digest)
            return self._memory[digest]
        return None

    def _memory_put(self, digest: str, value: object) -> None:
        if self.memory_entries <= 0:
            return
        self._memory[digest] = value
        self._memory.move_to_end(digest)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- core operations --------------------------------------------------------

    def _mmap_wanted(self, codec) -> bool:
        if self.mmap_reads == "never":
            return False
        if self.mmap_reads == "always":
            return True
        return bool(getattr(codec, "zero_copy", False))

    @staticmethod
    def _map_entry(path: Path):
        """Memory-map an entry file, or ``None`` if it cannot be mapped.

        Returns a read-only memoryview over the whole file.  The view
        (and any array built on top of it) keeps the underlying mapping
        alive; the file descriptor is closed before returning — POSIX
        mappings outlive their descriptor.  Empty files raise
        ``ValueError`` from ``mmap`` and fall back to the byte path,
        which classifies them as corrupt.
        """
        try:
            with open(path, "rb") as handle:
                mapping = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        except (FileNotFoundError, OSError, ValueError):
            return None
        return memoryview(mapping)

    def get(self, key: ArtifactKey, codec, context=None, recorder=NULL_RECORDER):
        """Fetch and decode the artifact for ``key``, or ``None`` on miss.

        A corrupt entry (truncation, bit flip, undecodable payload) is
        quarantined and reported as a miss.  ``context`` is forwarded to
        the codec's ``decode`` (the stripped-trace codec needs the raw
        trace).

        For zero-copy codecs (``mmap_reads="auto"``) the entry file is
        memory-mapped and decode sees a memoryview, so the warm path
        performs no artifact-sized allocation or copy.
        """
        digest = key.digest
        cached = self._memory_get(digest)
        if cached is not None:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            recorder.count("store_hits")
            return cached
        path = self._entry_path(key)
        source = None
        mapped = False
        if self._mmap_wanted(codec):
            source = self._map_entry(path)
            mapped = source is not None
        if source is None:
            try:
                source = path.read_bytes()
            except (FileNotFoundError, OSError):
                self.stats.misses += 1
                recorder.count("store_misses")
                return None
        try:
            payload = unpack_entry(source, codec.version)
            value = codec.decode(payload, context=context)
        except (CorruptArtifact, ValueError, OverflowError) as exc:
            self._quarantine(path, exc, corrupt_blob=bytes(source))
            self.stats.misses += 1
            recorder.count("store_misses")
            return None
        self._touch(path)
        self.stats.hits += 1
        self.stats.bytes_read += len(source)
        if mapped:
            self.stats.mmap_hits += 1
            recorder.count("store_mmap_hits")
        recorder.count("store_hits")
        recorder.count("store_bytes_read", len(source))
        self._memory_put(digest, value)
        return value

    def put(self, key: ArtifactKey, codec, value, recorder=NULL_RECORDER) -> None:
        """Encode and persist an artifact under ``key`` (atomic rename)."""
        blob = pack_entry(codec.version, codec.encode(value))
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Unique temp name per writer: two processes racing on the same
        # key each rename their own finished file into place.
        tmp = path.parent / f".tmp-{key.digest}-{os.getpid()}-{os.urandom(4).hex()}"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
            self._touch(path)
        finally:
            if tmp.exists():  # pragma: no cover - only on write failure
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.stats.puts += 1
        self.stats.bytes_written += len(blob)
        recorder.count("store_bytes_written", len(blob))
        self._memory_put(key.digest, value)
        if self.max_bytes is not None:
            self.prune(self.max_bytes)

    def _touch(self, path: Path) -> None:
        """Bump an entry's mtime so mtime order approximates LRU order.

        Stamps an explicit ``time.time_ns()`` value rather than letting
        the kernel fill it in: file writes are timestamped with the
        coarse clock (tick granularity), so a read in the same tick as a
        write would otherwise tie instead of ordering after it.
        """
        now = time.time_ns()
        try:
            os.utime(path, ns=(now, now))
        except OSError:  # pragma: no cover - entry evicted mid-read
            pass

    def _quarantine(
        self,
        path: Path,
        reason: Exception,
        corrupt_blob: Optional[bytes] = None,
    ) -> None:
        """Move a bad entry aside; it will never be read again.

        Between the reader's ``read_bytes`` returning corrupt data and
        this call, a concurrent ``put`` may have atomically installed a
        fresh, valid entry at ``path`` — blindly renaming would
        quarantine (i.e. lose) that fresh entry.  So: rename first, then
        compare the moved bytes against the corrupt blob we actually
        read.  Once renamed the bytes cannot change under us, making the
        check race-free; on mismatch the entry was rewritten and is
        restored.  Restoring cannot clobber newer data — entries are
        content-addressed, so every valid blob at this path encodes the
        same artifact.
        """
        target = self._quarantine_path(path)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:  # pragma: no cover - raced with another reader
            return
        if corrupt_blob is not None:
            try:
                moved = target.read_bytes()
            except OSError:  # pragma: no cover - quarantine dir raced
                moved = None
            if moved is not None and moved != corrupt_blob:
                try:
                    os.replace(target, path)
                except OSError:  # pragma: no cover - filesystem raced
                    pass
                return
        self.stats.corrupt += 1

    # -- maintenance ------------------------------------------------------------

    def entries(self) -> List[StoreEntry]:
        """All live entries (quarantine excluded), oldest-used first."""
        found: List[StoreEntry] = []
        if not self.root.is_dir():
            return found
        for stage_dir in sorted(self.root.iterdir()):
            if not stage_dir.is_dir() or stage_dir.name == QUARANTINE_DIR:
                continue
            for path in stage_dir.glob(f"*{ENTRY_SUFFIX}"):
                try:
                    stat = path.stat()
                except OSError:  # pragma: no cover - raced with eviction
                    continue
                found.append(
                    StoreEntry(
                        path=path,
                        stage=stage_dir.name,
                        size=stat.st_size,
                        mtime=stat.st_mtime,
                    )
                )
        found.sort(key=lambda entry: (entry.mtime, str(entry.path)))
        return found

    def total_bytes(self) -> int:
        """Bytes held by live entries."""
        return sum(entry.size for entry in self.entries())

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until under ``max_bytes``.

        Returns the number of entries evicted.  ``max_bytes`` defaults
        to the store's configured cap.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return 0
        entries = self.entries()
        total = sum(entry.size for entry in entries)
        evicted = 0
        for entry in entries:
            if total <= cap:
                break
            try:
                entry.path.unlink()
            except OSError:  # pragma: no cover - raced with another pruner
                continue
            total -= entry.size
            evicted += 1
            self.stats.evictions += 1
        return evicted

    def clear(self) -> int:
        """Remove every entry (quarantined ones included); return count."""
        removed = 0
        for entry in self.entries():
            try:
                entry.path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced with another clearer
                pass
        quarantine = self.root / QUARANTINE_DIR
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover
                    pass
        self._memory.clear()
        return removed

    def describe(self) -> Dict[str, object]:
        """Summary for ``repro cache stats``: totals and per-stage counts."""
        by_stage: Dict[str, Tuple[int, int]] = {}
        for entry in self.entries():
            count, size = by_stage.get(entry.stage, (0, 0))
            by_stage[entry.stage] = (count + 1, size + entry.size)
        quarantined = 0
        quarantine = self.root / QUARANTINE_DIR
        if quarantine.is_dir():
            quarantined = sum(1 for _ in quarantine.iterdir())
        return {
            "root": str(self.root),
            "entries": sum(count for count, _ in by_stage.values()),
            "bytes": sum(size for _, size in by_stage.values()),
            "max_bytes": self.max_bytes,
            "by_stage": {
                stage: {"entries": count, "bytes": size}
                for stage, (count, size) in sorted(by_stage.items())
            },
            "quarantined": quarantined,
        }

    def __repr__(self) -> str:
        return f"<ArtifactStore root={str(self.root)!r}>"
