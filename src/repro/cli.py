"""Command-line interface.

Subcommands::

    repro workloads [--scale S] [--extras]     run & verify the kernels
    repro emit NAME --kind inst|data|unified -o F   write a workload trace
    repro stats TRACE [TRACE ...]          Table 5/6-style statistics
    repro explore TRACE --budget K [--json]    analytical (D, A) exploration
    repro explore TRACE --percent P        ... with K = P% of max misses
    repro explore TRACE --budget K --engine E  ... with a specific engine
    repro explore TRACE --budget K --profile M.json  ... plus a run manifest
    repro profile TRACE [--engine E]       per-phase timing/memory telemetry
    repro engines                          list the histogram engines
    repro verify [--budget 60s]            differential fuzzing oracle
    repro cache stats|clear|prune          manage the artifact store
    repro simulate TRACE --depth D --assoc A   one cache simulation
    repro compare TRACE --budget K         analytical vs traditional DSE
    repro linesize TRACE --budget K        sweep line sizes (future work)
    repro compact TRACE -o OUT --filter-depth D   Puzak trace stripping
    repro robustness TRACE --budget K      LRU instances under FIFO/PLRU/random
    repro cost TRACE --budget K            CACTI-style cost ranking
    repro phases TRACE --budget K          per-phase optima vs static
    repro hierarchy TRACE --percent P      explore L2 behind a fixed L1
    repro conflicts TRACE --depth D        diagnose conflicting cache rows
    repro curves TRACE [-o csv]            miss curves as CSV
    repro disasm NAME                      disassemble a workload kernel
    repro report TRACE [-o report.md]      full markdown design report
    repro paper-example                    the paper's running example
    repro serve [--port P] [--workers W]   exploration daemon (HTTP/JSON)
    repro submit TRACE --budget K          send a request to the daemon
    repro stream TRACE --budget K          chunked/out-of-core exploration
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import (
    format_table,
    trace_stats_table,
)
from repro.cache.config import CacheConfig, ReplacementKind
from repro.cache.simulator import simulate_trace
from repro.core.bcat import build_bcat
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.mrct import build_mrct, mrct_as_display_table
from repro.core.zerosets import build_zero_one_sets
from repro.explore.compare import compare_methods
from repro.explore.space import DesignSpace
from repro.trace.io import read_trace, write_trace
from repro.trace.stats import compute_statistics
from repro.trace.strip import strip_trace
from repro.trace.trace import Trace


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import list_workloads, run_workload_by_name

    rows = []
    for name in list_workloads(include_extras=args.extras):
        run = run_workload_by_name(name, scale=args.scale)
        rows.append(
            [
                name,
                run.machine.instructions_executed,
                len(run.instruction_trace),
                len(run.data_trace),
                f"{run.checksum:#010x}",
                "ok" if run.verified else "MISMATCH",
            ]
        )
    print(
        format_table(
            ["Benchmark", "Instructions", "I-trace N", "D-trace N", "Checksum", "Verify"],
            rows,
            title=f"PowerStone-style workloads (scale={args.scale})",
        )
    )
    return 0


def _cmd_emit(args: argparse.Namespace) -> int:
    from repro.workloads import run_workload_by_name

    run = run_workload_by_name(args.name, scale=args.scale)
    if args.kind == "inst":
        trace = run.instruction_trace
    elif args.kind == "data":
        trace = run.data_trace
    else:
        trace = run.machine.combined_trace(f"{args.name}.unified")
    write_trace(trace, args.output)
    print(f"wrote {len(trace)} references to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    stats = [compute_statistics(read_trace(path)) for path in args.traces]
    print(trace_stats_table(stats))
    return 0


def _budget_for(args: argparse.Namespace, explorer: AnalyticalCacheExplorer) -> int:
    if args.budget is not None:
        return args.budget
    return explorer.statistics.budget(args.percent)


def _resolve_store(args: argparse.Namespace):
    """The artifact store a subcommand should use, or ``None``.

    Caching is opt-in: ``--cache-dir DIR`` on the command line, or the
    ``REPRO_CACHE_DIR`` environment variable; ``--no-cache`` wins over
    both.
    """
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    if not cache_dir:
        import os

        cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if not cache_dir:
        return None
    from repro.store import ArtifactStore

    mmap_reads = "never" if getattr(args, "no_mmap", False) else "auto"
    return ArtifactStore(cache_dir, mmap_reads=mmap_reads)


def _add_cache_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="artifact store directory (warm-starts repeated runs; "
        "REPRO_CACHE_DIR also enables it)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any artifact store, even if REPRO_CACHE_DIR is set",
    )
    p.add_argument(
        "--no-mmap",
        action="store_true",
        help="read store entries into memory instead of memory-mapping "
        "them (mmap is the default for zero-copy codecs)",
    )


def _add_scenario_flags(p: argparse.ArgumentParser) -> None:
    """The uniform scenario flags, grouped in one help section."""
    from repro.core import engines as _engines
    from repro.scenario import COST_MODELS

    group = p.add_argument_group(
        "scenario options",
        "policy-aware exploration beyond the paper's fixed point "
        "(LRU replacement, single level, no cost model)",
    )
    group.add_argument(
        "--policy",
        default="lru",
        choices=list(_engines.policy_names()),
        help="replacement policy to explore under (default: lru)",
    )
    group.add_argument(
        "--l2-depth",
        type=int,
        default=None,
        metavar="D",
        help="also explore a second cache level: the L1 winner's miss "
        "stream is re-explored with depths bounded by this power of two",
    )
    group.add_argument(
        "--cost-model",
        default=None,
        choices=list(COST_MODELS),
        help="rank each budget's instances by hardware cost",
    )


def _scenario_from_args(args: argparse.Namespace):
    """Build the :class:`ScenarioSpec` a subcommand's flags describe."""
    from repro.scenario import ScenarioSpec

    return ScenarioSpec(
        engine=getattr(args, "engine", "auto"),
        processes=getattr(args, "processes", 2),
        prelude=getattr(args, "prelude", "auto"),
        max_depth=getattr(args, "max_depth", None) or None,
        include_depth_one=getattr(args, "include_depth_one", False),
        policy=args.policy,
        l2_depth=args.l2_depth,
        cost_model=args.cost_model,
    )


def _print_scenario_extras(extras: dict) -> None:
    """Render the L2/cost sections of a scenario report as tables."""
    l2 = extras.get("l2")
    if l2:
        for entry in l2["explorations"]:
            rows = [
                [i["depth"], i["associativity"], i["size_words"], i["misses"]]
                for i in entry["result"]["instances"]
            ]
            print(
                format_table(
                    ["Depth D", "Assoc A", "Size (words)", "Misses"],
                    rows,
                    title=(
                        f"L2 instances behind L1 "
                        f"(D={entry['l1']['depth']}, "
                        f"A={entry['l1']['associativity']}) "
                        f"at K={entry['budget']}"
                    ),
                )
            )
    cost = extras.get("cost")
    if cost:
        for ranking in cost["rankings"]:
            rows = [
                [
                    d["depth"],
                    d["associativity"],
                    d["size_words"],
                    d["non_cold_misses"],
                    f"{d['cost']:.6g}",
                ]
                for d in ranking["designs"]
            ]
            print(
                format_table(
                    ["Depth D", "Assoc A", "Size (words)", "Misses", "Cost"],
                    rows,
                    title=(
                        f"cost ranking ({cost['model']}) "
                        f"at K={ranking['budget']}"
                    ),
                )
            )


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.core import engines as _engines

    try:
        spec = _scenario_from_args(args)
    except ValueError as exc:
        print(f"explore failed: {exc}", file=sys.stderr)
        return 1
    recorder = None
    if args.profile:
        from repro.obs import Recorder

        recorder = Recorder(memory=True)
    if recorder is not None:
        with recorder.phase("load-trace"):
            trace = read_trace(args.trace)
    else:
        trace = read_trace(args.trace)
    store = _resolve_store(args)
    explorer = _engines.policy_explorer(
        spec.policy,
        trace,
        max_depth=spec.max_depth,
        engine=spec.engine,
        prelude=spec.prelude,
        recorder=recorder,
        store=store,
    )
    budget = _budget_for(args, explorer)
    result = explorer.explore(budget)
    extras = None
    if not spec.is_baseline():
        from repro.scenario import scenario_extras

        extras = scenario_extras(
            trace,
            spec,
            [budget],
            [result],
            explorer,
            recorder=recorder,
            store=store,
        )
    if recorder is not None:
        manifest = explorer.run_manifest()
        with open(args.profile, "w", encoding="utf-8") as fh:
            fh.write(manifest.to_json())
            fh.write("\n")
        print(f"wrote run manifest to {args.profile}", file=sys.stderr)
    if args.json:
        import json

        document = result.to_json_dict()
        if extras is not None:
            document["scenario"] = extras
        print(json.dumps(document, indent=2))
        return 0
    policy_note = "" if spec.policy == "lru" else f", policy: {spec.policy}"
    print(
        f"trace {trace.name}: N={len(trace)} N'={trace.unique_count()} "
        f"(engine: {explorer.resolved_engine}{policy_note})"
    )
    print(f"miss budget K={budget} (beyond cold misses)")
    rows = [
        [inst.depth, inst.associativity, inst.size_words, misses]
        for inst, misses in zip(result.instances, result.misses)
    ]
    print(
        format_table(
            ["Depth D", "Assoc A", "Size (words)", "Misses"],
            rows,
            title="optimal cache instances",
        )
    )
    if extras is not None:
        _print_scenario_extras(extras)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import Recorder

    recorder = Recorder(memory=not args.no_memory)
    with recorder.phase("load-trace"):
        trace = read_trace(args.trace)
    explorer = AnalyticalCacheExplorer(
        trace,
        engine=args.engine,
        processes=args.processes,
        prelude=args.prelude,
        recorder=recorder,
        store=_resolve_store(args),
    )
    if args.budget is not None:
        budget = args.budget
    else:
        budget = explorer.statistics.budget(args.percent)
    result = explorer.explore(budget)
    manifest = explorer.run_manifest()  # before printing: wall time is closed
    if args.json:
        print(manifest.to_json())
    else:
        print(
            f"trace {trace.name}: N={len(trace)} N'={trace.unique_count()} "
            f"K={budget} -> {len(result.instances)} instances "
            f"(engine: {manifest.engine})"
        )
        print(recorder.render())
        if recorder.memory_stats:
            pairs = ", ".join(
                f"{name}={value}"
                for name, value in sorted(recorder.memory_stats.items())
            )
            print(f"memory: {pairs}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(manifest.to_json())
            fh.write("\n")
        print(f"wrote run manifest to {args.output}", file=sys.stderr)
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from repro.core import engines

    rows = [
        [
            spec.name,
            "yes" if spec.available() else "no (NumPy missing)",
            spec.summary,
            ", ".join(spec.options) or "-",
            spec.best_for,
        ]
        for spec in (engines.get_engine(n) for n in engines.engine_names(False))
    ]
    print(
        format_table(
            ["Engine", "Available", "Summary", "Options", "Best for"],
            rows,
            title="histogram engines (all bit-identical)",
        )
    )
    print(
        f"auto: 'vectorized' when NumPy is importable and the trace has "
        f">= {engines.AUTO_MIN_REFS} references "
        f"(>= {engines.AUTO_MIN_REFS_POSTLUDE} when the MRCT is already "
        f"built) and >= {engines.AUTO_MIN_UNIQUE} unique addresses, "
        f"else 'serial'; 'parallel-shm' at "
        f">= {engines.AUTO_MIN_REFS_PARALLEL_SHM} references on multi-CPU "
        f"hosts; 'parallel' and 'streaming' are explicit-only "
        f"(see BENCH_postlude.json, BENCH_parallel.json)"
    )
    return 0


def _parse_time_budget(text: Optional[str]) -> Optional[float]:
    """Parse a wall-clock budget: ``"90"``, ``"60s"``, ``"2m"``, ``"500ms"``."""
    if text is None:
        return None
    raw = text.strip().lower()
    scale = 1.0
    for suffix, factor in (("ms", 0.001), ("s", 1.0), ("m", 60.0), ("h", 3600.0)):
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            scale = factor
            break
    try:
        value = float(raw) * scale
    except ValueError:
        raise SystemExit(
            f"invalid time budget {text!r}; examples: 90, 60s, 2m"
        )
    if value <= 0:
        raise SystemExit(f"time budget must be positive, got {text!r}")
    return value


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import VerifyConfig, default_corpus_dir, run_verify

    engines = tuple(args.engines) if args.engines else None
    preludes = tuple(args.preludes) if args.preludes else None
    max_traces = args.max_traces
    if args.smoke:
        # PR-lane preset: a fast sub-grid unless the user overrode it.
        engines = engines or ("serial", "vectorized")
        preludes = preludes or ("python", "fast")
        if max_traces is None and args.budget is None:
            max_traces = 8
    corpus_dir = args.corpus_dir
    if corpus_dir is None and not args.no_corpus:
        corpus_dir = default_corpus_dir()
    config = VerifyConfig(
        seed=args.seed,
        max_traces=max_traces,
        time_budget_s=_parse_time_budget(args.budget),
        engines=engines,
        preludes=preludes,
        include_warm=not args.no_warm,
        laws=args.laws,
        policies=tuple(args.policies) if args.policies else (),
        processes=args.processes,
        corpus_dir=None if args.no_corpus else corpus_dir,
        shrink=not args.no_shrink,
        fail_fast=args.fail_fast,
    )
    from repro.obs.recorder import NULL_RECORDER

    recorder = None
    if args.profile:
        from repro.obs import Recorder

        recorder = Recorder()
    report = run_verify(
        config, recorder=recorder if recorder is not None else NULL_RECORDER
    )
    import json

    if args.json:
        print(json.dumps(report.to_json_dict(), indent=2))
    else:
        print(
            f"verify: {report.traces} traces x {len(report.grid)} grid "
            f"cells ({report.cells} cell runs), "
            f"{report.corpus_replayed} corpus entries replayed, "
            f"{report.elapsed_s:.1f}s ({report.stopped_by})"
        )
        if report.ok:
            print("all cells bit-identical; simulator and invariants agree")
        for failure in report.failures:
            where = failure.cell or failure.law or "-"
            shrunk = (
                f" (shrunk {failure.trace_len} -> {failure.shrunk_len} refs)"
                if failure.shrunk_len is not None
                else ""
            )
            saved = f" -> {failure.artifact}" if failure.artifact else ""
            print(
                f"FAIL [{failure.kind}] {failure.entry} @ {where}: "
                f"{failure.detail}{shrunk}{saved}"
            )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report.to_json_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote verify report to {args.output}", file=sys.stderr)
    if args.profile and recorder is not None:
        from repro.obs import RunManifest

        manifest = RunManifest.from_recorder(
            recorder,
            engine="verify-grid",
            requested_engine="verify-grid",
            options={"seed": args.seed, "laws": args.laws},
            trace={
                "name": "verify-corpus",
                "n": report.traces,
                "n_unique": None,
                "address_bits": 0,
            },
        )
        manifest.verify = report.counters()
        with open(args.profile, "w", encoding="utf-8") as fh:
            fh.write(manifest.to_json())
            fh.write("\n")
        print(f"wrote run manifest to {args.profile}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore, default_cache_dir

    root = args.cache_dir or default_cache_dir()
    store = ArtifactStore(root, max_bytes=None)  # maintenance: no auto-evict
    if args.action == "stats":
        import json

        summary = store.describe()
        if args.json:
            print(json.dumps(summary, indent=2))
            return 0
        print(f"artifact store: {summary['root']}")
        print(f"entries: {summary['entries']}  bytes: {summary['bytes']}")
        for stage, info in summary["by_stage"].items():
            print(f"  {stage:<12s} {info['entries']:>6d} entries  {info['bytes']:>10d} bytes")
        if summary["quarantined"]:
            print(f"quarantined: {summary['quarantined']} corrupt entries")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {root}")
        return 0
    # prune
    evicted = store.prune(args.max_bytes)
    print(
        f"evicted {evicted} least-recently-used entries from {root} "
        f"(cap: {args.max_bytes} bytes)"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    config = CacheConfig(
        depth=args.depth,
        associativity=args.assoc,
        line_words=args.line,
        replacement=ReplacementKind(args.replacement),
    )
    result = simulate_trace(trace, config)
    print(f"config: {config.describe()}")
    print(f"accesses:        {result.accesses}")
    print(f"hits:            {result.hits}")
    print(f"cold misses:     {result.cold_misses}")
    print(f"non-cold misses: {result.non_cold_misses}")
    print(f"miss rate:       {result.miss_rate:.4f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    trace = read_trace(args.trace)
    space = DesignSpace(
        min_depth=2,
        max_depth=args.max_depth or (1 << max(1, trace.address_bits - 1)),
        max_associativity=args.max_assoc,
    )
    explorer = AnalyticalCacheExplorer(trace)
    budget = _budget_for(args, explorer)
    comparison = compare_methods(trace, budget, space)
    print(f"budget K={budget}; agreement: {comparison.agreement()}")
    for problem in comparison.disagreements():
        print(f"  DISAGREEMENT: {problem}")
    rows = [
        ["analytical", "-", f"{comparison.analytical_seconds:.4f}"],
        [
            "exhaustive",
            comparison.exhaustive.simulations,
            f"{comparison.exhaustive.elapsed_seconds:.4f}",
        ],
        [
            "heuristic",
            comparison.heuristic.simulations,
            f"{comparison.heuristic.elapsed_seconds:.4f}",
        ],
    ]
    print(format_table(["Method", "Simulations", "Seconds"], rows))
    print(
        f"speedup vs exhaustive: {comparison.speedup_vs_exhaustive:.1f}x, "
        f"vs heuristic: {comparison.speedup_vs_heuristic:.1f}x"
    )
    return 0


def _cmd_linesize(args: argparse.Namespace) -> int:
    from repro.core.linesize import LineSizeExplorer

    trace = read_trace(args.trace)
    explorer = LineSizeExplorer(trace, line_sizes=args.lines)
    stats_explorer = AnalyticalCacheExplorer(trace)
    budget = _budget_for(args, stats_explorer)
    sweep = explorer.explore(budget)
    rows = [
        [
            point.line_words,
            point.instance.depth,
            point.instance.associativity,
            point.size_words,
            point.non_cold_misses,
            point.traffic_words,
        ]
        for point in sweep.instances
    ]
    print(
        format_table(
            ["Line", "Depth", "Assoc", "Words", "Misses", "Traffic"],
            rows,
            title=f"line-size sweep at K={budget}",
        )
    )
    print(f"smallest: {sweep.smallest()}  least traffic: {sweep.least_traffic()}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    from repro.trace.compaction import compact_trace

    trace = read_trace(args.trace)
    result = compact_trace(trace, args.filter_depth)
    write_trace(result.trace, args.output)
    stats = result.stats
    print(
        f"stripped {stats.original_length} -> {stats.compacted_length} "
        f"references ({stats.reduction:.1%} removed); miss counts exact "
        f"for depths >= {stats.filter_depth}"
    )
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from repro.explore.policies import policy_robustness

    trace = read_trace(args.trace)
    explorer = AnalyticalCacheExplorer(trace)
    budget = _budget_for(args, explorer)
    result = explorer.explore(budget)
    records = policy_robustness(trace, result)
    rows = []
    for record in records:
        cells = [str(record.instance), record.lru_misses]
        for policy in sorted(record.outcomes, key=lambda p: p.value):
            outcome = record.outcomes[policy]
            if not outcome.applicable:
                cells.append("n/a")
            else:
                marker = "" if outcome.non_cold_misses <= budget else " !"
                cells.append(f"{outcome.non_cold_misses}{marker}")
        rows.append(cells)
    policies = sorted(
        records[0].outcomes, key=lambda p: p.value
    ) if records else []
    print(
        format_table(
            ["Instance", "LRU"] + [p.value for p in policies],
            rows,
            title=f"non-cold misses per policy at K={budget} (! = over budget)",
        )
    )
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from repro.explore.selection import cheapest, cost_exploration, cost_pareto

    trace = read_trace(args.trace)
    explorer = AnalyticalCacheExplorer(trace)
    budget = _budget_for(args, explorer)
    result = explorer.explore(budget)
    costed = cost_exploration(explorer, result, address_bits=trace.address_bits)
    front = cost_pareto(costed)
    rows = [
        [
            str(c.instance),
            f"{c.estimate.area_bits:.0f}",
            f"{c.run_energy:.0f}",
            f"{c.estimate.access_time:.2f}",
            c.non_cold_misses,
            "*" if c in front else "",
        ]
        for c in costed
    ]
    print(
        format_table(
            ["Instance", "Area (bits)", "Run energy", "Latency", "Misses", "Pareto"],
            rows,
            title=f"hardware cost of K={budget} solutions (normalized units)",
        )
    )
    print(f"min energy: {cheapest(costed).instance}")
    return 0


def _cmd_phases(args: argparse.Namespace) -> int:
    from repro.explore.phases import explore_phases

    trace = read_trace(args.trace)
    explorer = AnalyticalCacheExplorer(trace)
    budget = _budget_for(args, explorer)
    outcome = explore_phases(trace, budget, phase_count=args.phases)
    depths = sorted(outcome.static_result.as_dict())
    rows = []
    for depth in depths:
        per_phase = outcome.phase_instances(depth)
        if any(a is None for a in per_phase):
            continue
        rows.append(
            [
                depth,
                outcome.static_result.as_dict()[depth],
                "/".join(str(a) for a in per_phase),
                outcome.reconfiguration_benefit(depth),
            ]
        )
    print(
        format_table(
            ["Depth", "Static A", "Per-phase A", "Words saved"],
            rows,
            title=f"phase exploration: {args.phases} phases, K={budget} each",
        )
    )
    return 0


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from repro.explore.hierarchy import HierarchyExplorer
    from repro.trace.stats import compute_statistics

    trace = read_trace(args.trace)
    l1 = CacheConfig(depth=args.l1_depth, associativity=args.l1_assoc)
    explorer = HierarchyExplorer(trace, l1)
    if args.budget is not None:
        budget = args.budget
    else:
        budget = compute_statistics(explorer.miss_trace).budget(args.percent)
    outcome = explorer.explore(budget)
    print(
        f"L1 ({l1.describe()}): {outcome.l1_result.misses} misses "
        f"({outcome.l1_result.miss_rate:.1%}) -> L2 sees "
        f"{len(outcome.miss_trace)} accesses"
    )
    rows = [
        [inst.depth, inst.associativity, misses]
        for inst, misses in zip(
            outcome.l2_result.instances, outcome.l2_result.misses
        )
    ]
    print(
        format_table(
            ["L2 depth", "L2 assoc", "L2 misses"],
            rows,
            title=f"optimal L2 instances at K={budget}",
        )
    )
    return 0


def _cmd_conflicts(args: argparse.Namespace) -> int:
    from repro.analysis.conflicts import conflict_report

    trace = read_trace(args.trace)
    explorer = AnalyticalCacheExplorer(trace)
    rows = conflict_report(
        explorer, args.depth, associativity=args.assoc, top=args.top
    )
    if not rows:
        print(
            f"no conflicting rows at D={args.depth} A={args.assoc} - "
            "the cache is conflict-free for this trace"
        )
        return 0
    print(
        format_table(
            ["Row", "Misses", "Refs", "Addresses"],
            [
                [
                    r.row_index,
                    r.misses,
                    r.occupancy,
                    ", ".join(f"{a:#x}" for a in r.addresses[:6])
                    + ("..." if r.occupancy > 6 else ""),
                ]
                for r in rows
            ],
            title=f"top conflicting rows at D={args.depth} A={args.assoc}",
        )
    )
    return 0


def _cmd_curves(args: argparse.Namespace) -> int:
    from repro.analysis.curves import associativity_curve, capacity_curve
    from repro.analysis.export import curve_to_csv

    trace = read_trace(args.trace)
    explorer = AnalyticalCacheExplorer(trace)
    if args.depth:
        points = associativity_curve(explorer, args.depth)
        csv_text = curve_to_csv(points, x_name="associativity")
    else:
        max_capacity = args.max_capacity
        if not max_capacity:
            max_capacity = 2
            while max_capacity < 2 * explorer.stripped.n_unique:
                max_capacity *= 2
        points = capacity_curve(explorer, max_capacity=max_capacity)
        csv_text = curve_to_csv(points, x_name="capacity_words")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(csv_text)
        print(f"wrote {len(points)} points to {args.output}")
    else:
        print(csv_text, end="")
    return 0


def _cmd_disasm(args: argparse.Namespace) -> int:
    from repro.isa.assembler import assemble
    from repro.workloads import get_workload

    workload = get_workload(args.name, scale=args.scale)
    program = assemble(workload.source, name=workload.name)
    print(f"; {workload.name}: {workload.description}")
    print(
        f"; {program.code_words} instructions, "
        f"{program.data_words} data words, "
        f"expected checksum {workload.expected:#010x}"
    )
    print(program.disassemble())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    trace = read_trace(args.trace)
    report = generate_report(trace, focus_percent=args.percent)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
        print(f"wrote report to {args.output}")
    else:
        print(report)
    return 0


def _cmd_paper_example(args: argparse.Namespace) -> int:
    trace = Trace.from_bit_strings(
        [
            "1011", "1100", "0110", "0011", "1011",
            "0100", "1100", "0011", "1011", "0110",
        ],
        name="paper-table-1",
    )
    stripped = strip_trace(trace)
    print("Table 1 (original trace):", [f"{a:04b}" for a in trace])
    print(
        "Table 2 (stripped):",
        {i + 1: f"{a:04b}" for i, a in enumerate(stripped.unique_addresses)},
    )
    zerosets = build_zero_one_sets(stripped)
    print("Table 3 (zero/one sets):")
    for bit in range(zerosets.address_bits):
        zero = sorted(i + 1 for i in zerosets.zero_members(bit))
        one = sorted(i + 1 for i in zerosets.one_members(bit))
        print(f"  B{bit}: Z={zero} O={one}")
    mrct = build_mrct(stripped)
    print("Table 4 (MRCT):", mrct_as_display_table(mrct))
    print("Figure 3 (BCAT):")
    print(build_bcat(zerosets).render())
    explorer = AnalyticalCacheExplorer(trace)
    result = explorer.explore(0)
    print("Optimal pairs for K=0:", [str(i) for i in result])
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.serve import ExploreServer, WorkerPool

    store = _resolve_store(args)
    store_root = str(store.root) if store is not None else None
    pool = WorkerPool(
        workers=args.workers, kind=args.pool, store_root=store_root
    )
    server = ExploreServer(pool, host=args.host, port=args.port)

    async def run() -> None:
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        print(
            f"repro serve: listening on http://{server.host}:{server.port} "
            f"({args.pool} pool, {args.workers} workers, "
            f"store: {store_root or 'off'})",
            file=sys.stderr,
            flush=True,
        )
        serving = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        print("repro serve: draining...", file=sys.stderr, flush=True)
        await server.shutdown(drain=True, timeout=args.drain_timeout)
        serving.cancel()
        await asyncio.gather(serving, return_exceptions=True)

    asyncio.run(run())
    if args.manifest_out:
        from repro.obs import RunManifest

        manifest = RunManifest.from_recorder(
            server.recorder,
            engine="serve",
            requested_engine="serve",
            options={
                "pool": args.pool,
                "workers": args.workers,
                "host": args.host,
                "port": args.port,
            },
            trace={"name": "serve", "n": 0, "n_unique": None, "address_bits": 0},
        )
        manifest.serve = server.counters()
        with open(args.manifest_out, "w", encoding="utf-8") as fh:
            fh.write(manifest.to_json())
            fh.write("\n")
        print(f"wrote serve manifest to {args.manifest_out}", file=sys.stderr)
    print("repro serve: stopped", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.core.request import ExplorationRequest
    from repro.serve import ServeClient, ServeError

    traces = tuple(read_trace(path) for path in args.traces)
    try:
        request = ExplorationRequest(
            traces=traces,
            mode=args.mode,
            budgets=tuple(args.budget) if args.budget else (),
            percents=tuple(args.percent) if args.percent else (),
            scenario=_scenario_from_args(args),
        )
    except ValueError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        report = client.explore(request)
    except ServeError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        import json

        print(json.dumps(report.to_json_dict(), indent=2))
        return 0
    print(
        f"mode {report.mode} via {args.host}:{args.port} "
        f"(engine: {report.engine})"
    )
    for result in report.results:
        rows = [
            [inst.depth, inst.associativity, inst.size_words, misses]
            for inst, misses in zip(result.instances, result.misses)
        ]
        print(
            format_table(
                ["Depth D", "Assoc A", "Size (words)", "Misses"],
                rows,
                title=f"optimal instances at K={result.budget}",
            )
        )
    for multi in report.multi_results:
        rows = [
            [inst.depth, inst.associativity, inst.size_words]
            for inst in multi.instances
        ]
        print(
            format_table(
                ["Depth D", "Assoc A", "Size (words)"],
                rows,
                title=f"set instances at K={multi.budget}",
            )
        )
    for sweep in report.line_sweeps:
        rows = [
            [
                point.line_words,
                point.instance.depth,
                point.instance.associativity,
                point.non_cold_misses,
            ]
            for point in sweep.instances
        ]
        print(
            format_table(
                ["Line", "Depth", "Assoc", "Misses"],
                rows,
                title=f"line-size sweep at K={sweep.budget}",
            )
        )
    if report.scenario:
        _print_scenario_extras(report.scenario)
    return 0


def _cmd_stream_scenario(args: argparse.Namespace, spec) -> int:
    """Non-baseline scenarios need the whole trace resident.

    The streaming tier maintains online LRU conflict histograms only;
    FIFO simulation, miss-stream capture, and costing all replay the
    full reference sequence.  Fall back to a materialized exploration
    with a warning rather than silently answering the wrong question.
    """
    from repro.core import engines as _engines
    from repro.scenario import scenario_extras

    print(
        f"stream: scenario (policy={spec.policy}, l2_depth={spec.l2_depth}, "
        f"cost_model={spec.cost_model}) requires the whole trace; "
        f"materializing {args.trace}",
        file=sys.stderr,
    )
    store = _resolve_store(args)
    budgets = args.budget if args.budget else [0]
    try:
        trace = read_trace(args.trace, address_bits=args.address_bits)
        explorer = _engines.policy_explorer(spec.policy, trace, store=store)
        results = [
            explorer.explore(b, include_depth_one=args.include_depth_one)
            for b in budgets
        ]
        extras = scenario_extras(
            trace, spec, budgets, results, explorer, store=store
        )
    except (OSError, ValueError) as exc:
        print(f"stream failed: {exc}", file=sys.stderr)
        return 1

    if args.json:
        import json

        document = {
            "trace": args.trace,
            "address_bits": trace.address_bits,
            "total_refs": len(trace),
            "unique_refs": trace.unique_count(),
            "materialized": True,
            "results": {
                str(budget): result.to_json_dict()
                for budget, result in zip(budgets, results)
            },
        }
        if extras is not None:
            document["scenario"] = extras
        print(json.dumps(document, indent=2))
        return 0

    print(
        f"stream {args.trace}: {len(trace)} refs "
        f"({trace.unique_count()} unique, {trace.address_bits} bits, "
        f"materialized, policy {spec.policy})"
    )
    for budget, result in zip(budgets, results):
        rows = [
            [inst.depth, inst.associativity, inst.size_words, misses]
            for inst, misses in zip(result.instances, result.misses)
        ]
        print(
            format_table(
                ["Depth D", "Assoc A", "Size (words)", "Misses"],
                rows,
                title=f"optimal instances at K={budget}",
            )
        )
    if extras is not None:
        _print_scenario_extras(extras)
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.core.streaming import StreamDigest
    from repro.stream import TraceSession
    from repro.trace.io import iter_trace_chunks, probe_address_bits

    try:
        spec = _scenario_from_args(args)
    except ValueError as exc:
        print(f"stream failed: {exc}", file=sys.stderr)
        return 1
    if not spec.is_baseline():
        return _cmd_stream_scenario(args, spec)

    try:
        bits = probe_address_bits(args.trace)
    except (OSError, ValueError) as exc:
        print(f"stream failed: {exc}", file=sys.stderr)
        return 1
    if args.address_bits is not None:
        bits = args.address_bits
    if bits is None:
        print(
            f"stream failed: cannot probe the address width of "
            f"{args.trace}; pass --address-bits",
            file=sys.stderr,
        )
        return 1
    if bits < 1:
        print(
            f"stream failed: address_bits must be >= 1, got {bits}",
            file=sys.stderr,
        )
        return 1

    store = _resolve_store(args)
    budgets = args.budget if args.budget else [0]

    session = None
    resumed = False
    try:
        if store is not None:
            # Cheap digest-only pre-pass: decide whether a checkpoint
            # for the full sequence already exists before ingesting.
            digest = StreamDigest(bits)
            for chunk in iter_trace_chunks(args.trace, args.chunk_refs):
                digest.append(chunk)
            session = TraceSession.resume(
                store,
                digest.content_digest,
                max_level=args.max_level,
                name=args.trace,
            )
            resumed = session is not None
        if session is None:
            session = TraceSession(
                bits,
                max_level=args.max_level,
                store=store,
                name=args.trace,
            )
            for chunk in iter_trace_chunks(args.trace, args.chunk_refs):
                session.append(chunk)
            if store is not None:
                session.checkpoint()
        results = session.explore_many(
            budgets, include_depth_one=args.include_depth_one
        )
    except (OSError, ValueError) as exc:
        print(f"stream failed: {exc}", file=sys.stderr)
        return 1

    if args.json:
        import json

        document = {
            "trace": args.trace,
            "address_bits": session.address_bits,
            "max_level": session.max_level,
            "total_refs": session.total_refs,
            "unique_refs": session.unique_refs,
            "digest": session.content_digest,
            "resumed": resumed,
            "results": {
                str(budget): [
                    {
                        "depth": inst.depth,
                        "associativity": inst.associativity,
                        "size_words": inst.size_words,
                    }
                    for inst in instances
                ]
                for budget, instances in results.items()
            },
        }
        print(json.dumps(document, indent=2))
        return 0

    warmth = "resumed from checkpoint" if resumed else "ingested"
    print(
        f"stream {args.trace}: {session.total_refs} refs "
        f"({session.unique_refs} unique, {session.address_bits} bits, "
        f"{warmth})"
    )
    for budget in budgets:
        rows = [
            [inst.depth, inst.associativity, inst.size_words]
            for inst in results[budget]
        ]
        print(
            format_table(
                ["Depth D", "Assoc A", "Size (words)"],
                rows,
                title=f"optimal instances at K={budget}",
            )
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json
    import os
    import tempfile

    from repro.obs import Recorder, RunManifest
    from repro.sweep import (
        SweepScheduler,
        build_report,
        load_spec,
        plan_sweep,
        render_markdown,
    )

    spec = load_spec(args.spec)
    overrides = {}
    if args.tolerance is not None:
        overrides["tolerance"] = args.tolerance
    if overrides:
        spec = spec.replace(**overrides)
    plan = plan_sweep(spec)

    if args.plan:
        print(plan.to_json())
        return 0

    store_root = None
    if not args.no_cache:
        store_root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    scratch = None
    try:
        if store_root is None and any(c.warmth == "warm" for c in plan.cells):
            # Warm cells without a shared store would silently measure
            # nothing; give the run a private store for its lifetime.
            scratch = tempfile.TemporaryDirectory(prefix="repro-sweep-")
            store_root = scratch.name
        scheduler = SweepScheduler(
            plan,
            kind=args.pool,
            workers=args.workers,
            timeout_s=args.timeout,
            retries=args.retries,
            store_root=store_root,
        )
        recorder = Recorder()
        with recorder.phase("sweep:run"):
            run = scheduler.run()
    finally:
        if scratch is not None:
            scratch.cleanup()
    report = build_report(plan, run, baseline_dir=args.baseline_dir)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(render_markdown(report))
    if args.manifest_out:
        manifest = RunManifest.from_recorder(
            recorder,
            engine="sweep",
            requested_engine=args.pool,
            options={
                "workers": scheduler.workers,
                "timeout_s": scheduler.timeout_s,
                "retries": scheduler.retries,
            },
            trace={
                "name": spec.name,
                "n": len(plan.cells),
                "n_unique": None,
                "address_bits": 0,
            },
        )
        manifest.sweep = dict(run.counters)
        with open(args.manifest_out, "w", encoding="utf-8") as handle:
            handle.write(manifest.to_json())
            handle.write("\n")

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        summary = report["summary"]
        print(
            f"sweep {spec.name}: {summary['total']} cells in "
            f"{report['wall_s']:.2f}s — {summary['ok']} ok, "
            f"{summary['quarantined']} quarantined, "
            f"{summary['skipped']} skipped "
            f"({summary['attempts']} attempts, {summary['retries']} retries, "
            f"{summary['timeouts']} timeouts)"
        )
        for cell in report["cells"]:
            if cell["status"] != "ok":
                detail = cell.get("error") or "dependency failed"
                print(f"  {cell['status']:11s} {cell['id']}: {detail}")
        for entry in report["regressions"]:
            print(
                f"  regression  {entry['cell']}: {entry['cell_wall_s']:.3f}s "
                f"vs {entry['baseline_wall_s']:.3f}s in {entry['baseline']} "
                f"({entry['ratio']:.2f}x)"
            )

    if summary_failed(report):
        return 1
    if args.fail_on_regression and report["regressions"]:
        return 1
    return 0


def summary_failed(report: dict) -> bool:
    """True when any sweep cell failed to produce a result."""
    summary = report["summary"]
    return bool(summary["quarantined"] or summary["skipped"])


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser.

    The epilog lists histogram engines straight from the registry
    (:func:`repro.core.engines.engine_names`), so ``repro --help`` can
    never drift from what the registry actually serves.
    """
    from repro.core import engines as _engine_registry
    from repro.trace import io as _trace_io

    engine_list = ", ".join(_engine_registry.engine_names())
    alias_list = ", ".join(
        f"{alias} -> {target}"
        for alias, target in sorted(_engine_registry.ALIASES.items())
    )
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analytical cache design space exploration (Ghosh & Givargis, DATE 2003)",
        epilog=(
            f"histogram engines: {engine_list} "
            f"(aliases: {alias_list}; see 'repro engines')"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("workloads", help="run & verify the benchmark kernels")
    p.add_argument("--scale", default="default", help="tiny/small/default/large")
    p.add_argument(
        "--extras",
        action="store_true",
        help="include the PowerStone kernels beyond the paper's 12",
    )
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("emit", help="write a workload trace to a file")
    p.add_argument("name", help="workload name (e.g. crc)")
    p.add_argument(
        "--kind", choices=["inst", "data", "unified"], default="data"
    )
    p.add_argument("--scale", default="default")
    p.add_argument("-o", "--output", required=True, help="output trace file")
    p.set_defaults(func=_cmd_emit)

    p = sub.add_parser("stats", help="trace statistics (paper Tables 5/6)")
    p.add_argument("traces", nargs="+", help="trace files")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("explore", help="analytical exploration of a trace")
    p.add_argument("trace", help="trace file")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--budget", type=int, help="absolute miss budget K")
    group.add_argument(
        "--percent", type=float, help="K as percent of max misses"
    )
    p.add_argument("--max-depth", type=int, default=0, help="largest depth to report")
    p.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    from repro.core import engines as _engines

    p.add_argument(
        "--engine",
        default=_engines.AUTO_ENGINE,
        choices=sorted(set(_engines.engine_names()) | set(_engines.ALIASES)),
        help="histogram engine (default: auto)",
    )
    p.add_argument(
        "--prelude",
        default="auto",
        choices=list(_engines.PRELUDE_MODES),
        help="prelude builder: fast NumPy/Fenwick kernels or the "
        "paper-faithful python builders (default: auto)",
    )
    p.add_argument(
        "--profile",
        metavar="MANIFEST",
        help="record per-phase telemetry and write a run manifest JSON here",
    )
    _add_scenario_flags(p)
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser(
        "profile", help="per-phase timing/memory telemetry for one run"
    )
    p.add_argument("trace", help="trace file")
    group = p.add_mutually_exclusive_group()
    group.add_argument("--budget", type=int, help="absolute miss budget K")
    group.add_argument(
        "--percent",
        type=float,
        default=10.0,
        help="K as percent of max misses (default: 10)",
    )
    p.add_argument(
        "--engine",
        default=_engines.AUTO_ENGINE,
        choices=sorted(set(_engines.engine_names()) | set(_engines.ALIASES)),
        help="histogram engine (default: auto)",
    )
    p.add_argument(
        "--processes", type=int, default=2, help="parallel-engine workers"
    )
    p.add_argument(
        "--prelude",
        default="auto",
        choices=list(_engines.PRELUDE_MODES),
        help="prelude builder: fast NumPy/Fenwick kernels or the "
        "paper-faithful python builders (default: auto)",
    )
    p.add_argument(
        "--no-memory",
        action="store_true",
        help="skip tracemalloc sampling (pure timing run)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the manifest JSON instead of the phase tree",
    )
    p.add_argument("-o", "--output", help="also write the manifest JSON here")
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("engines", help="list the histogram engines")
    p.set_defaults(func=_cmd_engines)

    p = sub.add_parser(
        "verify",
        help="differential fuzzing oracle: engine x prelude x store grid "
        "vs simulator + metamorphic invariants",
    )
    p.add_argument(
        "--budget",
        metavar="TIME",
        help="wall-clock cap, e.g. 60s or 2m (default: anchors only)",
    )
    p.add_argument(
        "--max-traces", type=int, help="stop after this many corpus traces"
    )
    p.add_argument("--seed", type=int, default=0, help="corpus seed")
    p.add_argument(
        "--engines",
        nargs="+",
        metavar="E",
        choices=sorted(
            set(_engines.engine_names(False)) | set(_engines.ALIASES)
        ),
        help="restrict the grid to these engines (default: all registered)",
    )
    p.add_argument(
        "--preludes",
        nargs="+",
        metavar="P",
        choices=list(_engines.PRELUDE_MODES),
        help="restrict the grid to these prelude modes (default: all)",
    )
    p.add_argument(
        "--no-warm",
        action="store_true",
        help="skip the warm-store half of the grid",
    )
    p.add_argument(
        "--laws",
        default="rotate",
        choices=["rotate", "all", "none"],
        help="metamorphic laws per trace: one (round-robin), all, or none",
    )
    p.add_argument(
        "--policies",
        nargs="+",
        metavar="POLICY",
        choices=list(_engines.policy_names()),
        help="also run the policy oracle for these replacement policies "
        "(policy engine vs simulator, every (D, A) cell)",
    )
    p.add_argument(
        "--processes", type=int, default=2, help="parallel-engine workers"
    )
    p.add_argument(
        "--corpus-dir",
        metavar="DIR",
        help="failure corpus (replayed first, crashes persisted here; "
        "default: $REPRO_VERIFY_CORPUS or .repro-verify-corpus)",
    )
    p.add_argument(
        "--no-corpus",
        action="store_true",
        help="neither replay nor persist an on-disk failure corpus",
    )
    p.add_argument(
        "--no-shrink",
        action="store_true",
        help="persist failing traces unshrunk",
    )
    p.add_argument(
        "--fail-fast", action="store_true", help="stop at the first failure"
    )
    p.add_argument(
        "--smoke",
        action="store_true",
        help="PR-lane preset: serial+vectorized, python+fast preludes, "
        "8 traces",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the JSON report to stdout"
    )
    p.add_argument("-o", "--output", help="also write the JSON report here")
    p.add_argument(
        "--profile",
        metavar="MANIFEST",
        help="write a run manifest with verify counters here",
    )
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("cache", help="manage the persistent artifact store")
    p.add_argument(
        "action",
        choices=["stats", "clear", "prune"],
        help="stats: summarize entries; clear: remove everything; "
        "prune: evict LRU entries down to --max-bytes",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="store directory (default: REPRO_CACHE_DIR or the user cache dir)",
    )
    p.add_argument(
        "--max-bytes",
        type=int,
        default=0,
        help="prune target size in bytes (prune only)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit stats as JSON (stats only)"
    )
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("simulate", help="simulate one cache configuration")
    p.add_argument("trace", help="trace file")
    p.add_argument("--depth", type=int, required=True)
    p.add_argument("--assoc", type=int, required=True)
    p.add_argument("--line", type=int, default=1, help="line size in words")
    p.add_argument(
        "--replacement",
        default="lru",
        choices=[kind.value for kind in ReplacementKind],
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("compare", help="analytical vs traditional DSE")
    p.add_argument("trace", help="trace file")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--budget", type=int)
    group.add_argument("--percent", type=float)
    p.add_argument("--max-depth", type=int, default=0)
    p.add_argument("--max-assoc", type=int, default=8)
    p.set_defaults(func=_cmd_compare)

    def add_budget_group(p):
        group = p.add_mutually_exclusive_group(required=True)
        group.add_argument("--budget", type=int, help="absolute miss budget K")
        group.add_argument(
            "--percent", type=float, help="K as percent of max misses"
        )

    p = sub.add_parser("linesize", help="line-size sweep (paper future work)")
    p.add_argument("trace", help="trace file")
    add_budget_group(p)
    p.add_argument(
        "--lines",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="line sizes in words (powers of two)",
    )
    p.set_defaults(func=_cmd_linesize)

    p = sub.add_parser("compact", help="Puzak trace stripping [14][15]")
    p.add_argument("trace", help="input trace file")
    p.add_argument("-o", "--output", required=True, help="output trace file")
    p.add_argument(
        "--filter-depth",
        type=int,
        default=2,
        help="direct-mapped filter depth (validity floor)",
    )
    p.set_defaults(func=_cmd_compact)

    p = sub.add_parser(
        "robustness", help="LRU instances under FIFO/PLRU/random"
    )
    p.add_argument("trace", help="trace file")
    add_budget_group(p)
    p.set_defaults(func=_cmd_robustness)

    p = sub.add_parser("cost", help="CACTI-style cost ranking of solutions")
    p.add_argument("trace", help="trace file")
    add_budget_group(p)
    p.set_defaults(func=_cmd_cost)

    p = sub.add_parser("phases", help="per-phase optima vs static")
    p.add_argument("trace", help="trace file")
    add_budget_group(p)
    p.add_argument("--phases", type=int, default=4, help="number of phases")
    p.set_defaults(func=_cmd_phases)

    p = sub.add_parser("hierarchy", help="explore L2 behind a fixed L1")
    p.add_argument("trace", help="trace file")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--budget", type=int, help="L2 miss budget K")
    group.add_argument(
        "--percent", type=float, help="K as percent of L2's own max misses"
    )
    p.add_argument("--l1-depth", type=int, default=64)
    p.add_argument("--l1-assoc", type=int, default=1)
    p.set_defaults(func=_cmd_hierarchy)

    p = sub.add_parser("conflicts", help="diagnose conflicting cache rows")
    p.add_argument("trace", help="trace file")
    p.add_argument("--depth", type=int, required=True)
    p.add_argument("--assoc", type=int, default=1)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=_cmd_conflicts)

    p = sub.add_parser("curves", help="miss curves as CSV")
    p.add_argument("trace", help="trace file")
    p.add_argument(
        "--depth",
        type=int,
        default=0,
        help="fixed depth: emit the associativity curve (default: capacity curve)",
    )
    p.add_argument(
        "--max-capacity", type=int, default=0, help="capacity-curve ceiling"
    )
    p.add_argument("-o", "--output", help="write CSV to a file")
    p.set_defaults(func=_cmd_curves)

    p = sub.add_parser("disasm", help="disassemble a workload kernel")
    p.add_argument("name", help="workload name (e.g. crc)")
    p.add_argument("--scale", default="default")
    p.set_defaults(func=_cmd_disasm)

    p = sub.add_parser("report", help="full markdown design report")
    p.add_argument("trace", help="trace file")
    p.add_argument("-o", "--output", help="write to a file instead of stdout")
    p.add_argument(
        "--percent",
        type=float,
        default=10.0,
        help="focus budget for sensitivity/cost sections",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("paper-example", help="the paper's running example")
    p.set_defaults(func=_cmd_paper_example)

    from repro.serve.pool import POOL_KINDS as _pool_kinds
    from repro.serve.server import DEFAULT_HOST as _serve_host
    from repro.serve.server import DEFAULT_PORT as _serve_port

    p = sub.add_parser(
        "serve",
        help="exploration daemon: HTTP/JSON with in-flight dedup, a "
        "worker pool, and /metrics",
    )
    p.add_argument("--host", default=_serve_host, help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=_serve_port,
        help=f"bind port (default: {_serve_port}; 0 picks a free port)",
    )
    p.add_argument(
        "--workers", type=int, default=2, help="concurrent pool executions"
    )
    p.add_argument(
        "--pool",
        default="process",
        choices=list(_pool_kinds),
        help="worker pool backend (default: process)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="S",
        help="cap on draining in-flight requests at shutdown (default: wait)",
    )
    p.add_argument(
        "--manifest-out",
        metavar="MANIFEST",
        help="write a run manifest with serve counters on shutdown",
    )
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", help="send an exploration request to a running daemon"
    )
    p.add_argument("traces", nargs="+", help="trace files")
    p.add_argument(
        "--mode",
        default="single",
        choices=["single", "sum", "each", "linesize"],
        help="exploration mode (default: single)",
    )
    p.add_argument(
        "--budget",
        type=int,
        action="append",
        help="absolute miss budget K (repeatable)",
    )
    p.add_argument(
        "--percent",
        type=float,
        action="append",
        help="K as percent of max misses (repeatable; single mode only)",
    )
    p.add_argument(
        "--engine",
        default=_engines.AUTO_ENGINE,
        choices=sorted(set(_engines.engine_names()) | set(_engines.ALIASES)),
        help="histogram engine (default: auto)",
    )
    p.add_argument(
        "--prelude",
        default="auto",
        choices=list(_engines.PRELUDE_MODES),
        help="prelude builder (default: auto)",
    )
    _add_scenario_flags(p)
    p.add_argument("--host", default=_serve_host, help="daemon address")
    p.add_argument(
        "--port", type=int, default=_serve_port, help="daemon port"
    )
    p.add_argument(
        "--timeout", type=float, default=600.0, help="socket timeout seconds"
    )
    p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "stream",
        help="chunked/out-of-core exploration of one trace file, with "
        "checkpoint warm-start when a cache directory is set",
    )
    p.add_argument("trace", help="trace file (read in chunks, never whole)")
    p.add_argument(
        "--budget",
        type=int,
        action="append",
        help="absolute miss budget K (repeatable; default: 0)",
    )
    p.add_argument(
        "--max-level",
        type=int,
        default=None,
        metavar="L",
        help="deepest conflict level to maintain (default: address width)",
    )
    p.add_argument(
        "--chunk-refs",
        type=int,
        default=_trace_io.DEFAULT_CHUNK_REFS,
        metavar="N",
        help="references per ingested chunk "
        f"(default: {_trace_io.DEFAULT_CHUNK_REFS})",
    )
    p.add_argument(
        "--address-bits",
        type=int,
        default=None,
        metavar="B",
        help="significant address width (required when the file format "
        "does not carry one, e.g. .din/.csv)",
    )
    p.add_argument(
        "--include-depth-one",
        action="store_true",
        help="admit degenerate depth-1 instances into the answer set",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the results as JSON"
    )
    _add_scenario_flags(p)
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_stream)

    p = sub.add_parser(
        "sweep",
        help="benchmark farm: run a declarative sweep spec through the "
        "cell DAG scheduler and diff against committed baselines",
    )
    p.add_argument("spec", help="sweep spec YAML (repro-sweep-spec/1)")
    p.add_argument(
        "--plan",
        action="store_true",
        help="print the expanded plan JSON (byte-stable) and exit",
    )
    p.add_argument(
        "--pool",
        default="process",
        choices=list(_pool_kinds),
        help="cell executor backend (default: process; only process "
        "enforces per-cell timeouts by killing the worker)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="concurrent cells (default: the spec's execution.workers)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-cell attempt deadline (default: the spec's)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=None,
        help="re-executions before quarantine (default: the spec's)",
    )
    p.add_argument(
        "--baseline-dir",
        default=".",
        metavar="DIR",
        help="directory holding the spec's BENCH_*.json baselines "
        "(default: current directory)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="override the spec's regression tolerance",
    )
    p.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit non-zero when any cell regresses past tolerance",
    )
    p.add_argument("-o", "--output", help="write the report JSON here")
    p.add_argument(
        "--markdown", metavar="FILE", help="write the markdown trend table here"
    )
    p.add_argument(
        "--manifest-out",
        metavar="MANIFEST",
        help="write an aggregate run manifest with sweep counters",
    )
    p.add_argument(
        "--json", action="store_true", help="print the report JSON to stdout"
    )
    _add_cache_flags(p)
    p.set_defaults(func=_cmd_sweep)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
