"""Single memory references.

A trace is fundamentally a sequence of word addresses; the access *kind*
(instruction fetch, data read, data write) matters only when splitting a
combined processor trace into the separate instruction and data traces that
the paper analyzes, and when replaying a trace through the cache simulator
with a write policy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AccessKind(enum.Enum):
    """Kind of a memory access.

    The integer values follow the classic dinero ``din`` convention:
    0 = data read, 1 = data write, 2 = instruction fetch.
    """

    READ = 0
    WRITE = 1
    FETCH = 2

    @classmethod
    def from_din(cls, label: int) -> "AccessKind":
        """Map a dinero access-type label to an :class:`AccessKind`."""
        try:
            return cls(label)
        except ValueError:
            raise ValueError(f"unknown dinero access label: {label!r}") from None

    @property
    def is_data(self) -> bool:
        """True for data reads and writes, False for instruction fetches."""
        return self is not AccessKind.FETCH

    @property
    def is_instruction(self) -> bool:
        """True for instruction fetches."""
        return self is AccessKind.FETCH


@dataclass(frozen=True)
class MemoryReference:
    """One memory access: a word address plus its access kind.

    Attributes:
        address: non-negative word address.
        kind: what kind of access this is (read/write/fetch).
    """

    address: int
    kind: AccessKind = AccessKind.READ

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")

    def __int__(self) -> int:
        return self.address
