"""Cache-filter trace compaction (the paper's related work [14][15]).

The paper's introduction cites trace-stripping techniques that shorten a
trace "to a provably identical (from a performance point of view) but
shorter trace" before simulation.  The classic construction (Puzak
1985, the basis of Wu & Wolf [14]) filters the trace through a
direct-mapped cache of ``D0`` sets and keeps only the references that
*miss* there; the filtered trace then exhibits the same non-compulsory
miss counts as the original on **every** set-associative LRU cache with
at least ``D0`` sets (and the same line size).

Why it works: a reference that hits in the depth-``D0`` direct-mapped
filter is, at that moment, the most recent reference mapping to its
filter set; in any cache with ``>= D0`` sets its own set partitions the
filter set, so it is also the most recent there and must hit without
changing the LRU state relative to the filtered replay.

This gives the analytical algorithm the same speedup lever the
simulation world uses — explore depths ``>= D0`` on the shorter trace —
and the guarantee is enforced by tests and the compaction benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.config import is_power_of_two
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class CompactionStats:
    """Bookkeeping for one compaction run.

    Attributes:
        filter_depth: sets in the direct-mapped filter (validity floor:
            results are exact for cache depths >= this).
        original_length: N of the input trace.
        compacted_length: N of the output trace.
    """

    filter_depth: int
    original_length: int
    compacted_length: int

    @property
    def reduction(self) -> float:
        """Fraction of references removed (0.0 for an empty input)."""
        if self.original_length == 0:
            return 0.0
        return 1.0 - self.compacted_length / self.original_length


@dataclass(frozen=True)
class CompactedTrace:
    """A filtered trace plus the metadata describing its validity range.

    The compacted trace reproduces the original's *non-compulsory* miss
    counts exactly on every LRU cache with depth >= ``stats.filter_depth``
    (one-word lines).  Compulsory (cold) misses are preserved too: every
    unique reference misses the filter at least once, so the unique
    reference sets coincide.
    """

    trace: Trace
    stats: CompactionStats


def compact_trace(trace: Trace, filter_depth: int) -> CompactedTrace:
    """Filter a trace through a depth-``filter_depth`` direct-mapped cache.

    Args:
        trace: word-addressed input trace.
        filter_depth: number of sets in the filter; power of two.  Depth
            1 keeps every non-consecutive-repeat reference; larger
            filters remove more but raise the validity floor.

    Returns:
        The kept references (filter misses), in order, with access kinds
        preserved when present.
    """
    if not is_power_of_two(filter_depth):
        raise ValueError(
            f"filter_depth must be a power of two, got {filter_depth}"
        )
    mask = filter_depth - 1
    resident: dict = {}
    kept_addresses: List[int] = []
    kept_kinds: Optional[List[AccessKind]] = [] if trace.has_kinds else None
    for i, addr in enumerate(trace):
        index = addr & mask
        if resident.get(index) == addr:
            continue  # filter hit: provably a hit in every deeper cache
        resident[index] = addr
        kept_addresses.append(addr)
        if kept_kinds is not None:
            kept_kinds.append(trace.kind(i))
    compacted = Trace(
        kept_addresses,
        address_bits=trace.address_bits,
        kinds=kept_kinds,
        name=f"{trace.name}/strip{filter_depth}" if trace.name else "",
    )
    return CompactedTrace(
        trace=compacted,
        stats=CompactionStats(
            filter_depth=filter_depth,
            original_length=len(trace),
            compacted_length=len(compacted),
        ),
    )
