"""Memory-reference trace substrate.

Everything in :mod:`repro` consumes traces of word addresses.  This package
provides the trace container (:class:`~repro.trace.trace.Trace`), the
stripping step of the paper's prelude phase
(:class:`~repro.trace.strip.StrippedTrace`), trace statistics matching the
paper's Tables 5 and 6 (:mod:`repro.trace.stats`), file I/O in several
common trace formats (:mod:`repro.trace.io`) and a collection of synthetic
trace generators used by tests and benchmarks
(:mod:`repro.trace.synthetic`).
"""

from repro.trace.reference import AccessKind, MemoryReference
from repro.trace.trace import Trace
from repro.trace.strip import (
    StrippedTrace,
    strip_trace,
    strip_trace_auto,
    strip_trace_numpy,
)
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.io import (
    read_trace,
    write_trace,
    read_text_trace,
    write_text_trace,
    read_dinero_trace,
    write_dinero_trace,
    read_csv_trace,
    write_csv_trace,
    read_binary_trace,
    write_binary_trace,
)
from repro.trace.compaction import (
    CompactedTrace,
    CompactionStats,
    compact_trace,
)
from repro.trace.transform import (
    filter_address_range,
    map_addresses,
    offset_addresses,
    remap_addresses,
    split_at_address,
)
from repro.trace.synthetic import (
    sequential_trace,
    strided_trace,
    random_trace,
    loop_nest_trace,
    zipf_trace,
    markov_trace,
    interleaved_trace,
    adversarial_lowbit_trace,
    skewed_trace,
)

__all__ = [
    "AccessKind",
    "MemoryReference",
    "Trace",
    "StrippedTrace",
    "strip_trace",
    "strip_trace_auto",
    "strip_trace_numpy",
    "TraceStatistics",
    "compute_statistics",
    "read_trace",
    "write_trace",
    "read_text_trace",
    "write_text_trace",
    "read_dinero_trace",
    "write_dinero_trace",
    "read_csv_trace",
    "write_csv_trace",
    "read_binary_trace",
    "write_binary_trace",
    "CompactedTrace",
    "CompactionStats",
    "compact_trace",
    "filter_address_range",
    "map_addresses",
    "offset_addresses",
    "remap_addresses",
    "split_at_address",
    "sequential_trace",
    "strided_trace",
    "random_trace",
    "loop_nest_trace",
    "zipf_trace",
    "markov_trace",
    "interleaved_trace",
    "adversarial_lowbit_trace",
    "skewed_trace",
]
