"""The :class:`Trace` container.

A :class:`Trace` is an immutable-ish sequence of word addresses together
with the number of significant address bits.  The address width determines
how many index bits the analytical algorithm may consume, i.e. the maximum
cache depth that can be explored (``2**address_bits`` rows).

Addresses are *word* addresses: the paper fixes the cache line size at one
word and varies only depth and associativity, so the low-order address bits
are the cache index bits, exactly as in the paper's running example
(Table 1 uses raw 4-bit addresses).
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.trace.reference import AccessKind, MemoryReference


def _required_bits(value: int) -> int:
    """Number of bits needed to represent ``value`` (at least 1)."""
    return max(1, int(value).bit_length())


class Trace:
    """A sequence of word-addressed memory references.

    Args:
        addresses: iterable of non-negative word addresses, in program order.
        address_bits: significant address width in bits.  Defaults to the
            width of the largest address present (minimum 1).
        kinds: optional per-reference access kinds; must match ``addresses``
            in length when given.  When omitted every access is a READ.
        name: optional human-readable label (e.g. ``"crc.data"``).

    Raises:
        ValueError: on negative addresses, on an address that does not fit
            in ``address_bits``, or on a kinds/addresses length mismatch.
    """

    __slots__ = ("_addresses", "_kinds", "_address_bits", "name")

    def __init__(
        self,
        addresses: Iterable[int],
        address_bits: Optional[int] = None,
        kinds: Optional[Sequence[AccessKind]] = None,
        name: str = "",
    ) -> None:
        addrs = array("q", (int(a) for a in addresses))
        if any(a < 0 for a in addrs):
            raise ValueError("trace addresses must be non-negative")
        max_addr = max(addrs) if len(addrs) else 0
        if address_bits is None:
            address_bits = _required_bits(max_addr)
        if address_bits < 1:
            raise ValueError(f"address_bits must be >= 1, got {address_bits}")
        if max_addr >= (1 << address_bits):
            raise ValueError(
                f"address {max_addr:#x} does not fit in {address_bits} bits"
            )
        if kinds is not None:
            kinds = list(kinds)
            if len(kinds) != len(addrs):
                raise ValueError(
                    f"kinds length {len(kinds)} != addresses length {len(addrs)}"
                )
        self._addresses = addrs
        self._kinds = kinds
        self._address_bits = address_bits
        self.name = name

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_references(
        cls,
        references: Iterable[MemoryReference],
        address_bits: Optional[int] = None,
        name: str = "",
    ) -> "Trace":
        """Build a trace from :class:`MemoryReference` objects."""
        refs = list(references)
        return cls(
            (r.address for r in refs),
            address_bits=address_bits,
            kinds=[r.kind for r in refs],
            name=name,
        )

    @classmethod
    def from_bit_strings(cls, patterns: Iterable[str], name: str = "") -> "Trace":
        """Build a trace from binary strings such as ``"1011"``.

        All patterns must have the same width, which becomes the trace's
        ``address_bits``.  This mirrors how the paper presents its running
        example (Table 1).
        """
        pats = [p.strip() for p in patterns]
        if not pats:
            raise ValueError("at least one bit pattern is required")
        width = len(pats[0])
        if width == 0:
            raise ValueError("bit patterns must be non-empty")
        for p in pats:
            if len(p) != width:
                raise ValueError(f"inconsistent pattern width: {p!r} vs {width} bits")
            if set(p) - {"0", "1"}:
                raise ValueError(f"invalid bit pattern: {p!r}")
        return cls((int(p, 2) for p in pats), address_bits=width, name=name)

    # -- core protocol ---------------------------------------------------------

    @property
    def addresses(self) -> Sequence[int]:
        """The raw address sequence (a compact ``array``)."""
        return self._addresses

    @property
    def address_bits(self) -> int:
        """Number of significant address bits."""
        return self._address_bits

    @property
    def has_kinds(self) -> bool:
        """True when per-reference access kinds are attached."""
        return self._kinds is not None

    def kind(self, index: int) -> AccessKind:
        """Access kind of the reference at ``index`` (READ when untyped)."""
        if self._kinds is None:
            return AccessKind.READ
        return self._kinds[index]

    def __len__(self) -> int:
        return len(self._addresses)

    def __iter__(self) -> Iterator[int]:
        return iter(self._addresses)

    def __getitem__(self, index: Union[int, slice]) -> Union[int, "Trace"]:
        if isinstance(index, slice):
            kinds = self._kinds[index] if self._kinds is not None else None
            return Trace(
                self._addresses[index],
                address_bits=self._address_bits,
                kinds=kinds,
                name=self.name,
            )
        return self._addresses[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self._addresses == other._addresses
            and self._address_bits == other._address_bits
        )

    def __hash__(self) -> int:
        return hash((bytes(self._addresses.tobytes()), self._address_bits))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Trace{label} n={len(self)} bits={self._address_bits} "
            f"unique={self.unique_count()}>"
        )

    # -- derived views ----------------------------------------------------------

    def references(self) -> Iterator[MemoryReference]:
        """Iterate the trace as :class:`MemoryReference` objects."""
        for i, addr in enumerate(self._addresses):
            yield MemoryReference(addr, self.kind(i))

    def unique_addresses(self) -> List[int]:
        """Unique addresses in order of first occurrence (the stripped trace)."""
        seen = set()
        out: List[int] = []
        for addr in self._addresses:
            if addr not in seen:
                seen.add(addr)
                out.append(addr)
        return out

    def unique_count(self) -> int:
        """Number of distinct addresses (the paper's N')."""
        return len(set(self._addresses))

    def filter_kind(self, *kinds: AccessKind, name: str = "") -> "Trace":
        """Sub-trace containing only the given access kinds.

        Used to split a combined processor trace into the instruction trace
        (``FETCH``) and the data trace (``READ``, ``WRITE``).
        """
        if self._kinds is None:
            raise ValueError("trace has no access kinds to filter on")
        wanted = set(kinds)
        idx = [i for i, k in enumerate(self._kinds) if k in wanted]
        return Trace(
            (self._addresses[i] for i in idx),
            address_bits=self._address_bits,
            kinds=[self._kinds[i] for i in idx],
            name=name or self.name,
        )

    def concat(self, other: "Trace", name: str = "") -> "Trace":
        """Concatenate two traces; widths widen to fit both."""
        bits = max(self._address_bits, other._address_bits)
        kinds: Optional[List[AccessKind]] = None
        if self._kinds is not None or other._kinds is not None:
            kinds = [self.kind(i) for i in range(len(self))]
            kinds.extend(other.kind(i) for i in range(len(other)))
        merged = array("q", self._addresses)
        merged.extend(other._addresses)
        return Trace(merged, address_bits=bits, kinds=kinds, name=name)

    def rebased(self, address_bits: int) -> "Trace":
        """Same addresses with a different declared width."""
        return Trace(
            self._addresses,
            address_bits=address_bits,
            kinds=self._kinds,
            name=self.name,
        )

    def to_line_trace(self, line_words: int) -> "Trace":
        """The trace as seen at line granularity: ``address >> log2(L)``.

        A set-associative LRU cache with ``line_words``-word lines
        behaves on this trace (with one-word lines) exactly as it does
        on the original trace — the transformation that extends the
        analytical algorithm to the line-size axis.
        """
        if line_words < 1 or (line_words & (line_words - 1)) != 0:
            raise ValueError(
                f"line_words must be a power of two, got {line_words}"
            )
        shift = line_words.bit_length() - 1
        bits = max(1, self._address_bits - shift)
        return Trace(
            (addr >> shift for addr in self._addresses),
            address_bits=bits,
            kinds=self._kinds,
            name=f"{self.name}/L{line_words}" if self.name else "",
        )
