"""Trace statistics matching the paper's Tables 5 and 6.

For each trace the paper reports its size ``N``, the number of unique
references ``N'`` and the *maximum number of misses*, "obtained by
simulating the traces on a cache simulator configured to be direct mapped
with the cache depth set to one".  A depth-1 direct-mapped cache holds a
single word, so an access hits iff it repeats the immediately preceding
address.  Because the paper's miss budget ``K`` always excludes cold
(compulsory) misses, the maximum is reported net of the ``N'`` cold misses.

The closed form used here is cross-validated against the full cache
simulator in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics for one trace (one row of paper Table 5/6).

    Attributes:
        name: trace label.
        n: total number of references (paper's N).
        n_unique: number of unique references (paper's N').
        max_misses: non-cold misses of a depth-1 direct-mapped cache —
            the 100% point against which the paper's K percentages are set.
        address_bits: significant address width.
    """

    name: str
    n: int
    n_unique: int
    max_misses: int
    address_bits: int

    @property
    def work_product(self) -> int:
        """The paper's Figure-4 x-axis quantity, ``N * N'``."""
        return self.n * self.n_unique

    def budget(self, percent: float) -> int:
        """Miss budget K at ``percent`` of the maximum misses.

        The paper evaluates K at 5, 10, 15 and 20 percent of max misses.
        """
        if percent < 0:
            raise ValueError(f"percent must be non-negative, got {percent}")
        return int(self.max_misses * percent / 100.0)


def max_misses_depth_one(trace: Trace) -> int:
    """Non-cold misses of a single-word direct-mapped cache.

    Every access misses unless it repeats the previous address; of those
    misses, exactly one per unique reference is cold.
    """
    misses = 0
    previous = None
    for addr in trace:
        if addr != previous:
            misses += 1
            previous = addr
    return misses - trace.unique_count()


def compute_statistics(trace: Trace, name: str = "") -> TraceStatistics:
    """Compute the Table 5/6 statistics row for a trace."""
    return TraceStatistics(
        name=name or trace.name,
        n=len(trace),
        n_unique=trace.unique_count(),
        max_misses=max_misses_depth_one(trace),
        address_bits=trace.address_bits,
    )
