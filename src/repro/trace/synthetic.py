"""Synthetic trace generators.

These produce traces with controlled locality structure.  They are used by
the unit tests (small, fully predictable patterns), by the property-based
tests (random but seeded), and by ablation benchmarks where trace size must
be swept independently of the workload substrate.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.trace.trace import Trace


def sequential_trace(
    length: int, start: int = 0, address_bits: Optional[int] = None
) -> Trace:
    """Addresses ``start, start+1, ...`` — pure streaming, no reuse."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return Trace(
        range(start, start + length), address_bits=address_bits, name="sequential"
    )


def strided_trace(
    length: int,
    stride: int,
    start: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """Addresses ``start, start+stride, ...`` — models column-major sweeps."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    return Trace(
        (start + i * stride for i in range(length)),
        address_bits=address_bits,
        name=f"strided-{stride}",
    )


def loop_nest_trace(
    footprint: int,
    iterations: int,
    address_bits: Optional[int] = None,
    start: int = 0,
) -> Trace:
    """Repeat a sequential sweep of ``footprint`` addresses ``iterations`` times.

    This is the canonical embedded-kernel pattern: a small working set
    revisited many times, where every revisit hits once the cache covers
    the footprint.
    """
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    body = list(range(start, start + footprint))
    return Trace(
        body * iterations,
        address_bits=address_bits,
        name=f"loop-{footprint}x{iterations}",
    )


def random_trace(
    length: int,
    footprint: int,
    seed: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """Uniformly random addresses drawn from ``[0, footprint)``."""
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    rng = random.Random(seed)
    return Trace(
        (rng.randrange(footprint) for _ in range(length)),
        address_bits=address_bits,
        name=f"random-{footprint}",
    )


def zipf_trace(
    length: int,
    footprint: int,
    exponent: float = 1.0,
    seed: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """Zipf-distributed addresses — a few hot words, a long cold tail.

    Models table-driven codecs where some table entries dominate.
    """
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    rng = random.Random(seed)
    weights = [1.0 / (rank**exponent) for rank in range(1, footprint + 1)]
    addresses = rng.choices(range(footprint), weights=weights, k=length)
    return Trace(addresses, address_bits=address_bits, name=f"zipf-{exponent}")


def markov_trace(
    length: int,
    footprint: int,
    locality: float = 0.8,
    seed: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """First-order Markov walk: with probability ``locality`` step to a
    neighbouring address, otherwise jump uniformly.

    Produces tunable spatial locality, useful for sweeping the N'/N ratio.
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    rng = random.Random(seed)
    addresses: List[int] = []
    current = rng.randrange(footprint)
    for _ in range(length):
        addresses.append(current)
        if rng.random() < locality:
            current = (current + rng.choice((-1, 1))) % footprint
        else:
            current = rng.randrange(footprint)
    return Trace(addresses, address_bits=address_bits, name=f"markov-{locality}")


def interleaved_trace(
    traces: Sequence[Trace],
    address_bits: Optional[int] = None,
    name: str = "interleaved",
) -> Trace:
    """Round-robin interleave several traces (models multi-stream access).

    Streams that run out simply drop out of the rotation.
    """
    if not traces:
        raise ValueError("at least one trace is required")
    iters = [iter(t) for t in traces]
    out: List[int] = []
    while iters:
        alive = []
        for it in iters:
            try:
                out.append(next(it))
            except StopIteration:
                continue
            alive.append(it)
        iters = alive
    bits = address_bits or max(t.address_bits for t in traces)
    return Trace(out, address_bits=bits, name=name)
