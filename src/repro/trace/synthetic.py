"""Synthetic trace generators.

These produce traces with controlled locality structure.  They are used by
the unit tests (small, fully predictable patterns), by the property-based
tests (random but seeded), and by ablation benchmarks where trace size must
be swept independently of the workload substrate.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.trace.trace import Trace


def sequential_trace(
    length: int, start: int = 0, address_bits: Optional[int] = None
) -> Trace:
    """Addresses ``start, start+1, ...`` — pure streaming, no reuse."""
    if length < 0:
        raise ValueError("length must be non-negative")
    return Trace(
        range(start, start + length), address_bits=address_bits, name="sequential"
    )


def strided_trace(
    length: int,
    stride: int,
    start: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """Addresses ``start, start+stride, ...`` — models column-major sweeps."""
    if stride <= 0:
        raise ValueError("stride must be positive")
    return Trace(
        (start + i * stride for i in range(length)),
        address_bits=address_bits,
        name=f"strided-{stride}",
    )


def loop_nest_trace(
    footprint: int,
    iterations: int,
    address_bits: Optional[int] = None,
    start: int = 0,
) -> Trace:
    """Repeat a sequential sweep of ``footprint`` addresses ``iterations`` times.

    This is the canonical embedded-kernel pattern: a small working set
    revisited many times, where every revisit hits once the cache covers
    the footprint.
    """
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    body = list(range(start, start + footprint))
    return Trace(
        body * iterations,
        address_bits=address_bits,
        name=f"loop-{footprint}x{iterations}",
    )


def random_trace(
    length: int,
    footprint: int,
    seed: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """Uniformly random addresses drawn from ``[0, footprint)``."""
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    rng = random.Random(seed)
    return Trace(
        (rng.randrange(footprint) for _ in range(length)),
        address_bits=address_bits,
        name=f"random-{footprint}",
    )


def zipf_trace(
    length: int,
    footprint: int,
    exponent: float = 1.0,
    seed: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """Zipf-distributed addresses — a few hot words, a long cold tail.

    Models table-driven codecs where some table entries dominate.
    """
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    rng = random.Random(seed)
    weights = [1.0 / (rank**exponent) for rank in range(1, footprint + 1)]
    addresses = rng.choices(range(footprint), weights=weights, k=length)
    return Trace(addresses, address_bits=address_bits, name=f"zipf-{exponent}")


def markov_trace(
    length: int,
    footprint: int,
    locality: float = 0.8,
    seed: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """First-order Markov walk: with probability ``locality`` step to a
    neighbouring address, otherwise jump uniformly.

    Produces tunable spatial locality, useful for sweeping the N'/N ratio.
    """
    if not 0.0 <= locality <= 1.0:
        raise ValueError("locality must be in [0, 1]")
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    rng = random.Random(seed)
    addresses: List[int] = []
    current = rng.randrange(footprint)
    for _ in range(length):
        addresses.append(current)
        if rng.random() < locality:
            current = (current + rng.choice((-1, 1))) % footprint
        else:
            current = rng.randrange(footprint)
    return Trace(addresses, address_bits=address_bits, name=f"markov-{locality}")


def adversarial_lowbit_trace(
    length: int,
    low_bits: int,
    footprint: int = 64,
    ratio: float = 0.5,
    seed: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """A base stream salted with addresses that share identical low bits.

    A ``ratio`` fraction of references are multiples of ``2**low_bits``:
    their set-index bits are all zero for every cache depth up to
    ``2**low_bits``, so they pile into one set no matter how deep the
    cache grows — the worst case for index-bit hashing, and the shape
    that separates true per-set conflict tracking from approximations
    keyed on address popularity alone.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if low_bits < 1:
        raise ValueError("low_bits must be >= 1")
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("ratio must be in [0, 1]")
    rng = random.Random(seed)
    addresses: List[int] = []
    for _ in range(length):
        if rng.random() < ratio:
            addresses.append(rng.randrange(1, footprint + 1) << low_bits)
        else:
            addresses.append(rng.randrange(footprint))
    return Trace(
        addresses, address_bits=address_bits, name=f"advlow-{low_bits}"
    )


def skewed_trace(
    length: int,
    footprint: int,
    hot_fraction: float = 0.1,
    skew: float = 0.9,
    seed: int = 0,
    address_bits: Optional[int] = None,
) -> Trace:
    """Two-tier popularity skew: a small hot set absorbs most references.

    With probability ``skew`` a reference lands uniformly in the hot
    ``hot_fraction`` of the footprint; otherwise in the cold remainder.
    Unlike :func:`zipf_trace`'s smooth rank decay, the hard hot/cold
    boundary makes the working-set knee land at a predictable size —
    useful for skew-parameterized sweeps.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if footprint <= 0:
        raise ValueError("footprint must be positive")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0.0 <= skew <= 1.0:
        raise ValueError("skew must be in [0, 1]")
    hot = max(1, min(footprint, round(footprint * hot_fraction)))
    rng = random.Random(seed)
    addresses: List[int] = []
    for _ in range(length):
        if hot >= footprint or rng.random() < skew:
            addresses.append(rng.randrange(hot))
        else:
            addresses.append(rng.randrange(hot, footprint))
    return Trace(addresses, address_bits=address_bits, name=f"skew-{skew}")


def interleaved_trace(
    traces: Sequence[Trace],
    address_bits: Optional[int] = None,
    name: str = "interleaved",
) -> Trace:
    """Round-robin interleave several traces (models multi-stream access).

    Streams that run out simply drop out of the rotation.
    """
    if not traces:
        raise ValueError("at least one trace is required")
    iters = [iter(t) for t in traces]
    out: List[int] = []
    while iters:
        alive = []
        for it in iters:
            try:
                out.append(next(it))
            except StopIteration:
                continue
            alive.append(it)
        iters = alive
    bits = address_bits or max(t.address_bits for t in traces)
    return Trace(out, address_bits=bits, name=name)
