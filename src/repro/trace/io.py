"""Trace file input/output.

Three on-disk formats are supported, each optionally gzip-compressed
(selected by a ``.gz`` suffix):

* **text** (``.trace`` / ``.txt``) — one hexadecimal word address per line,
  ``#`` comments allowed.
* **dinero** (``.din``) — the classic dinero III input format: one access
  per line as ``<label> <hex-address>`` where label 0 = data read,
  1 = data write, 2 = instruction fetch.
* **csv** (``.csv``) — ``kind,address`` rows with a header, kind being one
  of ``read``/``write``/``fetch``.
* **binary** (``.rbt``, "repro binary trace") — a fixed-width format
  for long traces: magic ``RBT1``, address width, count, kind flag,
  then little-endian 8-byte addresses and (optionally) one kind byte
  per reference.  Loads in one ``array.frombytes`` call — far faster
  than line parsing — and compresses well under the ``.gz`` option.

:func:`read_trace` and :func:`write_trace` dispatch on the file suffix.
"""

from __future__ import annotations

import csv
import gzip
import io
import os
import struct
from array import array
from typing import Callable, Dict, Iterator, List, Optional, TextIO, Union

from repro.trace.reference import AccessKind
from repro.trace.trace import Trace

PathLike = Union[str, "os.PathLike[str]"]

_KIND_NAMES = {
    AccessKind.READ: "read",
    AccessKind.WRITE: "write",
    AccessKind.FETCH: "fetch",
}
_KIND_BY_NAME = {name: kind for kind, name in _KIND_NAMES.items()}


def _open_text(path: PathLike, mode: str) -> TextIO:
    """Open a (possibly gzip-compressed) text file."""
    if str(path).endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _strip_gz(path: PathLike) -> str:
    name = str(path)
    return name[:-3] if name.endswith(".gz") else name


# -- text format ---------------------------------------------------------------


def write_text_trace(trace: Trace, path: PathLike) -> None:
    """Write one hexadecimal address per line."""
    with _open_text(path, "w") as fh:
        fh.write(f"# address_bits={trace.address_bits}\n")
        for addr in trace:
            fh.write(f"{addr:x}\n")


def read_text_trace(path: PathLike, address_bits: Optional[int] = None) -> Trace:
    """Read a text trace; honours an ``# address_bits=`` header comment."""
    addresses: List[int] = []
    header_bits: Optional[int] = None
    with _open_text(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line.lstrip("#").strip()
                if body.startswith("address_bits="):
                    header_bits = int(body.split("=", 1)[1])
                continue
            addresses.append(int(line, 16))
    bits = address_bits if address_bits is not None else header_bits
    return Trace(addresses, address_bits=bits, name=os.path.basename(_strip_gz(path)))


# -- dinero din format -----------------------------------------------------------


def write_dinero_trace(trace: Trace, path: PathLike) -> None:
    """Write the dinero III ``<label> <hex-address>`` format."""
    with _open_text(path, "w") as fh:
        for i, addr in enumerate(trace):
            fh.write(f"{trace.kind(i).value} {addr:x}\n")


def read_dinero_trace(path: PathLike, address_bits: Optional[int] = None) -> Trace:
    """Read a dinero III trace, preserving access kinds."""
    addresses: List[int] = []
    kinds: List[AccessKind] = []
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: malformed dinero line: {line!r}")
            kinds.append(AccessKind.from_din(int(parts[0])))
            addresses.append(int(parts[1], 16))
    return Trace(
        addresses,
        address_bits=address_bits,
        kinds=kinds,
        name=os.path.basename(_strip_gz(path)),
    )


# -- csv format ------------------------------------------------------------------


def write_csv_trace(trace: Trace, path: PathLike) -> None:
    """Write ``kind,address`` rows with a header."""
    with _open_text(path, "w") as fh:
        writer = csv.writer(fh)
        writer.writerow(["kind", "address"])
        for i, addr in enumerate(trace):
            writer.writerow([_KIND_NAMES[trace.kind(i)], f"{addr:#x}"])


def read_csv_trace(path: PathLike, address_bits: Optional[int] = None) -> Trace:
    """Read a ``kind,address`` CSV trace."""
    addresses: List[int] = []
    kinds: List[AccessKind] = []
    with _open_text(path, "r") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            kind_name = row["kind"].strip().lower()
            if kind_name not in _KIND_BY_NAME:
                raise ValueError(f"unknown access kind in CSV: {row['kind']!r}")
            kinds.append(_KIND_BY_NAME[kind_name])
            addresses.append(int(row["address"], 0))
    return Trace(
        addresses,
        address_bits=address_bits,
        kinds=kinds,
        name=os.path.basename(_strip_gz(path)),
    )


# -- binary format -----------------------------------------------------------------

_BINARY_MAGIC = b"RBT1"


def _open_binary(path: PathLike, mode: str):
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "b")
    return open(path, mode + "b")


def write_binary_trace(trace: Trace, path: PathLike) -> None:
    """Write the compact ``.rbt`` binary format."""
    from array import array as _array
    import struct

    with _open_binary(path, "w") as fh:
        fh.write(_BINARY_MAGIC)
        fh.write(
            struct.pack(
                "<BQB",
                trace.address_bits,
                len(trace),
                1 if trace.has_kinds else 0,
            )
        )
        addresses = _array("q", trace.addresses)
        if addresses.itemsize != 8:  # pragma: no cover - platform guard
            raise RuntimeError("platform lacks 8-byte array('q') items")
        fh.write(addresses.tobytes())
        if trace.has_kinds:
            fh.write(bytes(trace.kind(i).value for i in range(len(trace))))


def read_binary_trace(path: PathLike, address_bits: Optional[int] = None) -> Trace:
    """Read the compact ``.rbt`` binary format."""
    from array import array as _array
    import struct

    with _open_binary(path, "r") as fh:
        magic = fh.read(4)
        if magic != _BINARY_MAGIC:
            raise ValueError(f"{path}: not a repro binary trace (bad magic)")
        bits, count, has_kinds = struct.unpack("<BQB", fh.read(10))
        addresses = _array("q")
        addresses.frombytes(fh.read(8 * count))
        if len(addresses) != count:
            raise ValueError(f"{path}: truncated address block")
        kinds = None
        if has_kinds:
            raw = fh.read(count)
            if len(raw) != count:
                raise ValueError(f"{path}: truncated kind block")
            kinds = [AccessKind(b) for b in raw]
    return Trace(
        addresses,
        address_bits=address_bits if address_bits is not None else bits,
        kinds=kinds,
        name=os.path.basename(_strip_gz(path)),
    )


# -- chunked / out-of-core reading -------------------------------------------------

#: Default references per chunk for :func:`iter_trace_chunks`.
DEFAULT_CHUNK_REFS = 65536


def _iter_text_addresses(path: PathLike) -> Iterator[int]:
    with _open_text(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            yield int(line, 16)


def _iter_dinero_addresses(path: PathLike) -> Iterator[int]:
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"{path}:{lineno}: malformed dinero line: {line!r}")
            yield int(parts[1], 16)


def _iter_csv_addresses(path: PathLike) -> Iterator[int]:
    with _open_text(path, "r") as fh:
        reader = csv.DictReader(fh)
        for row in reader:
            kind_name = row["kind"].strip().lower()
            if kind_name not in _KIND_BY_NAME:
                raise ValueError(f"unknown access kind in CSV: {row['kind']!r}")
            yield int(row["address"], 0)


_CHUNK_ITERATORS: Dict[str, Callable[[PathLike], Iterator[int]]] = {
    ".trace": _iter_text_addresses,
    ".txt": _iter_text_addresses,
    ".din": _iter_dinero_addresses,
    ".csv": _iter_csv_addresses,
}


def _iter_binary_chunks(path: PathLike, chunk_refs: int) -> Iterator[array]:
    """Blocked reads of the ``.rbt`` address block — no line parsing."""
    with _open_binary(path, "r") as fh:
        magic = fh.read(4)
        if magic != _BINARY_MAGIC:
            raise ValueError(f"{path}: not a repro binary trace (bad magic)")
        _bits, count, _has_kinds = struct.unpack("<BQB", fh.read(10))
        remaining = count
        while remaining:
            take = min(remaining, chunk_refs)
            raw = fh.read(8 * take)
            chunk = array("q")
            chunk.frombytes(raw)
            if len(chunk) != take:
                raise ValueError(f"{path}: truncated address block")
            remaining -= take
            yield chunk


def iter_trace_chunks(
    path: PathLike, chunk_refs: int = DEFAULT_CHUNK_REFS
) -> Iterator[array]:
    """Stream a trace file as bounded ``array('q')`` address chunks.

    The out-of-core companion to :func:`read_trace`: dispatches on the
    same suffixes (``.gz`` included) but never materializes the whole
    trace — at most ``chunk_refs`` addresses are live at once, so
    10⁶–10⁸-reference files feed a
    :class:`repro.stream.TraceSession` in O(chunk) memory.  Access
    kinds are not surfaced; the analytical pipeline only consumes
    addresses.
    """
    if chunk_refs < 1:
        raise ValueError(f"chunk_refs must be >= 1, got {chunk_refs}")
    suffix = _suffix(path)
    if suffix == ".rbt":
        yield from _iter_binary_chunks(path, chunk_refs)
        return
    iterator = _CHUNK_ITERATORS.get(suffix)
    if iterator is None:
        raise ValueError(
            f"unknown trace format {suffix!r}; expected one of "
            f"{sorted((*_CHUNK_ITERATORS, '.rbt'))}"
        )
    chunk = array("q")
    for address in iterator(path):
        chunk.append(address)
        if len(chunk) >= chunk_refs:
            yield chunk
            chunk = array("q")
    if len(chunk):
        yield chunk


def probe_address_bits(path: PathLike) -> Optional[int]:
    """The address width a trace file declares, without reading its body.

    ``.rbt`` carries the width in its header and text traces may carry
    an ``# address_bits=`` comment; dinero and CSV files declare
    nothing, so the caller must supply a width (``None`` is returned).
    """
    suffix = _suffix(path)
    if suffix == ".rbt":
        with _open_binary(path, "r") as fh:
            magic = fh.read(4)
            if magic != _BINARY_MAGIC:
                raise ValueError(f"{path}: not a repro binary trace (bad magic)")
            bits, _count, _has_kinds = struct.unpack("<BQB", fh.read(10))
            return bits
    if suffix in (".trace", ".txt"):
        with _open_text(path, "r") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                if not line.startswith("#"):
                    break
                body = line.lstrip("#").strip()
                if body.startswith("address_bits="):
                    return int(body.split("=", 1)[1])
        return None
    if suffix in (".din", ".csv"):
        return None
    raise ValueError(
        f"unknown trace format {suffix!r}; expected one of {sorted(_READERS)}"
    )


# -- dispatch ---------------------------------------------------------------------

_READERS: Dict[str, Callable[..., Trace]] = {
    ".trace": read_text_trace,
    ".txt": read_text_trace,
    ".din": read_dinero_trace,
    ".csv": read_csv_trace,
    ".rbt": read_binary_trace,
}
_WRITERS: Dict[str, Callable[[Trace, PathLike], None]] = {
    ".trace": write_text_trace,
    ".txt": write_text_trace,
    ".din": write_dinero_trace,
    ".csv": write_csv_trace,
    ".rbt": write_binary_trace,
}


def _suffix(path: PathLike) -> str:
    return os.path.splitext(_strip_gz(path))[1].lower()


def read_trace(path: PathLike, address_bits: Optional[int] = None) -> Trace:
    """Read a trace, dispatching on the file suffix."""
    suffix = _suffix(path)
    reader = _READERS.get(suffix)
    if reader is None:
        raise ValueError(
            f"unknown trace format {suffix!r}; expected one of {sorted(_READERS)}"
        )
    return reader(path, address_bits=address_bits)


def write_trace(trace: Trace, path: PathLike) -> None:
    """Write a trace, dispatching on the file suffix."""
    suffix = _suffix(path)
    writer = _WRITERS.get(suffix)
    if writer is None:
        raise ValueError(
            f"unknown trace format {suffix!r}; expected one of {sorted(_WRITERS)}"
        )
    writer(trace, path)
