"""Trace stripping — the first step of the paper's prelude phase.

Stripping reduces a trace of ``N`` references to its ``N'`` unique
references and assigns each a numeric identifier (paper Table 2).  The
paper notes (section 2.4) that stripping by sorting costs ``N log N`` but a
hash table makes it linear; Python dictionaries give us the hash-table
variant directly.  A sort-based variant is kept in
:func:`strip_trace_sorted` for the ablation benchmark.

Identifiers here are 0-based (bit positions in the set bitmasks used by the
core algorithm); the paper's tables use 1-based ids, which only changes the
labels, not any set cardinality or intersection.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.trace.trace import Trace


@dataclass
class StrippedTrace:
    """Result of stripping a trace.

    Attributes:
        trace: the original trace (kept for the MRCT builder).
        unique_addresses: the distinct addresses in first-occurrence order;
            index in this list is the reference's identifier.
        id_of: mapping from address to identifier.
        id_sequence: the original trace rewritten as identifiers.
        address_bits: significant address width (copied from the trace).
    """

    trace: Trace
    unique_addresses: List[int]
    id_of: Dict[int, int]
    id_sequence: Sequence[int]
    address_bits: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.address_bits:
            self.address_bits = self.trace.address_bits

    @property
    def n(self) -> int:
        """Original trace length (the paper's N)."""
        return len(self.trace)

    @property
    def n_unique(self) -> int:
        """Number of unique references (the paper's N')."""
        return len(self.unique_addresses)

    def address(self, identifier: int) -> int:
        """Address of the unique reference with the given identifier."""
        return self.unique_addresses[identifier]

    def occurrences(self, identifier: int) -> List[int]:
        """Positions in the original trace where this reference occurs."""
        return [i for i, ident in enumerate(self.id_sequence) if ident == identifier]

    def __repr__(self) -> str:
        return f"<StrippedTrace N={self.n} N'={self.n_unique}>"


def strip_trace(trace: Trace) -> StrippedTrace:
    """Strip a trace using a hash table (linear time).

    This is the implementation the paper recommends in section 2.4.
    """
    id_of: Dict[int, int] = {}
    unique: List[int] = []
    ids = array("l", bytes(0))
    append_id = ids.append
    for addr in trace:
        ident = id_of.get(addr)
        if ident is None:
            ident = len(unique)
            id_of[addr] = ident
            unique.append(addr)
        append_id(ident)
    return StrippedTrace(
        trace=trace,
        unique_addresses=unique,
        id_of=id_of,
        id_sequence=ids,
    )


def strip_trace_numpy(trace: Trace) -> StrippedTrace:
    """Strip a trace with NumPy (vectorized ``np.unique`` id assignment).

    ``np.unique`` orders unique addresses by *value*; re-ranking the
    sorted uniques by their first-occurrence position recovers exactly
    the identifier assignment of :func:`strip_trace`, so the two are
    interchangeable (property-tested).  Raises ``ImportError`` when
    NumPy is unavailable — use :func:`strip_trace_auto` for the
    dispatching front door.
    """
    import numpy as np

    addresses = np.frombuffer(trace.addresses, dtype=np.int64)
    if len(addresses) == 0:
        return StrippedTrace(
            trace=trace, unique_addresses=[], id_of={}, id_sequence=array("l")
        )
    sorted_unique, first_index, inverse = np.unique(
        addresses, return_index=True, return_inverse=True
    )
    # Rank the value-sorted uniques by first occurrence: identifier k is
    # the k-th distinct address to appear, as in the hash-table strip.
    occurrence_order = np.argsort(first_index, kind="stable")
    rank = np.empty(len(sorted_unique), dtype=np.int64)
    rank[occurrence_order] = np.arange(len(sorted_unique), dtype=np.int64)
    ids = array("l", bytes(0))
    ids.frombytes(
        np.ascontiguousarray(rank[inverse].astype(f"=i{ids.itemsize}")).tobytes()
    )
    unique = sorted_unique[occurrence_order].tolist()
    return StrippedTrace(
        trace=trace,
        unique_addresses=unique,
        id_of={addr: ident for ident, addr in enumerate(unique)},
        id_sequence=ids,
    )


#: Below this trace length the hash-table strip wins: the NumPy sorts
#: cost more than they save (calibrated by benchmarks/bench_prelude.py).
NUMPY_STRIP_MIN_REFS = 4096


def strip_trace_auto(trace: Trace) -> StrippedTrace:
    """Strip with NumPy when available and the trace is long enough.

    Falls back to the hash-table :func:`strip_trace` otherwise; both
    paths produce identical :class:`StrippedTrace` objects.
    """
    if len(trace) >= NUMPY_STRIP_MIN_REFS:
        try:
            return strip_trace_numpy(trace)
        except ImportError:
            pass
    return strip_trace(trace)


def strip_trace_sorted(trace: Trace) -> StrippedTrace:
    """Strip a trace by sorting (the ``N log N`` variant of section 2.4).

    Produces identifiers in the same first-occurrence order as
    :func:`strip_trace` so the two are interchangeable; exists so the
    ablation bench can compare the costs of the two strategies.
    """
    # Sort (address, position) pairs; the first position of each address
    # run is its first occurrence.
    order = sorted(range(len(trace)), key=lambda i: (trace[i], i))
    first_pos: List[tuple] = []
    prev_addr = None
    for i in order:
        addr = trace[i]
        if addr != prev_addr:
            first_pos.append((i, addr))
            prev_addr = addr
    # Identifier order = order of first occurrence in the original trace.
    first_pos.sort()
    unique = [addr for _, addr in first_pos]
    id_of = {addr: ident for ident, addr in enumerate(unique)}
    ids = array("l", (id_of[addr] for addr in trace))
    return StrippedTrace(
        trace=trace,
        unique_addresses=unique,
        id_of=id_of,
        id_sequence=ids,
    )
