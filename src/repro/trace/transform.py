"""Trace transformations.

Utilities for reshaping traces before analysis: address remapping (the
lever a data-layout optimizer pulls), base offsetting, region filtering
and region splitting.  All transformations preserve reference order and
access kinds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.trace.trace import Trace


def offset_addresses(trace: Trace, offset: int, name: str = "") -> Trace:
    """Add a constant to every address (relocate a buffer).

    Raises:
        ValueError: if any address would become negative.
    """
    addresses = [addr + offset for addr in trace]
    if addresses and min(addresses) < 0:
        raise ValueError(f"offset {offset} drives addresses negative")
    kinds = (
        [trace.kind(i) for i in range(len(trace))] if trace.has_kinds else None
    )
    return Trace(
        addresses,
        kinds=kinds,
        name=name or trace.name,
    )


def remap_addresses(
    trace: Trace,
    mapping: Dict[int, int],
    name: str = "",
    strict: bool = False,
) -> Trace:
    """Rewrite addresses through a mapping (identity where unmapped).

    This is the layout-optimization primitive: move the conflicting
    addresses the analyzer identified and re-analyze.

    Args:
        mapping: old address -> new address.
        strict: raise for addresses missing from the mapping instead of
            passing them through unchanged.
    """
    addresses: List[int] = []
    for addr in trace:
        if addr in mapping:
            addresses.append(mapping[addr])
        elif strict:
            raise KeyError(f"address {addr:#x} missing from mapping")
        else:
            addresses.append(addr)
    if addresses and min(addresses) < 0:
        raise ValueError("mapping produces negative addresses")
    kinds = (
        [trace.kind(i) for i in range(len(trace))] if trace.has_kinds else None
    )
    return Trace(addresses, kinds=kinds, name=name or trace.name)


def filter_address_range(
    trace: Trace, low: int, high: int, name: str = ""
) -> Trace:
    """Keep only references with ``low <= address < high``."""
    if low > high:
        raise ValueError(f"empty range: [{low}, {high})")
    indices = [i for i, addr in enumerate(trace) if low <= addr < high]
    kinds = [trace.kind(i) for i in indices] if trace.has_kinds else None
    return Trace(
        (trace[i] for i in indices),
        address_bits=trace.address_bits,
        kinds=kinds,
        name=name or trace.name,
    )


def split_at_address(trace: Trace, boundary: int) -> Tuple[Trace, Trace]:
    """Split into (below, at-or-above) the boundary — e.g. code vs data."""
    below = filter_address_range(trace, 0, boundary, name=f"{trace.name}/lo")
    above_indices = [i for i, addr in enumerate(trace) if addr >= boundary]
    kinds = (
        [trace.kind(i) for i in above_indices] if trace.has_kinds else None
    )
    above = Trace(
        (trace[i] for i in above_indices),
        address_bits=trace.address_bits,
        kinds=kinds,
        name=f"{trace.name}/hi",
    )
    return below, above


def map_addresses(
    trace: Trace, function: Callable[[int], int], name: str = ""
) -> Trace:
    """Apply an arbitrary address function (e.g. ``lambda a: a ^ 0x40``)."""
    addresses = [function(addr) for addr in trace]
    if addresses and min(addresses) < 0:
        raise ValueError("function produces negative addresses")
    kinds = (
        [trace.kind(i) for i in range(len(trace))] if trace.has_kinds else None
    )
    return Trace(addresses, kinds=kinds, name=name or trace.name)
