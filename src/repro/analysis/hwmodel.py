"""First-order cache hardware cost model (CACTI-style).

The paper cites CACTI [11] (Wilton & Jouppi) as the standard access-time
model and frames cache tuning as trading misses against "silicon area,
clock latency, or energy" (section 1).  This module provides a
deliberately simple, fully documented analytical stand-in for CACTI so
the exploration results can be ranked by hardware cost, not only by
geometry:

* **area** — data + tag RAM bits, plus per-way comparator/mux overhead;
* **access energy** — bitline/wordline term growing with the words read
  per access (all ways of a set are read in a conventional parallel-
  lookup cache) plus tag-compare energy per way;
* **access time** — decoder depth (log of rows), a logarithmic
  way-select mux term, and a linear comparator match-line load per way;
* **total energy** — per-access dynamic energy times accesses, plus a
  miss penalty term for line refills.

The constants are normalized (unit = cost of one RAM bit / one bit
access), so values are meaningful *relative to each other* within a
sweep — exactly how the paper's design-space discussion uses them.  The
model is monotone in each structural parameter, which the property
tests pin down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cache.config import CacheConfig

WORD_BITS = 32

# Normalized technology constants (unit: one RAM bit).
_TAG_OVERHEAD_BITS = 2          # valid + dirty per line
_COMPARATOR_BITS_PER_WAY = 24   # comparator + way-select logic
_ENERGY_PER_BIT_READ = 1.0
_ENERGY_PER_TAG_BIT = 1.2       # tag path includes compare
_DECODER_TIME_PER_LEVEL = 1.0
_WAY_SELECT_TIME = 0.5          # way-mux tree, log term
_MATCH_LINE_TIME_PER_WAY = 0.1  # comparator match-line load, linear term
_MISS_REFILL_ENERGY_PER_WORD = 8.0  # off-chip word transfer vs on-chip bit


@dataclass(frozen=True)
class HardwareEstimate:
    """Normalized cost figures for one cache configuration.

    Attributes:
        config: the cache being estimated.
        area_bits: storage + logic area in RAM-bit equivalents.
        access_energy: dynamic energy per access (bit-read units).
        access_time: access latency (decoder-level units).
    """

    config: CacheConfig
    area_bits: float
    access_energy: float
    access_time: float

    def total_energy(self, accesses: int, misses: int) -> float:
        """Dynamic energy of a whole run: accesses plus refill traffic.

        Args:
            accesses: total references served.
            misses: total line fetches (cold included — cold fills move
                data too).
        """
        if accesses < 0 or misses < 0:
            raise ValueError("accesses and misses must be non-negative")
        refill = misses * self.config.line_words * _MISS_REFILL_ENERGY_PER_WORD
        return accesses * self.access_energy + refill


def _tag_bits(config: CacheConfig, address_bits: int) -> int:
    """Tag width for a given machine address width."""
    tag = address_bits - config.index_bits - config.offset_bits
    return max(tag, 1)


def estimate_hardware(
    config: CacheConfig, address_bits: int = 32
) -> HardwareEstimate:
    """Estimate area, per-access energy and access time for a config.

    Args:
        config: the cache design point.
        address_bits: machine address width (sets the tag width).
    """
    if address_bits < 1:
        raise ValueError("address_bits must be >= 1")
    lines = config.depth * config.associativity
    data_bits = lines * config.line_words * WORD_BITS
    tag_bits = lines * (_tag_bits(config, address_bits) + _TAG_OVERHEAD_BITS)
    logic_bits = config.associativity * _COMPARATOR_BITS_PER_WAY
    area = float(data_bits + tag_bits + logic_bits)

    # A conventional parallel-lookup cache reads every way of the set.
    data_read_bits = config.associativity * config.line_words * WORD_BITS
    tag_read_bits = config.associativity * (
        _tag_bits(config, address_bits) + _TAG_OVERHEAD_BITS
    )
    energy = (
        data_read_bits * _ENERGY_PER_BIT_READ
        + tag_read_bits * _ENERGY_PER_TAG_BIT
    )

    time = (
        _DECODER_TIME_PER_LEVEL * math.log2(max(config.depth, 2))
        + _WAY_SELECT_TIME * math.log2(2 * config.associativity)
        + _MATCH_LINE_TIME_PER_WAY * config.associativity
    )
    return HardwareEstimate(
        config=config,
        area_bits=area,
        access_energy=energy,
        access_time=time,
    )
