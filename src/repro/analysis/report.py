"""One-command designer report.

Bundles everything the library knows about a trace into a single
markdown document: statistics, locality profile, the optimal-instance
table over the paper's budget grid, the capacity curve, budget
sensitivity at a focus depth, and hardware-cost-ranked picks.  Used by
``repro report`` and the examples.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.curves import capacity_curve
from repro.analysis.tables import format_table, optimal_instances_table
from repro.analysis.workingset import locality_score, working_set_curve
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.sensitivity import budget_sensitivity
from repro.trace.trace import Trace

DEFAULT_PERCENTS = (5.0, 10.0, 15.0, 20.0)


def generate_report(
    trace: Trace,
    percents=DEFAULT_PERCENTS,
    focus_percent: float = 10.0,
    focus_depth: Optional[int] = None,
) -> str:
    """Render a complete markdown report for one trace.

    Args:
        trace: the trace to analyze.
        percents: budget grid (as % of max misses) for the instance table.
        focus_percent: budget used for the cost ranking.
        focus_depth: depth for the sensitivity staircase (default: the
            middle reported depth).
    """
    explorer = AnalyticalCacheExplorer(trace)
    stats = explorer.statistics
    lines: List[str] = []
    title = trace.name or "trace"
    lines.append(f"# Cache design report: {title}")
    lines.append("")

    # --- statistics & locality -------------------------------------------
    lines.append("## Trace statistics")
    lines.append("")
    lines.append(f"- references (N): **{stats.n}**")
    lines.append(f"- unique references (N'): **{stats.n_unique}**")
    lines.append(f"- max misses (depth-1 DM, non-cold): **{stats.max_misses}**")
    lines.append(f"- address bits: {stats.address_bits}")
    lines.append(f"- locality score (reuse within 16): {locality_score(trace):.2f}")
    lines.append("")
    points = working_set_curve(trace)
    lines.append(
        format_table(
            ["Window", "Mean working set", "Max"],
            [[p.window, f"{p.mean_unique:.1f}", p.max_unique] for p in points],
            title="Working sets (non-overlapping windows)",
        )
    )
    lines.append("")

    # --- optimal instances over the paper's budget grid -------------------
    results = {p: explorer.explore_percent(p) for p in percents}
    lines.append("## Optimal cache instances (rows: K as % of max misses)")
    lines.append("")
    lines.append(optimal_instances_table(results))
    lines.append("")

    # --- capacity curve ----------------------------------------------------
    max_capacity = 2
    while max_capacity < 2 * stats.n_unique:
        max_capacity *= 2
    curve = capacity_curve(explorer, max_capacity=max_capacity)
    lines.append("## Best-achievable misses per capacity")
    lines.append("")
    lines.append(
        format_table(
            ["Capacity (words)", "Best instance", "Non-cold misses"],
            [[p.x, str(p.instance), p.misses] for p in curve],
        )
    )
    lines.append("")

    # --- sensitivity staircase ----------------------------------------------
    focus_result = results.get(focus_percent) or explorer.explore_percent(
        focus_percent
    )
    depths = [inst.depth for inst in focus_result.instances]
    if focus_depth is None and depths:
        focus_depth = depths[len(depths) // 2]
    if focus_depth is not None:
        steps = budget_sensitivity(explorer, focus_depth)
        lines.append(f"## Budget sensitivity at depth {focus_depth}")
        lines.append("")
        rows = [
            [
                s.associativity,
                s.min_budget,
                "inf" if s.unbounded else s.max_budget,
            ]
            for s in steps
        ]
        lines.append(
            format_table(["Assoc", "K from", "K to"], rows)
        )
        lines.append("")

    # --- 3C classification at the focus budget ------------------------------
    from repro.analysis.threec import classify_misses

    lines.append(f"## Miss classification (3C) at K = {focus_percent:g}%")
    lines.append("")
    breakdown_rows = []
    for inst in focus_result.instances:
        breakdown = classify_misses(explorer, inst.depth, inst.associativity)
        breakdown_rows.append(
            [
                str(inst),
                breakdown.compulsory,
                breakdown.capacity,
                breakdown.conflict,
            ]
        )
    lines.append(
        format_table(
            ["Instance", "Compulsory", "Capacity", "Conflict"],
            breakdown_rows,
        )
    )
    lines.append(
        "\n(Conflict < 0 marks the classic anomaly: restricted placement "
        "beating fully associative LRU.)"
    )
    lines.append("")

    # --- hardware-cost ranking -------------------------------------------------
    # Imported here to keep repro.analysis importable without repro.explore
    # (which itself uses repro.analysis.hwmodel).
    from repro.explore.selection import cheapest, cost_exploration

    costed = cost_exploration(
        explorer, focus_result, address_bits=stats.address_bits
    )
    lines.append(
        f"## Hardware costs at K = {focus_percent:g}% "
        f"(budget {focus_result.budget})"
    )
    lines.append("")
    lines.append(
        format_table(
            ["Instance", "Area (bits)", "Run energy", "Latency"],
            [
                [
                    str(c.instance),
                    f"{c.estimate.area_bits:.0f}",
                    f"{c.run_energy:.0f}",
                    f"{c.estimate.access_time:.2f}",
                ]
                for c in costed
            ],
        )
    )
    lines.append("")
    lines.append(f"- energy-optimal: **{cheapest(costed).instance}**")
    lines.append(
        "- area-optimal: "
        f"**{cheapest(costed, key=lambda c: c.estimate.area_bits).instance}**"
    )
    lines.append(
        "- latency-optimal: "
        f"**{cheapest(costed, key=lambda c: c.estimate.access_time).instance}**"
    )
    lines.append("")
    return "\n".join(lines)
