"""ASCII rendering of the paper's evaluation tables.

* Tables 5/6 — per-benchmark trace statistics (N, N', max misses).
* Tables 7–30 — optimal cache instances: rows are the miss budget K (as a
  percentage of max misses), columns are cache depths, entries are the
  minimum associativity.
* Tables 31/32 — algorithm run times.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.instance import ExplorationResult
from repro.trace.stats import TraceStatistics


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row width {len(row)} does not match header width {columns}"
            )
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    rule = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(rule)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def trace_stats_table(
    stats: Sequence[TraceStatistics], title: str = ""
) -> str:
    """Paper Table 5/6: benchmark, N, N', max misses."""
    rows = [[s.name, s.n, s.n_unique, s.max_misses] for s in stats]
    return format_table(
        ["Benchmark", "Size N", "Unique References N'", "Max. Misses"],
        rows,
        title=title,
    )


def optimal_instances_table(
    results_by_percent: Dict[float, ExplorationResult],
    depths: Optional[Sequence[int]] = None,
    title: str = "",
) -> str:
    """Paper Tables 7-30: rows = K%, columns = depth, entries = A.

    A ``-`` marks a depth a particular run did not report (all runs on
    the same trace normally report the same depths).
    """
    if not results_by_percent:
        raise ValueError("at least one exploration result is required")
    if depths is None:
        all_depths = set()
        for result in results_by_percent.values():
            all_depths.update(inst.depth for inst in result.instances)
        depths = sorted(all_depths)
    headers = ["K"] + [str(d) for d in depths]
    rows = []
    for percent in sorted(results_by_percent):
        result = results_by_percent[percent]
        mapping = result.as_dict()
        rows.append(
            [f"{percent:g}%"] + [mapping.get(d, "-") for d in depths]
        )
    return format_table(headers, rows, title=title)


def runtime_table(
    times: Dict[str, float], title: str = ""
) -> str:
    """Paper Table 31/32: benchmark and algorithm run time in seconds."""
    rows = [[name, f"{seconds:.4g}"] for name, seconds in times.items()]
    return format_table(["Benchmark", "Time (sec)"], rows, title=title)


def miss_grid_table(
    grid: Dict[tuple, int],
    depths: Sequence[int],
    associativities: Sequence[int],
    title: str = "",
) -> str:
    """Full (depth x associativity) -> misses grid, for exhaustive sweeps."""
    headers = ["A \\ D"] + [str(d) for d in depths]
    rows = []
    for assoc in associativities:
        rows.append(
            [str(assoc)] + [grid.get((d, assoc), "-") for d in depths]
        )
    return format_table(headers, rows, title=title)
