"""Memory (bus) traffic analysis.

For power-sensitive embedded systems the off-chip word count often
matters more than the miss count — bus transfers cross chip boundaries
and "require power costly communication" (paper §1).  This module
computes, by simulation (writes need the trace's access kinds), the
words moved between cache and memory for a configuration:

* **fill traffic** — ``line_words`` per miss, compulsory included;
* **write-back traffic** — dirty lines written back (evictions plus the
  final flush), ``line_words`` each, under write-back policy;
* **write-through traffic** — one word per store, under write-through.

The comparison the designer wants: write-back vs write-through at one
geometry, and how traffic scales across the analytical instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.config import CacheConfig, WritePolicy
from repro.cache.simulator import CacheSimulator
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TrafficEstimate:
    """Words moved between one cache and memory over a whole trace.

    Attributes:
        config: the simulated configuration.
        fill_words: words fetched on misses (cold included).
        writeback_words: dirty-line write-back words (write-back policy;
            includes a final flush so no dirt is left uncounted).
        writethrough_words: store-forward words (write-through policy).
    """

    config: CacheConfig
    fill_words: int
    writeback_words: int
    writethrough_words: int

    @property
    def total_words(self) -> int:
        """All words crossing the memory interface."""
        return self.fill_words + self.writeback_words + self.writethrough_words


def estimate_traffic(trace: Trace, config: CacheConfig) -> TrafficEstimate:
    """Simulate and count memory-interface words for one configuration.

    Works on untyped traces too (no stores — read-only fill traffic).
    """
    sim = CacheSimulator(config)
    if trace.has_kinds:
        for i, addr in enumerate(trace):
            sim.access(addr, trace.kind(i))
    else:
        for addr in trace:
            sim.access(addr)
    if config.write_policy is WritePolicy.WRITE_BACK:
        sim.flush()
    result = sim.result()
    return TrafficEstimate(
        config=config,
        fill_words=result.misses * config.line_words,
        writeback_words=sim.writebacks * config.line_words,
        writethrough_words=sim.write_throughs,
    )


def compare_write_policies(
    trace: Trace, depth: int, associativity: int, line_words: int = 1
) -> dict:
    """Traffic of write-back vs write-through at one geometry.

    Returns ``{"write-back": TrafficEstimate, "write-through": ...}``.
    """
    estimates = {}
    for policy in (WritePolicy.WRITE_BACK, WritePolicy.WRITE_THROUGH):
        config = CacheConfig(
            depth=depth,
            associativity=associativity,
            line_words=line_words,
            write_policy=policy,
        )
        estimates[policy.value] = estimate_traffic(trace, config)
    return estimates
