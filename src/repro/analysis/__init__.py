"""Reporting and measurement: the paper's tables and Figure 4.

:mod:`repro.analysis.tables` renders ASCII versions of the paper's
evaluation tables; :mod:`repro.analysis.runtime` measures the analytical
algorithm's wall-clock cost and fits the linear time-vs-``N*N'`` model
behind Figure 4.
"""

from repro.analysis.tables import (
    format_table,
    trace_stats_table,
    optimal_instances_table,
    runtime_table,
    miss_grid_table,
)
from repro.analysis.runtime import (
    RuntimeMeasurement,
    ScalingFit,
    measure_runtime,
    fit_scaling,
)
from repro.analysis.hwmodel import HardwareEstimate, estimate_hardware
from repro.analysis.workingset import (
    WorkingSetPoint,
    locality_score,
    reuse_distance_histogram,
    working_set_curve,
)
from repro.analysis.curves import (
    CurvePoint,
    associativity_curve,
    capacity_curve,
)
from repro.analysis.report import generate_report
from repro.analysis.conflicts import (
    RowConflict,
    conflict_report,
    total_conflict_misses,
)
from repro.analysis.export import (
    curve_to_csv,
    exploration_to_csv,
    histograms_to_csv,
    measurements_to_csv,
)
from repro.analysis.threec import MissBreakdown, classify_misses
from repro.analysis.traffic import (
    TrafficEstimate,
    compare_write_policies,
    estimate_traffic,
)

__all__ = [
    "HardwareEstimate",
    "estimate_hardware",
    "WorkingSetPoint",
    "locality_score",
    "reuse_distance_histogram",
    "working_set_curve",
    "CurvePoint",
    "associativity_curve",
    "capacity_curve",
    "generate_report",
    "RowConflict",
    "conflict_report",
    "total_conflict_misses",
    "MissBreakdown",
    "classify_misses",
    "curve_to_csv",
    "exploration_to_csv",
    "histograms_to_csv",
    "measurements_to_csv",
    "TrafficEstimate",
    "compare_write_policies",
    "estimate_traffic",
    "format_table",
    "trace_stats_table",
    "optimal_instances_table",
    "runtime_table",
    "miss_grid_table",
    "RuntimeMeasurement",
    "ScalingFit",
    "measure_runtime",
    "fit_scaling",
]
