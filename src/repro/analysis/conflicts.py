"""Conflict diagnosis: *which* addresses cause the misses.

The BCAT/MRCT machinery knows more than the miss counts — it knows
exactly which cache row every conflict happens in and which references
populate that row.  This module surfaces that for the designer: per
cache row at a chosen (depth, associativity), the miss contribution and
the resident addresses, ranked.  Combined with
:func:`repro.trace.transform.remap_addresses` this turns the analyzer
into a data-layout optimization loop (see
``examples/layout_optimization.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.bcat import walk_bcat_sets
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.postlude import misses_at_node
from repro.core.zerosets import bitset_members


@dataclass(frozen=True)
class RowConflict:
    """One cache row's conflict diagnosis.

    Attributes:
        row_index: which row of the depth-D cache (its index bits).
        addresses: the unique addresses mapping to this row.
        misses: non-cold misses this row contributes at the queried
            associativity.
    """

    row_index: int
    addresses: List[int]
    misses: int

    @property
    def occupancy(self) -> int:
        """How many distinct references share the row."""
        return len(self.addresses)


def conflict_report(
    explorer: AnalyticalCacheExplorer,
    depth: int,
    associativity: int = 1,
    top: int = 10,
) -> List[RowConflict]:
    """The ``top`` most miss-contributing rows at (depth, associativity).

    Rows with zero misses are omitted; ties rank by occupancy.  The sum
    of all rows' misses (not just the returned top) equals
    ``explorer.misses(depth, associativity)`` — asserted in tests.
    """
    if depth < 1 or (depth & (depth - 1)) != 0:
        raise ValueError(f"depth must be a power of two, got {depth}")
    if associativity < 1:
        raise ValueError("associativity must be >= 1")
    if top < 1:
        raise ValueError("top must be >= 1")
    level = depth.bit_length() - 1
    stripped = explorer.stripped
    rows: List[RowConflict] = []
    for node_level, members in walk_bcat_sets(
        explorer.zerosets, max_level=level
    ):
        if node_level != level or members.bit_count() < 2:
            continue
        misses = misses_at_node(members, explorer.mrct, associativity)
        if misses == 0:
            continue
        addresses = sorted(
            stripped.address(ident) for ident in bitset_members(members)
        )
        rows.append(
            RowConflict(
                row_index=addresses[0] % depth,
                addresses=addresses,
                misses=misses,
            )
        )
    rows.sort(key=lambda r: (-r.misses, -r.occupancy, r.row_index))
    return rows[:top]


def total_conflict_misses(rows: List[RowConflict]) -> int:
    """Sum of the reported rows' miss contributions."""
    return sum(row.misses for row in rows)
