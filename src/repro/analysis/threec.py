"""3C miss classification: compulsory / capacity / conflict.

Hill's classic decomposition, computed analytically:

* **compulsory** (cold) — first touches; equal to N' for one-word lines;
* **capacity** — the non-cold misses a *fully associative* LRU cache of
  the same total capacity would still take (histogram level 0 at
  associativity = D·A);
* **conflict** — the remainder: misses caused purely by restricted
  placement.

Both quantities fall out of the explorer's cached histograms, so
classifying every (D, A) point costs nothing extra.

The classic anomaly applies: a fully associative LRU cache of equal
capacity is *not* always better (loop over C+1 lines: FA-LRU misses
everything, a set-associative split can hit), so ``conflict`` can be
negative.  Negative conflict means the restricted placement *helped*;
the value is reported as-is and the anomaly has a dedicated test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.explorer import AnalyticalCacheExplorer


@dataclass(frozen=True)
class MissBreakdown:
    """The 3C decomposition of one cache configuration's misses.

    Attributes:
        depth: cache depth D.
        associativity: ways A.
        compulsory: cold misses (unique references).
        capacity: misses a same-capacity fully associative cache takes.
        conflict: placement-induced misses (total non-cold - capacity).
    """

    depth: int
    associativity: int
    compulsory: int
    capacity: int
    conflict: int

    @property
    def non_cold(self) -> int:
        """Capacity + conflict (the paper's K-constrained quantity)."""
        return self.capacity + self.conflict

    @property
    def total(self) -> int:
        """All misses including compulsory."""
        return self.compulsory + self.non_cold


def classify_misses(
    explorer: AnalyticalCacheExplorer, depth: int, associativity: int
) -> MissBreakdown:
    """3C breakdown for one (depth, associativity) point.

    The fully associative reference cache has one set (depth 1) with
    ``depth * associativity`` ways — identical total capacity.
    """
    if depth < 1 or (depth & (depth - 1)) != 0:
        raise ValueError(f"depth must be a power of two, got {depth}")
    if associativity < 1:
        raise ValueError("associativity must be >= 1")
    non_cold = explorer.misses(depth, associativity)
    capacity = explorer.misses(1, depth * associativity)
    conflict = non_cold - capacity  # may be negative (see module doc)
    return MissBreakdown(
        depth=depth,
        associativity=associativity,
        compulsory=explorer.stripped.n_unique,
        capacity=capacity,
        conflict=conflict,
    )
