"""CSV export of analysis artifacts.

Plotting and spreadsheet tooling want flat CSV; these helpers render
the library's main result types that way.  All functions return the CSV
text (callers write files), with deterministic column order.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Sequence

from repro.analysis.curves import CurvePoint
from repro.analysis.runtime import RuntimeMeasurement
from repro.core.instance import ExplorationResult
from repro.core.postlude import LevelHistogram


def _render(headers: Sequence[str], rows) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(headers)
    writer.writerows(rows)
    return out.getvalue()


def exploration_to_csv(result: ExplorationResult) -> str:
    """``depth,associativity,size_words,misses`` rows."""
    misses = result.misses or [""] * len(result.instances)
    rows = [
        [inst.depth, inst.associativity, inst.size_words, m]
        for inst, m in zip(result.instances, misses)
    ]
    return _render(["depth", "associativity", "size_words", "misses"], rows)


def curve_to_csv(points: Sequence[CurvePoint], x_name: str = "x") -> str:
    """``x,misses,depth,associativity`` rows for any miss curve."""
    rows = [
        [p.x, p.misses, p.instance.depth, p.instance.associativity]
        for p in points
    ]
    return _render([x_name, "misses", "depth", "associativity"], rows)


def histograms_to_csv(histograms: Dict[int, LevelHistogram]) -> str:
    """``level,depth,distance,count`` rows (sorted, dense enough to plot)."""
    rows = []
    for level in sorted(histograms):
        histogram = histograms[level]
        for distance in sorted(histogram.counts):
            rows.append(
                [level, histogram.depth, distance, histogram.counts[distance]]
            )
    return _render(["level", "depth", "distance", "count"], rows)


def measurements_to_csv(measurements: Sequence[RuntimeMeasurement]) -> str:
    """``name,n,n_unique,work_product,seconds`` rows (Figure-4 points)."""
    rows = [
        [m.name, m.n, m.n_unique, m.work_product, m.seconds]
        for m in measurements
    ]
    return _render(["name", "n", "n_unique", "work_product", "seconds"], rows)
