"""Working-set analysis.

The paper's space argument (section 2.4) rests on embedded programs
executing "a small kernel of the code most of the time" — i.e. small
working sets.  This module quantifies that: per-window unique-reference
counts (Denning working sets over non-overlapping windows) and the
global LRU reuse-distance histogram, which is also the depth-1 column
of the analytical algorithm's own level histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.trace.trace import Trace


@dataclass(frozen=True)
class WorkingSetPoint:
    """Working-set statistics for one window length.

    Attributes:
        window: window length in references.
        mean_unique: mean distinct references per (non-overlapping) window.
        max_unique: largest distinct count over all windows.
    """

    window: int
    mean_unique: float
    max_unique: int


def working_set_curve(
    trace: Trace, windows: Sequence[int] = (16, 64, 256, 1024)
) -> List[WorkingSetPoint]:
    """Distinct references per non-overlapping window, for several sizes.

    Windows longer than the trace degenerate to one whole-trace window.
    An empty trace produces points with zero means.
    """
    points: List[WorkingSetPoint] = []
    n = len(trace)
    for window in windows:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if n == 0:
            points.append(WorkingSetPoint(window, 0.0, 0))
            continue
        counts: List[int] = []
        for start in range(0, n, window):
            chunk = trace[start : start + window]
            counts.append(chunk.unique_count())
        points.append(
            WorkingSetPoint(
                window=window,
                mean_unique=sum(counts) / len(counts),
                max_unique=max(counts),
            )
        )
    return points


def reuse_distance_histogram(trace: Trace) -> Dict[int, int]:
    """Global LRU reuse distances: ``{distance: occurrences}``.

    Distance = number of distinct other references since the previous
    occurrence (0 = immediate re-reference); cold first occurrences are
    excluded.  This equals the analytical level-0 histogram, i.e. the
    conflict structure of the fully associative depth-1 cache.
    """
    stack: List[int] = []
    histogram: Dict[int, int] = {}
    for addr in trace:
        try:
            distance = stack.index(addr)
        except ValueError:
            stack.insert(0, addr)
            continue
        histogram[distance] = histogram.get(distance, 0) + 1
        del stack[distance]
        stack.insert(0, addr)
    return histogram


def locality_score(trace: Trace) -> float:
    """Fraction of non-cold accesses with reuse distance below 16.

    A single-number locality summary in [0, 1]; 1.0 means every reuse is
    near-immediate (tight loops), 0.0 means no short-range reuse at all.
    Traces without any reuse score 0.0.
    """
    histogram = reuse_distance_histogram(trace)
    total = sum(histogram.values())
    if total == 0:
        return 0.0
    near = sum(count for dist, count in histogram.items() if dist < 16)
    return near / total
