"""Miss-ratio curves derived from the analytical histograms.

Classic cache-planning artifacts, computed without simulation:

* :func:`associativity_curve` — at a fixed depth, non-cold misses for
  every associativity up to the zero-miss point (one histogram read);
* :func:`capacity_curve` — for each total capacity ``C`` (in words),
  the minimum non-cold misses over all ``(D, A)`` with ``D * A = C`` —
  the classic miss-ratio-vs-size curve a designer plots first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance


@dataclass(frozen=True)
class CurvePoint:
    """One point of a miss curve.

    Attributes:
        x: the swept quantity (associativity or capacity in words).
        misses: non-cold miss count.
        instance: the (D, A) realizing the point (capacity curve only;
            equals the queried geometry for associativity curves).
    """

    x: int
    misses: int
    instance: CacheInstance


def associativity_curve(
    explorer: AnalyticalCacheExplorer, depth: int
) -> List[CurvePoint]:
    """Misses vs associativity at a fixed depth, up to zero misses."""
    points: List[CurvePoint] = []
    assoc = 1
    while True:
        misses = explorer.misses(depth, assoc)
        points.append(
            CurvePoint(
                x=assoc,
                misses=misses,
                instance=CacheInstance(depth=depth, associativity=assoc),
            )
        )
        if misses == 0:
            return points
        assoc += 1


def capacity_curve(
    explorer: AnalyticalCacheExplorer,
    max_capacity: int,
    min_capacity: int = 2,
) -> List[CurvePoint]:
    """Best-achievable misses per total capacity (powers of two).

    For each capacity ``C`` the minimum over all factorizations
    ``C = D * A`` with power-of-two ``D >= 2`` is reported, together
    with the geometry achieving it (ties prefer larger depth — cheaper
    hardware at equal misses).
    """
    if min_capacity < 2:
        raise ValueError("min_capacity must be >= 2")
    if max_capacity < min_capacity:
        raise ValueError("max_capacity must be >= min_capacity")
    points: List[CurvePoint] = []
    capacity = 1
    while capacity < min_capacity:
        capacity *= 2
    while capacity <= max_capacity:
        best_misses = None
        best_instance = None
        depth = 2
        while depth <= capacity:
            assoc = capacity // depth
            misses = explorer.misses(depth, assoc)
            if best_misses is None or misses <= best_misses:
                best_misses = misses
                best_instance = CacheInstance(depth=depth, associativity=assoc)
            depth *= 2
        assert best_instance is not None and best_misses is not None
        points.append(
            CurvePoint(x=capacity, misses=best_misses, instance=best_instance)
        )
        capacity *= 2
    return points
