"""Runtime measurement and the Figure 4 scaling fit.

The paper's Figure 4 plots algorithm execution time against ``N * N'``
(trace size times unique references) and observes an on-average linear
relationship.  :func:`measure_runtime` times a full analytical run
(prelude + postlude, caches cleared) and :func:`fit_scaling` performs the
least-squares line fit and reports its quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.trace import Trace


@dataclass(frozen=True)
class RuntimeMeasurement:
    """One timed analytical run.

    Attributes:
        name: trace label.
        n: trace size N.
        n_unique: unique references N'.
        seconds: wall-clock time of prelude + postlude + exploration.
    """

    name: str
    n: int
    n_unique: int
    seconds: float

    @property
    def work_product(self) -> int:
        """Figure 4's x-axis: ``N * N'``."""
        return self.n * self.n_unique


@dataclass(frozen=True)
class ScalingFit:
    """Least-squares fit of ``seconds ~ slope * (N*N') + intercept``.

    Attributes:
        slope: seconds per unit of ``N*N'``.
        intercept: fixed overhead in seconds.
        r_squared: coefficient of determination of the fit.
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, work_product: float) -> float:
        """Predicted runtime for a given ``N*N'``."""
        return self.slope * work_product + self.intercept


def measure_runtime(
    trace: Trace, budgets: Sequence[int] = (0,), repeats: int = 1
) -> RuntimeMeasurement:
    """Time a complete analytical exploration of a trace.

    Each repeat builds a fresh explorer (no cached stages) and runs every
    budget, matching how the paper reports per-benchmark times; the
    minimum over repeats is kept to suppress scheduler noise.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    explorer = None
    for _ in range(repeats):
        start = time.perf_counter()
        explorer = AnalyticalCacheExplorer(trace)
        for budget in budgets:
            explorer.explore(budget)
        best = min(best, time.perf_counter() - start)
    assert explorer is not None
    return RuntimeMeasurement(
        name=trace.name,
        n=len(trace),
        n_unique=explorer.stripped.n_unique,
        seconds=best,
    )


def fit_scaling(measurements: Sequence[RuntimeMeasurement]) -> ScalingFit:
    """Least-squares line through (N*N', seconds) points.

    Pure-Python implementation (two points minimum); ``r_squared`` is 1.0
    for a degenerate vertical spread of zero.
    """
    if len(measurements) < 2:
        raise ValueError("at least two measurements are required for a fit")
    xs: List[float] = [float(m.work_product) for m in measurements]
    ys: List[float] = [m.seconds for m in measurements]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all measurements share the same N*N'; cannot fit")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return ScalingFit(slope=slope, intercept=intercept, r_squared=r_squared)
