"""Postlude engine registry: one dispatch point for every implementation.

The repo has grown four interchangeable ways to turn a trace into the
per-level conflict histograms of the paper's Algorithm 3 — serial
bigints, a multiprocessing splitter, a constant-memory streaming pass
and a NumPy bit-matrix kernel.  Callers (the explorer, the CLI, the
benchmark harness) should not hard-code that list; they select an
engine *by name* here and new engines become visible everywhere by
registering a single :class:`EngineSpec`.

Names
-----

``serial``
    The reference implementation
    (:func:`repro.core.postlude.compute_level_histograms`).  Every other
    engine is tested bit-identical against it.  ``bitmask`` is accepted
    as a legacy alias.
``parallel``
    BCAT subtrees fanned out over worker processes
    (:mod:`repro.core.parallel`); takes a ``processes`` option.
``streaming``
    Single LRU-stack pass over the raw trace with O(N') memory
    (:mod:`repro.core.streaming`).
``vectorized``
    NumPy ``uint64`` bit-matrix kernel (:mod:`repro.core.vectorized`);
    falls back to ``serial`` when NumPy is missing.
``auto``
    Picks ``vectorized`` when NumPy is importable and the trace is long
    enough (``>= AUTO_MIN_REFS`` references) for the packing overhead to
    amortize, else ``serial``.

All engines consume the same :class:`EngineInputs` bundle, which builds
the prelude products (stripped trace, zero/one sets, MRCT) lazily and
exactly once, so switching engines never repeats the prelude.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.mrct import MRCT, build_mrct
from repro.core.postlude import LevelHistogram, compute_level_histograms
from repro.core.zerosets import ZeroOneSets, build_zero_one_sets
from repro.trace.strip import StrippedTrace, strip_trace
from repro.trace.trace import Trace

#: Engine selected when the caller does not choose one.
AUTO_ENGINE = "auto"

#: ``auto`` switches from ``serial`` to ``vectorized`` at this trace
#: length: below it the NumPy kernel's pack/sort overhead eats the win.
AUTO_MIN_REFS = 4096

#: Legacy names still accepted everywhere an engine name is.
ALIASES = {"bitmask": "serial"}


class EngineInputs:
    """Lazily built prelude products shared by every engine.

    One instance per trace; each stage (strip, zero/one sets, MRCT) is
    computed on first access and cached, so engines can be re-run or
    compared without re-running the prelude.  Pre-built products may be
    injected (the benchmark harness does this to time the postlude
    alone).
    """

    def __init__(
        self,
        trace: Trace,
        stripped: Optional[StrippedTrace] = None,
        zerosets: Optional[ZeroOneSets] = None,
        mrct: Optional[MRCT] = None,
    ) -> None:
        self.trace = trace
        self._stripped = stripped
        self._zerosets = zerosets
        self._mrct = mrct

    @property
    def stripped(self) -> StrippedTrace:
        if self._stripped is None:
            self._stripped = strip_trace(self.trace)
        return self._stripped

    @property
    def zerosets(self) -> ZeroOneSets:
        if self._zerosets is None:
            self._zerosets = build_zero_one_sets(self.stripped)
        return self._zerosets

    @property
    def mrct(self) -> MRCT:
        if self._mrct is None:
            self._mrct = build_mrct(self.stripped)
        return self._mrct


Runner = Callable[..., Dict[int, LevelHistogram]]


@dataclass(frozen=True)
class EngineSpec:
    """A registered histogram engine.

    Attributes:
        name: canonical registry key.
        summary: one-line description (shown by ``repro engines``).
        memory: qualitative working-set note for the selection table.
        best_for: when to pick this engine.
        runner: callable ``runner(inputs, max_level=None, **options)``
            returning the per-level histograms; unknown options must be
            ignored so one option set can be passed to any engine.
        requires_numpy: True when the fast path needs NumPy (the engine
            must still *work* without it, falling back internally).
    """

    name: str
    summary: str
    memory: str
    best_for: str
    runner: Runner
    requires_numpy: bool = False

    def available(self) -> bool:
        """True when the engine's fast path can run in this interpreter."""
        if not self.requires_numpy:
            return True
        from repro.core.vectorized import numpy_available

        return numpy_available()

    def compute(
        self,
        inputs: EngineInputs,
        max_level: Optional[int] = None,
        **options: object,
    ) -> Dict[int, LevelHistogram]:
        """Run this engine on the given prelude products."""
        return self.runner(inputs, max_level=max_level, **options)


_REGISTRY: "OrderedDict[str, EngineSpec]" = OrderedDict()


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine to the registry (name must be new and not an alias)."""
    if spec.name in _REGISTRY or spec.name in ALIASES or spec.name == AUTO_ENGINE:
        raise ValueError(f"engine name {spec.name!r} already taken")
    _REGISTRY[spec.name] = spec
    return spec


def engine_names(include_auto: bool = True) -> Tuple[str, ...]:
    """Registered canonical engine names, in registration order."""
    names = tuple(_REGISTRY)
    return names + (AUTO_ENGINE,) if include_auto else names


def canonical_name(name: str) -> str:
    """Validate an engine name and resolve aliases (``auto`` stays ``auto``).

    Raises:
        ValueError: for names that are neither registered, aliased nor
            ``auto``.
    """
    resolved = ALIASES.get(name, name)
    if resolved != AUTO_ENGINE and resolved not in _REGISTRY:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {engine_names()}"
        )
    return resolved


def choose_auto(trace: Optional[Trace] = None) -> str:
    """The concrete engine ``auto`` stands for, given a trace."""
    from repro.core.vectorized import numpy_available

    if numpy_available() and trace is not None and len(trace) >= AUTO_MIN_REFS:
        return "vectorized"
    return "serial"


def get_engine(name: str) -> EngineSpec:
    """Look up a concrete engine by (possibly aliased) name."""
    resolved = canonical_name(name)
    if resolved == AUTO_ENGINE:
        raise ValueError(
            "'auto' is a selection policy, not a concrete engine; "
            "use resolve_engine() with inputs"
        )
    return _REGISTRY[resolved]


def resolve_engine(name: str, inputs: Optional[EngineInputs] = None) -> EngineSpec:
    """Resolve a name (including ``auto`` and aliases) to an engine spec."""
    resolved = canonical_name(name)
    if resolved == AUTO_ENGINE:
        resolved = choose_auto(inputs.trace if inputs is not None else None)
    return _REGISTRY[resolved]


def compute_histograms(
    engine: str,
    inputs: EngineInputs,
    max_level: Optional[int] = None,
    **options: object,
) -> Dict[int, LevelHistogram]:
    """Select an engine by name and run it — the one-call dispatch path."""
    return resolve_engine(engine, inputs).compute(
        inputs, max_level=max_level, **options
    )


# -- built-in engines ----------------------------------------------------------


def _run_serial(
    inputs: EngineInputs, max_level: Optional[int] = None, **_: object
) -> Dict[int, LevelHistogram]:
    return compute_level_histograms(
        inputs.zerosets, inputs.mrct, max_level=max_level
    )


def _run_parallel(
    inputs: EngineInputs,
    max_level: Optional[int] = None,
    processes: int = 2,
    **_: object,
) -> Dict[int, LevelHistogram]:
    from repro.core.parallel import compute_level_histograms_parallel

    return compute_level_histograms_parallel(
        inputs.zerosets, inputs.mrct, max_level=max_level, processes=processes
    )


def _run_streaming(
    inputs: EngineInputs, max_level: Optional[int] = None, **_: object
) -> Dict[int, LevelHistogram]:
    from repro.core.streaming import compute_level_histograms_streaming

    return compute_level_histograms_streaming(inputs.trace, max_level=max_level)


def _run_vectorized(
    inputs: EngineInputs, max_level: Optional[int] = None, **_: object
) -> Dict[int, LevelHistogram]:
    from repro.core.vectorized import compute_level_histograms_vectorized

    return compute_level_histograms_vectorized(
        inputs.zerosets, inputs.mrct, max_level=max_level
    )


register_engine(
    EngineSpec(
        name="serial",
        summary="reference bigint BCAT/MRCT pipeline (pure Python)",
        memory="O(N' bits x N') sets + O(occurrences) MRCT",
        best_for="small/medium traces; the correctness baseline",
        runner=_run_serial,
    )
)
register_engine(
    EngineSpec(
        name="parallel",
        summary="BCAT subtrees across worker processes",
        memory="serial's, duplicated per worker",
        best_for="very large N x N' on multi-core hosts without NumPy",
        runner=_run_parallel,
    )
)
register_engine(
    EngineSpec(
        name="streaming",
        summary="single LRU-stack pass over the raw trace",
        memory="O(N') — no MRCT, no zero/one sets",
        best_for="traces that dwarf RAM",
        runner=_run_streaming,
    )
)
register_engine(
    EngineSpec(
        name="vectorized",
        summary="NumPy uint64 bit-matrix kernel with weighted row dedupe",
        memory="O(unique conflict rows x N'/64 words)",
        best_for="long loop-dominated traces when NumPy is available",
        runner=_run_vectorized,
        requires_numpy=True,
    )
)
