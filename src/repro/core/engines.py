"""Postlude engine registry: one dispatch point for every implementation.

The repo has grown four interchangeable ways to turn a trace into the
per-level conflict histograms of the paper's Algorithm 3 — serial
bigints, a multiprocessing splitter, a constant-memory streaming pass
and a NumPy bit-matrix kernel.  Callers (the explorer, the CLI, the
benchmark harness) should not hard-code that list; they select an
engine *by name* here and new engines become visible everywhere by
registering a single :class:`EngineSpec`.

Names
-----

``serial``
    The reference implementation
    (:func:`repro.core.postlude.compute_level_histograms`).  Every other
    engine is tested bit-identical against it.  ``bitmask`` is accepted
    as a legacy alias.
``parallel``
    BCAT subtrees fanned out over worker processes
    (:mod:`repro.core.parallel`); takes a ``processes`` option.  The
    bigint tables travel through the pool initializer, and the
    initialized pool is cached per trace digest so repeat runs re-pickle
    nothing.
``parallel-shm``
    BCAT subtrees over worker processes *sharing* one packed conflict
    bit-matrix in a ``multiprocessing.shared_memory`` segment
    (:mod:`repro.core.parallel` + :mod:`repro.core.shm`); workers
    attach read-only and claim subtree indices from the pool's task
    queue, each running the vectorized blocked walk over its row
    segments.  Takes ``processes`` and ``split_level``; falls back to
    ``parallel`` when NumPy is missing.
``streaming``
    Single LRU-stack pass over the raw trace with O(N') memory
    (:mod:`repro.core.streaming`).
``vectorized``
    NumPy ``uint64`` bit-matrix kernel (:mod:`repro.core.vectorized`);
    falls back to ``serial`` when NumPy is missing.  On a cold trace it
    runs *fused*: the fast prelude emits the packed conflict bit-matrix
    directly (:mod:`repro.core.prelude_fast`) and the postlude consumes
    it zero-copy, skipping the bigint MRCT entirely.
``auto``
    Picks between ``serial``, ``vectorized`` and — on multi-core hosts
    at very large N — ``parallel-shm``.  Calibration against
    BENCH_postlude.json showed the bigint ``parallel`` 2.5–8x slower
    than ``serial`` and ``streaming`` 22–125x slower at every measured
    size, so neither is ever auto-selected (they remain available by
    name).  The serial/vectorized threshold depends on what work is
    left: a cold trace favors ``vectorized`` from ``AUTO_MIN_REFS``
    because the fused prelude is part of the win; with the bigint MRCT
    already in hand only the postlude differs, and ``serial`` stays
    competitive until ``AUTO_MIN_REFS_POSTLUDE``.  ``parallel-shm``
    takes over from ``vectorized`` at ``AUTO_MIN_REFS_PARALLEL_SHM``
    when more than one CPU is available — below that the fork/attach
    overhead eats the fan-out win (BENCH_parallel.json).

All engines consume the same :class:`EngineInputs` bundle, which builds
the prelude products (stripped trace, zero/one sets, MRCT — and, for
the fused path, the packed MRCT) lazily and exactly once, so switching
engines never repeats the prelude.  The ``prelude`` mode selects the
builders: ``auto`` (fast kernels when they pay), ``fast`` (always the
fast kernels), ``python`` (the paper-faithful reference builders).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.mrct import MRCT, build_mrct
from repro.core.postlude import (
    LevelHistogram,
    compute_level_histograms,
    validate_max_level,
)
from repro.core.zerosets import ZeroOneSets, build_zero_one_sets
from repro.obs.recorder import NULL_RECORDER
from repro.trace.strip import StrippedTrace, strip_trace
from repro.trace.trace import Trace

#: Engine selected when the caller does not choose one.
AUTO_ENGINE = "auto"

#: ``auto`` switches from ``serial`` to ``vectorized`` at this trace
#: length on a *cold* trace, where the fused fast-prelude path is part
#: of the win: below it the NumPy kernel's setup overhead eats it.
AUTO_MIN_REFS = 4096

#: ``auto``'s threshold when the bigint MRCT is already built (warm
#: inputs / injected products): only the postlude differs, and
#: BENCH_postlude.json shows serial ahead through N=4097 (fir: 3.2 ms
#: vs 4.6 ms) but behind by N=60000 (markov: 131 ms vs 33 ms) — the
#: geometric midpoint keeps both measured sides on their winners.
AUTO_MIN_REFS_POSTLUDE = 16384

#: ``auto``'s fallback threshold when only prelude products are
#: available (no raw trace): unique-reference count N'.  Calibrated
#: from BENCH_postlude.json: serial still wins at N'=734 (crc) and
#: loses at N'=1000 (markov) when the trace behind it is long.
AUTO_MIN_UNIQUE = 1024

#: ``auto`` escalates from ``vectorized`` to ``parallel-shm`` at this
#: trace length, and only when the host has more than one CPU: forking
#: workers, laying out the shared segment and gathering the matrix into
#: it is ~50-80 ms of fixed overhead (BENCH_parallel.json: shm trails
#: vectorized by 0.08 s at N=2x10^5 and by 0.03 s at N=10^6 on one
#: CPU) that only a multi-core walk can amortize — so the gate is the
#: size where the per-worker walk share is large enough to cover it.
AUTO_MIN_REFS_PARALLEL_SHM = 1_000_000

#: The only engines ``auto`` may return.  The bigint ``parallel`` and
#: ``streaming`` are deliberately excluded: BENCH_postlude.json shows
#: parallel slower than serial on every panel trace (0.554 s vs
#: 0.210 s on loop-1024x100) and streaming 22-125x slower (26.3 s vs
#: 0.21 s) — an auto policy must never pick a measured regression.
#: ``parallel-shm`` shares the vectorized kernel, so its floor is not a
#: regression, just overhead — hence the size + core-count gate.
AUTO_CANDIDATES = ("serial", "vectorized", "parallel-shm")

#: Prelude builder modes accepted by :class:`EngineInputs`.
PRELUDE_MODES = ("auto", "fast", "python")

#: Legacy names still accepted everywhere an engine name is.
ALIASES = {"bitmask": "serial"}


class EngineInputs:
    """Lazily built prelude products shared by every engine.

    One instance per trace; each stage (strip, zero/one sets, MRCT) is
    computed on first access and cached, so engines can be re-run or
    compared without re-running the prelude.  Pre-built products may be
    injected (the benchmark harness does this to time the postlude
    alone); when every consumer's products are injected, ``trace`` may
    be ``None``.

    When an :class:`repro.store.ArtifactStore` is attached, every stage
    consults the store first (content-addressed by the trace digest) and
    persists what it computes, so a second exploration of the same trace
    — any process, any engine — warm-starts instead of recomputing.

    Args:
        trace: the raw trace, or ``None`` when the prelude products are
            injected (engines that consume the raw trace — e.g.
            ``streaming`` — then refuse to run).
        recorder: a :class:`repro.obs.Recorder` that each lazily built
            stage reports itself to; defaults to the no-op recorder.
        store: optional :class:`repro.store.ArtifactStore`; ignored when
            ``trace`` is ``None`` (injected products have no digest to
            address them by).
        prelude: which builders construct the prelude products —
            ``"auto"`` (fast kernels when they pay for themselves),
            ``"fast"`` (always the fast kernels, degrading gracefully
            without NumPy), or ``"python"`` (the paper-faithful
            reference builders only).  Every mode produces identical
            products.
    """

    def __init__(
        self,
        trace: Optional[Trace],
        stripped: Optional[StrippedTrace] = None,
        zerosets: Optional[ZeroOneSets] = None,
        mrct: Optional[MRCT] = None,
        recorder=NULL_RECORDER,
        store=None,
        prelude: str = "auto",
    ) -> None:
        if prelude not in PRELUDE_MODES:
            raise ValueError(
                f"unknown prelude mode {prelude!r}; expected one of {PRELUDE_MODES}"
            )
        self.trace = trace
        self.recorder = recorder
        self.store = store
        self.prelude = prelude
        self._stripped = stripped
        self._zerosets = zerosets
        self._mrct = mrct
        self._packed_mrct = None
        self._trace_digest: Optional[str] = None

    def require_trace(self, why: str) -> Trace:
        """The raw trace, or ``ValueError`` naming what needed it."""
        if self.trace is None:
            raise ValueError(f"EngineInputs has no raw trace, but {why}")
        return self.trace

    @property
    def trace_digest(self) -> Optional[str]:
        """Content digest of the raw trace (``None`` without one)."""
        if self._trace_digest is None and self.trace is not None:
            from repro.store.keys import trace_digest

            self._trace_digest = trace_digest(self.trace)
        return self._trace_digest

    def _stage_key(self, codec, **params: object):
        """Artifact key for a stage codec, or ``None`` when uncacheable."""
        digest = self.trace_digest
        if digest is None:
            return None
        from repro.store.keys import ArtifactKey

        return ArtifactKey.for_stage(
            digest, codec.stage, codec.version, **params
        )

    def load_artifact(self, codec, context=None, **params: object):
        """Consult the store for one stage's artifact (``None`` on miss)."""
        if self.store is None:
            return None
        key = self._stage_key(codec, **params)
        if key is None:
            return None
        return self.store.get(
            key, codec, context=context, recorder=self.recorder
        )

    def save_artifact(self, codec, value, **params: object) -> None:
        """Persist one stage's artifact (no-op without a store/digest)."""
        if self.store is None:
            return
        key = self._stage_key(codec, **params)
        if key is None:
            return
        self.store.put(key, codec, value, recorder=self.recorder)

    def load_histograms(
        self, max_level: Optional[int] = None
    ) -> Optional[Dict[int, LevelHistogram]]:
        """Stored per-level histograms for this trace, or ``None``.

        Histogram entries are engine-independent (every engine is
        differentially tested bit-identical), keyed only by
        ``max_level``.  A bounded request that misses its exact key
        falls back to the ``full`` entry and truncates it — levels
        ``0..max_level`` of the full result are exactly the bounded
        computation.
        """
        if self.store is None:
            return None
        from repro.store.codec import HISTOGRAMS_CODEC

        level_key = self._histogram_level_key(max_level)
        exact = self.load_artifact(HISTOGRAMS_CODEC, max_level=level_key)
        if exact is not None or max_level is None:
            return exact
        full = self.load_artifact(HISTOGRAMS_CODEC, max_level="full")
        if full is None:
            return None
        return {
            level: histogram
            for level, histogram in full.items()
            if level <= max_level
        }

    def save_histograms(
        self,
        histograms: Dict[int, LevelHistogram],
        max_level: Optional[int] = None,
    ) -> None:
        """Persist per-level histograms under their ``max_level`` key."""
        if self.store is None:
            return
        from repro.store.codec import HISTOGRAMS_CODEC

        level_key = self._histogram_level_key(max_level)
        self.save_artifact(HISTOGRAMS_CODEC, histograms, max_level=level_key)

    @staticmethod
    def _histogram_level_key(max_level: Optional[int]):
        """The store key parameter for a ``max_level`` bound.

        Validates the bound even here: an unvalidated negative level
        must never be persisted as a legitimate-looking store key.
        """
        max_level = validate_max_level(max_level)
        return "full" if max_level is None else int(max_level)

    @property
    def stripped(self) -> StrippedTrace:
        if self._stripped is None:
            trace = self.require_trace("the strip prelude stage needs one")
            if self.store is not None:
                from repro.store.codec import STRIPPED_CODEC

                cached = self.load_artifact(STRIPPED_CODEC, context=trace)
                if cached is not None:
                    self._stripped = cached
                    self.recorder.record("trace_refs", cached.n)
                    self.recorder.record("unique_refs", cached.n_unique)
                    return cached
            with self.recorder.phase("prelude:strip"):
                self._stripped = self._strip(trace)
                self.recorder.record("trace_refs", self._stripped.n)
                self.recorder.record("unique_refs", self._stripped.n_unique)
            if self.store is not None:
                from repro.store.codec import STRIPPED_CODEC

                self.save_artifact(STRIPPED_CODEC, self._stripped)
        return self._stripped

    @property
    def stripped_if_built(self) -> Optional[StrippedTrace]:
        """The stripped trace only if already built/injected (no side effect)."""
        return self._stripped

    def _strip(self, trace: Trace) -> StrippedTrace:
        """Run the strip builder selected by the prelude mode."""
        if self.prelude == "python":
            return strip_trace(trace)
        if self.prelude == "fast":
            from repro.trace.strip import strip_trace_numpy

            try:
                return strip_trace_numpy(trace)
            except ImportError:
                return strip_trace(trace)
        from repro.trace.strip import strip_trace_auto

        return strip_trace_auto(trace)

    def _build_zerosets(self, stripped: StrippedTrace) -> ZeroOneSets:
        """Run the zero/one-set builder selected by the prelude mode."""
        if self.prelude != "python":
            from repro.core.vectorized import numpy_available
            from repro.core.zerosets import build_zero_one_sets_numpy
            from repro.trace.strip import NUMPY_STRIP_MIN_REFS

            if numpy_available() and (
                self.prelude == "fast" or stripped.n >= NUMPY_STRIP_MIN_REFS
            ):
                return build_zero_one_sets_numpy(stripped)
        return build_zero_one_sets(stripped)

    def _build_mrct(self, stripped: StrippedTrace) -> MRCT:
        """Run the MRCT builder selected by the prelude mode."""
        if self.prelude == "python":
            return build_mrct(stripped)
        from repro.core.prelude_fast import (
            build_mrct_auto,
            build_mrct_fast,
            build_mrct_fenwick,
        )
        from repro.core.vectorized import numpy_available

        if self.prelude == "fast":
            if numpy_available():
                return build_mrct_fast(stripped)
            return build_mrct_fenwick(stripped)
        return build_mrct_auto(stripped)

    @property
    def zerosets(self) -> ZeroOneSets:
        if self._zerosets is None:
            if self.store is not None:
                from repro.store.codec import ZEROSETS_CODEC

                cached = self.load_artifact(ZEROSETS_CODEC)
                if cached is not None:
                    self._zerosets = cached
                    return cached
            stripped = self.stripped
            with self.recorder.phase("prelude:zerosets"):
                self._zerosets = self._build_zerosets(stripped)
            if self.store is not None:
                from repro.store.codec import ZEROSETS_CODEC

                self.save_artifact(ZEROSETS_CODEC, self._zerosets)
        return self._zerosets

    @property
    def mrct(self) -> MRCT:
        if self._mrct is None:
            if self.store is not None:
                from repro.store.codec import MRCT_CODEC

                cached = self.load_artifact(MRCT_CODEC)
                if cached is not None:
                    self._mrct = cached
                    self.recorder.record(
                        "conflict_sets", cached.total_conflict_sets
                    )
                    return cached
            stripped = self.stripped
            with self.recorder.phase("prelude:mrct"):
                self._mrct = self._build_mrct(stripped)
                self.recorder.record(
                    "conflict_sets", self._mrct.total_conflict_sets
                )
            if self.store is not None:
                from repro.store.codec import MRCT_CODEC

                self.save_artifact(MRCT_CODEC, self._mrct)
        return self._mrct

    @property
    def mrct_if_built(self) -> Optional[MRCT]:
        """The bigint MRCT only if already built/injected (no side effect)."""
        return self._mrct

    @property
    def packed_mrct(self):
        """The packed conflict bit-matrix for the fused vectorized path.

        Built by :func:`repro.core.prelude_fast.build_packed_mrct`
        (store-consulted first, like every stage) — the bigint MRCT is
        never materialized on this path.  Requires NumPy; callers gate
        on :func:`repro.core.vectorized.numpy_available`.
        """
        if self._packed_mrct is None:
            from repro.core.prelude_fast import build_packed_mrct

            if self.store is not None:
                from repro.store.codec import PACKED_MRCT_CODEC

                cached = self.load_artifact(PACKED_MRCT_CODEC)
                if cached is not None:
                    self._packed_mrct = cached
                    self.recorder.record(
                        "conflict_sets", cached.total_conflict_sets
                    )
                    self.recorder.record("packed_rows", cached.n_rows)
                    return cached
            stripped = self.stripped
            with self.recorder.phase("prelude:packed-mrct"):
                self._packed_mrct = build_packed_mrct(
                    stripped, recorder=self.recorder
                )
                self.recorder.record(
                    "conflict_sets", self._packed_mrct.total_conflict_sets
                )
                self.recorder.record("packed_rows", self._packed_mrct.n_rows)
            if self.store is not None:
                from repro.store.codec import PACKED_MRCT_CODEC

                self.save_artifact(PACKED_MRCT_CODEC, self._packed_mrct)
        return self._packed_mrct

    @property
    def packed_mrct_if_built(self):
        """The packed MRCT only if already built (no side effect)."""
        return self._packed_mrct


Runner = Callable[..., Dict[int, LevelHistogram]]


@dataclass(frozen=True)
class EngineSpec:
    """A registered histogram engine.

    Attributes:
        name: canonical registry key.
        summary: one-line description (shown by ``repro engines``).
        memory: qualitative working-set note for the selection table.
        best_for: when to pick this engine.
        runner: callable ``runner(inputs, max_level=None, **options)``
            returning the per-level histograms.
        options: the option names this engine accepts; :meth:`compute`
            rejects anything else, so a typo'd option fails loudly
            instead of silently running with defaults.
        requires_numpy: True when the fast path needs NumPy (the engine
            must still *work* without it, falling back internally).
    """

    name: str
    summary: str
    memory: str
    best_for: str
    runner: Runner
    options: Tuple[str, ...] = ()
    requires_numpy: bool = False

    def available(self) -> bool:
        """True when the engine's fast path can run in this interpreter."""
        if not self.requires_numpy:
            return True
        from repro.core.vectorized import numpy_available

        return numpy_available()

    def accepts(self, option: str) -> bool:
        """True when this engine declares the named option."""
        return option in self.options

    def filter_options(self, options: Dict[str, object]) -> Dict[str, object]:
        """The subset of ``options`` this engine declares.

        For callers that hold one option set and dispatch to whichever
        engine was selected (the explorer does this with ``processes``);
        user-supplied options should instead go through :meth:`compute`
        unfiltered so typos are caught.
        """
        return {k: v for k, v in options.items() if k in self.options}

    def compute(
        self,
        inputs: EngineInputs,
        max_level: Optional[int] = None,
        **options: object,
    ) -> Dict[int, LevelHistogram]:
        """Run this engine on the given prelude products.

        When the inputs carry an artifact store, a stored histogram
        entry for this trace short-circuits the run entirely — engine
        options (worker counts etc.) never affect the result, so a hit
        written by any engine serves every engine.

        Raises:
            ValueError: for a negative ``max_level`` (every engine
                rejects it identically, before the store is consulted)
                or for option names the engine does not declare (e.g. a
                typo'd ``proceses=8``).
        """
        max_level = validate_max_level(max_level)
        unknown = sorted(set(options) - set(self.options))
        if unknown:
            accepted = ", ".join(sorted(self.options)) or "(none)"
            raise ValueError(
                f"unknown option(s) for engine {self.name!r}: "
                f"{', '.join(unknown)}; accepted options: {accepted}"
            )
        recorder = inputs.recorder
        cached = inputs.load_histograms(max_level)
        if cached is not None:
            if recorder.enabled:
                recorder.record("histogram_levels", len(cached))
                recorder.record(
                    "histogram_occurrences",
                    sum(sum(h.counts.values()) for h in cached.values()),
                )
            return cached
        with recorder.phase(f"engine:{self.name}"):
            histograms = self.runner(inputs, max_level=max_level, **options)
            if recorder.enabled:
                recorder.record("histogram_levels", len(histograms))
                recorder.record(
                    "histogram_occurrences",
                    sum(sum(h.counts.values()) for h in histograms.values()),
                )
        inputs.save_histograms(histograms, max_level)
        return histograms


_REGISTRY: "OrderedDict[str, EngineSpec]" = OrderedDict()


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine to the registry (name must be new and not an alias)."""
    if spec.name in _REGISTRY or spec.name in ALIASES or spec.name == AUTO_ENGINE:
        raise ValueError(f"engine name {spec.name!r} already taken")
    _REGISTRY[spec.name] = spec
    return spec


def engine_names(include_auto: bool = True) -> Tuple[str, ...]:
    """Registered canonical engine names, in registration order."""
    names = tuple(_REGISTRY)
    return names + (AUTO_ENGINE,) if include_auto else names


def canonical_name(name: str) -> str:
    """Validate an engine name and resolve aliases (``auto`` stays ``auto``).

    Raises:
        ValueError: for names that are neither registered, aliased nor
            ``auto``.
    """
    resolved = ALIASES.get(name, name)
    if resolved != AUTO_ENGINE and resolved not in _REGISTRY:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {engine_names()}"
        )
    return resolved


def choose_auto(
    trace: Optional[Trace] = None,
    stripped: Optional[StrippedTrace] = None,
    prelude_ready: bool = False,
) -> str:
    """The concrete engine ``auto`` stands for, given what is known.

    Only :data:`AUTO_CANDIDATES` (``serial``/``vectorized``/
    ``parallel-shm``) are ever returned — see the constants' calibration
    notes.  Sizing prefers the raw trace length; when the raw trace is
    unavailable — a caller injected prelude products — it falls back to
    the stripped trace's ``n_unique`` (``>= AUTO_MIN_UNIQUE``) rather
    than silently treating the unknown trace as short.

    Args:
        prelude_ready: True when the bigint MRCT is already built, so
            only postlude cost differs between the candidates; the
            higher :data:`AUTO_MIN_REFS_POSTLUDE` threshold applies
            (on a cold trace the fused fast prelude tilts the balance
            toward ``vectorized`` much earlier).
    """
    from repro.core.vectorized import numpy_available

    if not numpy_available():
        return "serial"
    threshold = AUTO_MIN_REFS_POSTLUDE if prelude_ready else AUTO_MIN_REFS
    if trace is not None:
        if len(trace) >= AUTO_MIN_REFS_PARALLEL_SHM and _usable_cpus() >= 2:
            return "parallel-shm"
        return "vectorized" if len(trace) >= threshold else "serial"
    if stripped is not None:
        return "vectorized" if stripped.n_unique >= AUTO_MIN_UNIQUE else "serial"
    return "serial"


def _usable_cpus() -> int:
    """CPUs available for worker fan-out (module-level for testability)."""
    import os

    return os.cpu_count() or 1


def get_engine(name: str) -> EngineSpec:
    """Look up a concrete engine by (possibly aliased) name."""
    resolved = canonical_name(name)
    if resolved == AUTO_ENGINE:
        raise ValueError(
            "'auto' is a selection policy, not a concrete engine; "
            "use resolve_engine() with inputs"
        )
    return _REGISTRY[resolved]


def resolve_engine(name: str, inputs: Optional[EngineInputs] = None) -> EngineSpec:
    """Resolve a name (including ``auto`` and aliases) to an engine spec.

    ``auto`` sizes by the raw trace when the inputs carry one, else by
    the already-built stripped trace (never triggering a prelude build
    just to pick an engine).
    """
    resolved = canonical_name(name)
    if resolved == AUTO_ENGINE:
        trace = inputs.trace if inputs is not None else None
        stripped = inputs.stripped_if_built if inputs is not None else None
        prelude_ready = inputs is not None and inputs.mrct_if_built is not None
        resolved = choose_auto(trace, stripped=stripped, prelude_ready=prelude_ready)
    return _REGISTRY[resolved]


def compute_histograms(
    engine: str,
    inputs: EngineInputs,
    max_level: Optional[int] = None,
    **options: object,
) -> Dict[int, LevelHistogram]:
    """Select an engine by name and run it — the one-call dispatch path."""
    return resolve_engine(engine, inputs).compute(
        inputs, max_level=max_level, **options
    )


# -- built-in engines ----------------------------------------------------------


def _run_serial(
    inputs: EngineInputs, max_level: Optional[int] = None
) -> Dict[int, LevelHistogram]:
    return compute_level_histograms(
        inputs.zerosets, inputs.mrct, max_level=max_level
    )


def _run_parallel(
    inputs: EngineInputs,
    max_level: Optional[int] = None,
    processes: int = 2,
    split_level: int = 2,
) -> Dict[int, LevelHistogram]:
    from repro.core.parallel import compute_level_histograms_parallel

    return compute_level_histograms_parallel(
        inputs.zerosets,
        inputs.mrct,
        max_level=max_level,
        processes=processes,
        split_level=split_level,
        # The digest names the tables' content, letting repeat calls on
        # the same trace reuse the already-initialized worker pool.
        reuse_key=inputs.trace_digest,
    )


def _run_parallel_shm(
    inputs: EngineInputs,
    max_level: Optional[int] = None,
    processes: int = 2,
    split_level: int = 2,
) -> Dict[int, LevelHistogram]:
    from repro.core.vectorized import numpy_available

    if not numpy_available():
        return _run_parallel(
            inputs,
            max_level=max_level,
            processes=processes,
            split_level=split_level,
        )
    from repro.core.parallel import compute_level_histograms_parallel_shm

    # Same input preference as the vectorized engine: consume the packed
    # matrix when it exists or can be built without repeating paid-for
    # prelude work; otherwise pack the bigint MRCT.
    can_build_packed = (
        inputs.prelude != "python"
        and inputs.mrct_if_built is None
        and (inputs.trace is not None or inputs.stripped_if_built is not None)
    )
    if inputs.packed_mrct_if_built is not None or can_build_packed:
        return compute_level_histograms_parallel_shm(
            inputs.zerosets,
            packed=inputs.packed_mrct,
            max_level=max_level,
            processes=processes,
            split_level=split_level,
        )
    return compute_level_histograms_parallel_shm(
        inputs.zerosets,
        mrct=inputs.mrct,
        max_level=max_level,
        processes=processes,
        split_level=split_level,
    )


def _run_streaming(
    inputs: EngineInputs, max_level: Optional[int] = None
) -> Dict[int, LevelHistogram]:
    from repro.core.streaming import compute_level_histograms_streaming

    trace = inputs.require_trace("the streaming engine consumes the raw trace")
    return compute_level_histograms_streaming(trace, max_level=max_level)


def _run_vectorized(
    inputs: EngineInputs, max_level: Optional[int] = None
) -> Dict[int, LevelHistogram]:
    from repro.core.vectorized import (
        compute_level_histograms_packed,
        compute_level_histograms_vectorized,
        numpy_available,
    )

    if numpy_available():
        # Fused path: consume the packed conflict matrix directly, never
        # materializing bigint conflict sets.  Taken when the packed form
        # already exists, or on a cold run (no bigint MRCT built yet —
        # when one was injected or already built, packing it again would
        # repeat prelude work the caller has already paid for).
        can_build_packed = (
            inputs.prelude != "python"
            and inputs.mrct_if_built is None
            and (inputs.trace is not None or inputs.stripped_if_built is not None)
        )
        if inputs.packed_mrct_if_built is not None or can_build_packed:
            return compute_level_histograms_packed(
                inputs.zerosets,
                inputs.packed_mrct,
                max_level=max_level,
                recorder=inputs.recorder,
            )
    return compute_level_histograms_vectorized(
        inputs.zerosets,
        inputs.mrct,
        max_level=max_level,
        recorder=inputs.recorder,
    )


register_engine(
    EngineSpec(
        name="serial",
        summary="reference bigint BCAT/MRCT pipeline (pure Python)",
        memory="O(N' bits x N') sets + O(occurrences) MRCT",
        best_for="small/medium traces; the correctness baseline",
        runner=_run_serial,
    )
)
register_engine(
    EngineSpec(
        name="parallel",
        summary="BCAT subtrees across worker processes",
        memory="serial's, duplicated per worker",
        best_for="very large N x N' on multi-core hosts without NumPy",
        runner=_run_parallel,
        options=("processes", "split_level"),
    )
)
register_engine(
    EngineSpec(
        name="parallel-shm",
        summary="BCAT subtrees over workers sharing one packed matrix "
        "in shared memory",
        memory="one shared copy of the packed matrix + O(N') per worker",
        best_for="very large N on multi-core hosts with NumPy",
        runner=_run_parallel_shm,
        options=("processes", "split_level"),
        requires_numpy=True,
    )
)
register_engine(
    EngineSpec(
        name="streaming",
        summary="single LRU-stack pass over the raw trace",
        memory="O(N') — no MRCT, no zero/one sets",
        best_for="traces that dwarf RAM",
        runner=_run_streaming,
    )
)
register_engine(
    EngineSpec(
        name="vectorized",
        summary="NumPy uint64 bit-matrix kernel, fused with the fast prelude",
        memory="O(unique conflict rows x N'/64 words)",
        best_for="long loop-dominated traces when NumPy is available",
        runner=_run_vectorized,
        requires_numpy=True,
    )
)


# -- replacement-policy exploration registry ------------------------------------
#
# The histogram registry above is LRU-only by construction: every entry
# is differentially tested bit-identical against ``serial``, and FIFO
# misses are not monotone in associativity (Belady's anomaly), so they
# cannot be encoded as a LevelHistogram at all.  Policy-aware
# exploration therefore has its own registry: each entry is a factory
# producing an *explorer* (the ``AnalyticalCacheExplorer`` surface —
# ``explore``/``explore_many``/``misses``/``statistics``/
# ``resolved_engine``/``report_level``) for one replacement policy.


@dataclass(frozen=True)
class PolicyEngineSpec:
    """A registered policy-aware exploration engine.

    Attributes:
        name: replacement policy name (matches
            :class:`repro.cache.config.ReplacementKind` values).
        summary: one-line description of how the policy is explored.
        exactness: where the answers are analytical vs simulator-backed.
        factory: callable ``factory(trace, **kwargs)`` returning an
            explorer; accepts the :class:`AnalyticalCacheExplorer`
            constructor keywords (``max_depth``, ``engine``,
            ``processes``, ``prelude``, ``recorder``, ``store``).
    """

    name: str
    summary: str
    exactness: str
    factory: Callable[..., object]


_POLICY_REGISTRY: "OrderedDict[str, PolicyEngineSpec]" = OrderedDict()


def register_policy_engine(spec: PolicyEngineSpec) -> PolicyEngineSpec:
    """Add a policy engine to the registry (name must be new)."""
    if spec.name in _POLICY_REGISTRY:
        raise ValueError(f"policy engine name {spec.name!r} already taken")
    _POLICY_REGISTRY[spec.name] = spec
    return spec


def policy_names() -> Tuple[str, ...]:
    """Registered replacement-policy names, in registration order."""
    return tuple(_POLICY_REGISTRY)


def get_policy_engine(name: str) -> PolicyEngineSpec:
    """Look up a policy engine by name.

    Raises:
        ValueError: for unregistered policy names.
    """
    spec = _POLICY_REGISTRY.get(name)
    if spec is None:
        raise ValueError(
            f"unknown policy {name!r}; expected one of {policy_names()}"
        )
    return spec


def policy_explorer(policy: str, trace: Trace, **kwargs: object):
    """Build the exploration engine for a replacement policy.

    ``policy_explorer("lru", trace)`` is exactly
    ``AnalyticalCacheExplorer(trace)``; other policies return hybrid
    engines that fall back to per-depth simulation where no analytical
    shortcut is exact.
    """
    return get_policy_engine(policy).factory(trace, **kwargs)


def _make_lru_explorer(trace: Trace, **kwargs: object):
    from repro.core.explorer import AnalyticalCacheExplorer

    return AnalyticalCacheExplorer(trace, **kwargs)


def _make_fifo_explorer(trace: Trace, **kwargs: object):
    from repro.core.fifo import FIFOHybridExplorer

    return FIFOHybridExplorer(trace, **kwargs)


register_policy_engine(
    PolicyEngineSpec(
        name="lru",
        summary="the paper's fully analytical histogram pipeline",
        exactness="analytical at every (D, A)",
        factory=_make_lru_explorer,
    )
)
register_policy_engine(
    PolicyEngineSpec(
        name="fifo",
        summary="DEW-style hybrid: analytical where exact, one-pass "
        "multi-associativity simulation elsewhere",
        exactness="analytical at A=1 and at the zero-eviction bound; "
        "simulator-backed per depth in between",
        factory=_make_fifo_explorer,
    )
)
