"""DEW-style hybrid exploration engine for FIFO replacement.

FIFO caches have no inclusion (stack) property — a line resident at
associativity ``A`` need not be resident at ``A + 1`` — and exhibit
Belady's anomaly: miss counts are *not* monotone in associativity.  The
paper's histogram postlude therefore cannot model FIFO: a
:class:`~repro.core.postlude.LevelHistogram` encodes exactly the
monotone ``misses(A) = sum(counts[d] for d >= A)`` family.

Two cells of the design space are nevertheless policy-independent, and
the hybrid answers them analytically from the LRU pipeline:

* ``A = 1`` (direct-mapped): each set holds one line, so there is no
  replacement *choice* — FIFO, LRU and every other policy produce the
  same misses, which the LRU histogram already knows exactly.
* ``A >= Z(D)`` where ``Z(D)`` is the largest number of distinct lines
  any set receives at depth ``D``: no set ever evicts, so non-cold
  misses are zero under any policy.

Everything in between (``2 <= A < Z(D)``) is simulator-backed: one pass
over the trace per depth drives a :class:`repro.cache.policies.FIFOSet`
per (set, associativity) for *all* remaining associativities at once —
the same set policy and the same cold-miss accounting as
:class:`repro.cache.simulator.CacheSimulator`, so the counts are
bit-identical to ``simulate_trace`` by construction (the differential
verify grid asserts this across the corpus).

Per-depth miss tables are persisted through the artifact store under
the ``policy-misses`` stage with the policy name in the key, so FIFO
entries can never collide with (or poison) LRU histogram warm-starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cache.policies import FIFOSet
from repro.core import engines as _engines
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.trace.trace import Trace


@dataclass(frozen=True)
class PolicyMissTable:
    """Per-depth non-cold miss counts of one replacement policy.

    Attributes:
        depth: the cache depth ``D`` the table covers.
        zero_associativity: smallest ``A`` with guaranteed-zero non-cold
            misses (the per-set distinct-line occupancy bound ``Z(D)``).
        counts: ``{associativity: non_cold_misses}`` for the
            simulator-backed band ``2 <= A < zero_associativity``.
    """

    depth: int
    zero_associativity: int
    counts: Dict[int, int]


class FIFOHybridExplorer:
    """Budget-driven design-space exploration under FIFO replacement.

    Mirrors the :class:`~repro.core.explorer.AnalyticalCacheExplorer`
    surface (``explore``/``explore_percent``/``explore_many``/
    ``misses``/``statistics``/``resolved_engine``/``report_level``) so
    request execution, costing and the verify grid can treat policies
    uniformly; an internal analytical explorer supplies the prelude,
    statistics and the exact ``A = 1`` column, inheriting the engine,
    prelude mode and store (LRU warm-starts still apply).

    Because FIFO misses are not monotone in ``A``, the per-depth
    minimum associativity is found by an upward scan — the first ``A``
    within budget, which is well-defined even across Belady anomalies.
    """

    policy = "fifo"

    def __init__(
        self,
        trace: Trace,
        max_depth: Optional[int] = None,
        engine: str = _engines.AUTO_ENGINE,
        processes: int = 2,
        prelude: str = "auto",
        recorder=None,
        store=None,
    ) -> None:
        self._analytical = AnalyticalCacheExplorer(
            trace,
            max_depth=max_depth,
            engine=engine,
            processes=processes,
            prelude=prelude,
            recorder=recorder,
            store=store,
        )
        self.trace = trace
        self.engine = engine
        self.processes = processes
        self.prelude = prelude
        self.recorder = self._analytical.recorder
        self.store = store
        self._tables: Dict[int, PolicyMissTable] = {}
        self._occupancy: Dict[int, int] = {}
        self._unique: Optional[List[int]] = None
        self._digest: Optional[str] = None

    # -- delegated surface ------------------------------------------------------

    @property
    def analytical(self) -> AnalyticalCacheExplorer:
        """The wrapped LRU pipeline (prelude, histograms, statistics)."""
        return self._analytical

    @property
    def statistics(self):
        return self._analytical.statistics

    @property
    def stripped(self):
        return self._analytical.stripped

    @property
    def resolved_engine(self) -> str:
        return self._analytical.resolved_engine

    @property
    def report_level(self) -> int:
        """Deepest level reported — a trace property, policy-independent.

        A BCAT row can force misses under *any* demand policy only when
        it holds two or more unique references, so the deepest
        interesting level is the same for FIFO as for LRU.
        """
        return self._analytical.report_level

    def run_manifest(self):
        return self._analytical.run_manifest()

    # -- the hybrid miss model --------------------------------------------------

    def _unique_addresses(self) -> List[int]:
        if self._unique is None:
            self._unique = list(set(self.trace))
        return self._unique

    def zero_miss_associativity(self, depth: int) -> int:
        """``Z(D)``: smallest A that provably never evicts at depth D.

        The largest number of distinct lines mapping to one set; with
        ``A >= Z(D)`` every fill finds a free way, so non-cold misses
        are zero under *any* replacement policy.
        """
        self._check_depth(depth)
        cached = self._occupancy.get(depth)
        if cached is not None:
            return cached
        mask = depth - 1
        per_set: Dict[int, int] = {}
        for address in self._unique_addresses():
            index = address & mask
            per_set[index] = per_set.get(index, 0) + 1
        zero = max(per_set.values(), default=0)
        zero = max(zero, 1)
        self._occupancy[depth] = zero
        return zero

    @staticmethod
    def _check_depth(depth: int) -> None:
        if depth < 1 or (depth & (depth - 1)) != 0:
            raise ValueError(f"depth must be a power of two, got {depth}")

    def misses(self, depth: int, associativity: int) -> int:
        """Exact FIFO non-cold miss count of a ``depth x A`` cache."""
        self._check_depth(depth)
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        zero = self.zero_miss_associativity(depth)
        if associativity >= zero:
            return 0
        if associativity == 1:
            return self._analytical.misses(depth, 1)
        return self._table(depth).counts[associativity]

    def _table(self, depth: int) -> PolicyMissTable:
        table = self._tables.get(depth)
        if table is not None:
            return table
        table = self._load_table(depth)
        if table is None:
            table = self._simulate_depth(depth)
            self._save_table(table)
        self._tables[depth] = table
        return table

    def _simulate_depth(self, depth: int) -> PolicyMissTable:
        """One pass over the trace, all middle associativities at once.

        Exactly mirrors :class:`repro.cache.simulator.CacheSimulator`
        with one-word lines: ``line = address``, ``index = address &
        (D-1)``, ``tag = address >> log2(D)``, a
        :class:`~repro.cache.policies.FIFOSet` per occupied set, and a
        miss counted non-cold iff the address was seen before.
        """
        zero = self.zero_miss_associativity(depth)
        assocs = range(2, zero)
        index_bits = depth.bit_length() - 1
        mask = depth - 1
        sets: Dict[int, Dict[int, FIFOSet]] = {a: {} for a in assocs}
        counts: Dict[int, int] = {a: 0 for a in assocs}
        seen: set = set()
        with self.recorder.phase("fifo:simulate-depth"):
            for address in self.trace:
                index = address & mask
                tag = address >> index_bits
                first = address not in seen
                if first:
                    seen.add(address)
                for assoc in assocs:
                    per_set = sets[assoc]
                    policy = per_set.get(index)
                    if policy is None:
                        policy = FIFOSet(assoc)
                        per_set[index] = policy
                    hit, _ = policy.lookup(tag)
                    if not hit and not first:
                        counts[assoc] += 1
        return PolicyMissTable(
            depth=depth, zero_associativity=zero, counts=counts
        )

    # -- store warm-start -------------------------------------------------------
    #
    # Keys carry the policy name and depth under a stage of their own
    # ("policy-misses"), disjoint from the LRU histogram stage — a FIFO
    # entry can never be addressed by (and so never poison) an LRU
    # warm-start, and vice versa.

    def _trace_digest(self) -> Optional[str]:
        if self._digest is None:
            from repro.store.keys import trace_digest

            self._digest = trace_digest(self.trace)
        return self._digest

    def _table_key(self, depth: int):
        from repro.store.codec import POLICY_MISSES_CODEC
        from repro.store.keys import ArtifactKey

        return ArtifactKey.for_stage(
            self._trace_digest(),
            POLICY_MISSES_CODEC.stage,
            POLICY_MISSES_CODEC.version,
            policy=self.policy,
            depth=depth,
        )

    def _load_table(self, depth: int) -> Optional[PolicyMissTable]:
        if self.store is None:
            return None
        from repro.store.codec import POLICY_MISSES_CODEC

        return self.store.get(
            self._table_key(depth), POLICY_MISSES_CODEC, recorder=self.recorder
        )

    def _save_table(self, table: PolicyMissTable) -> None:
        if self.store is None:
            return
        from repro.store.codec import POLICY_MISSES_CODEC

        self.store.put(
            self._table_key(table.depth),
            POLICY_MISSES_CODEC,
            table,
            recorder=self.recorder,
        )

    # -- exploration entry points -----------------------------------------------

    def min_associativity(self, depth: int, budget: int) -> int:
        """Smallest A whose FIFO miss count is within budget.

        An upward scan, not a bisection: FIFO misses can *rise* with A
        (Belady's anomaly), so the satisfying set need not be an upper
        interval — "minimum associativity" means the first A that fits.
        """
        if budget < 0:
            raise ValueError("budget must be non-negative")
        zero = self.zero_miss_associativity(depth)
        for assoc in range(1, zero):
            if self.misses(depth, assoc) <= budget:
                return assoc
        return zero

    def explore(
        self, budget: int, include_depth_one: bool = False
    ) -> ExplorationResult:
        """Compute the optimal FIFO ``(D, A)`` set for a miss budget K."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        start = 0 if include_depth_one else 1
        instances: List[CacheInstance] = []
        for level in range(start, self.report_level + 1):
            depth = 1 << level
            assoc = self.min_associativity(depth, budget)
            instances.append(CacheInstance(depth=depth, associativity=assoc))
        misses = [self.misses(i.depth, i.associativity) for i in instances]
        return ExplorationResult(
            budget=budget,
            instances=instances,
            misses=misses,
            trace_name=self.trace.name,
        )

    def explore_percent(
        self, percent: float, include_depth_one: bool = False
    ) -> ExplorationResult:
        """Explore with K set to ``percent`` % of the trace's max misses."""
        budget = self.statistics.budget(percent)
        return self.explore(budget, include_depth_one=include_depth_one)

    def explore_many(
        self, budgets: Sequence[int], include_depth_one: bool = False
    ) -> List[ExplorationResult]:
        """Explore several budgets, reusing the cached per-depth tables."""
        return [
            self.explore(k, include_depth_one=include_depth_one)
            for k in budgets
        ]
