"""Multi-trace (application-set) exploration.

The paper's introduction motivates cache customization "to the
application set of these systems" — embedded devices ship a fixed set
of applications and the cache must serve all of them.  This module
extends the analytical algorithm to several traces at once.  Because
per-level histograms are additive across traces (each trace's conflicts
are independent), both natural composition rules stay one-pass:

* **sum** — bound the *total* non-cold misses across the set (weights
  allow per-application importance or invocation frequency);
* **each** — bound every application's misses individually (the
  worst-case guarantee); the per-depth answer is then the max of the
  per-trace minimum associativities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance
from repro.core.postlude import LevelHistogram
from repro.trace.trace import Trace


@dataclass
class MultiTraceResult:
    """Outcome of an application-set exploration.

    Attributes:
        mode: ``"sum"`` or ``"each"``.
        budget: the miss budget (total for ``sum``; per trace for ``each``).
        instances: per-depth minimal instances for the whole set.
        misses_by_trace: per trace name, the miss count of each chosen
            instance (same order as ``instances``).
    """

    mode: str
    budget: int
    instances: List[CacheInstance]
    misses_by_trace: Dict[str, List[int]]

    def as_dict(self) -> Dict[int, int]:
        """``{depth: associativity}`` mapping."""
        return {inst.depth: inst.associativity for inst in self.instances}

    def total_misses(self, index: int) -> int:
        """Summed misses of instance ``index`` across all traces."""
        return sum(per_trace[index] for per_trace in self.misses_by_trace.values())


class MultiTraceExplorer:
    """Analytical exploration over a set of traces.

    Args:
        traces: the application set; each trace needs a unique,
            non-empty name (used as its result key).
        weights: optional per-trace multipliers for ``sum`` mode
            (e.g. invocation frequencies); defaults to 1 each.
        max_depth: forwarded to the per-trace explorers.
        engine: histogram engine name (see :mod:`repro.core.engines`),
            forwarded to every per-trace explorer; ``"auto"`` picks the
            best available engine per trace.
        processes: worker count for the ``"parallel"`` engine.
        recorder: a shared :class:`repro.obs.Recorder` forwarded to every
            per-trace explorer, so one profile covers the whole set.
        store: a shared :class:`repro.store.ArtifactStore` forwarded to
            every per-trace explorer — batch runs over an application
            set then share one artifact cache.

    Example:
        >>> from repro.trace import loop_nest_trace
        >>> a = loop_nest_trace(8, 10); a.name = "a"
        >>> b = loop_nest_trace(16, 10, start=100); b.name = "b"
        >>> result = MultiTraceExplorer([a, b]).explore_each(0)
        >>> result.as_dict()[16]
        1
    """

    def __init__(
        self,
        traces: Sequence[Trace],
        weights: Optional[Sequence[int]] = None,
        max_depth: Optional[int] = None,
        engine: str = "auto",
        processes: int = 2,
        recorder=None,
        store=None,
    ) -> None:
        if not traces:
            raise ValueError("at least one trace is required")
        names = [t.name for t in traces]
        if any(not name for name in names):
            raise ValueError("every trace needs a non-empty name")
        if len(set(names)) != len(names):
            raise ValueError(f"trace names must be unique, got {names}")
        if weights is not None:
            weights = list(weights)
            if len(weights) != len(traces):
                raise ValueError("weights must match traces in length")
            if any(w < 0 for w in weights):
                raise ValueError("weights must be non-negative")
        self.traces = list(traces)
        self.weights = weights or [1] * len(traces)
        self.explorers = [
            AnalyticalCacheExplorer(
                trace,
                max_depth=max_depth,
                engine=engine,
                processes=processes,
                recorder=recorder,
                store=store,
            )
            for trace in self.traces
        ]

    @property
    def report_level(self) -> int:
        """Deepest level any member trace reports."""
        return max(explorer.report_level for explorer in self.explorers)

    def _combined_histogram(self, level: int) -> LevelHistogram:
        """Weighted sum of per-trace histograms at one level."""
        combined = LevelHistogram(level)
        for explorer, weight in zip(self.explorers, self.weights):
            histogram = explorer.histograms.get(level)
            if histogram is None or weight == 0:
                continue
            for distance, count in histogram.counts.items():
                combined.add(distance, count * weight)
        return combined

    def _misses_per_trace(
        self, instances: List[CacheInstance]
    ) -> Dict[str, List[int]]:
        return {
            trace.name: [
                explorer.misses(inst.depth, inst.associativity)
                for inst in instances
            ]
            for trace, explorer in zip(self.traces, self.explorers)
        }

    def explore_sum(self, budget: int) -> MultiTraceResult:
        """Bound the weighted total of non-cold misses across the set."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        instances: List[CacheInstance] = []
        for level in range(1, self.report_level + 1):
            combined = self._combined_histogram(level)
            assoc = combined.min_associativity(budget)
            instances.append(CacheInstance(depth=1 << level, associativity=assoc))
        return MultiTraceResult(
            mode="sum",
            budget=budget,
            instances=instances,
            misses_by_trace=self._misses_per_trace(instances),
        )

    def run(self, budget: int, mode: str = "sum") -> MultiTraceResult:
        """Dispatch to :meth:`explore_sum` or :meth:`explore_each` by name.

        .. deprecated:: 1.2
            Prefer :func:`repro.core.request.explore_request` with
            ``ExplorationRequest.multi(traces, budget=..., mode=...)``;
            this shim remains for callers holding the mode as data.
        """
        if mode == "sum":
            return self.explore_sum(budget)
        if mode == "each":
            return self.explore_each(budget)
        raise ValueError(f"mode must be 'sum' or 'each', got {mode!r}")

    def explore_each(self, budget: int) -> MultiTraceResult:
        """Bound every application's non-cold misses individually."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        instances: List[CacheInstance] = []
        for level in range(1, self.report_level + 1):
            depth = 1 << level
            assoc = 1
            for explorer in self.explorers:
                histogram = explorer.histograms.get(level)
                if histogram is None:
                    continue
                assoc = max(assoc, histogram.min_associativity(budget))
            instances.append(CacheInstance(depth=depth, associativity=assoc))
        return MultiTraceResult(
            mode="each",
            budget=budget,
            instances=instances,
            misses_by_trace=self._misses_per_trace(instances),
        )
