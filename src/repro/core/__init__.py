"""The paper's primary contribution: analytical cache design space exploration.

Given a memory-reference trace and a miss budget ``K`` (non-cold misses),
compute — without any per-configuration simulation — the minimum degree of
associativity ``A`` for every cache depth ``D`` such that a ``D x A`` LRU
cache misses at most ``K`` times beyond its cold misses.

The pipeline follows the paper's Figure 2:

1. strip the trace (:mod:`repro.trace.strip`),
2. build the per-bit zero/one sets (:mod:`repro.core.zerosets`),
3. build the Binary Cache Allocation Tree (:mod:`repro.core.bcat`,
   Algorithm 1),
4. build the Memory Reference Conflict Table (:mod:`repro.core.mrct`,
   Algorithm 2),
5. run the postlude (:mod:`repro.core.postlude`, Algorithm 3) to obtain
   the optimal ``(D, A)`` pairs.

:class:`~repro.core.explorer.AnalyticalCacheExplorer` wires the phases
together behind one call.
"""

from repro.core.instance import CacheInstance, ExplorationResult
from repro.core.zerosets import (
    ZeroOneSets,
    build_zero_one_sets,
    build_zero_one_sets_numpy,
)
from repro.core.bcat import BCAT, BCATNode, build_bcat, walk_bcat_sets
from repro.core.mrct import MRCT, build_mrct, build_mrct_naive
from repro.core.prelude_fast import (
    PackedMRCT,
    build_mrct_auto,
    build_mrct_fast,
    build_mrct_fenwick,
    build_packed_mrct,
)
from repro.core.postlude import (
    LevelHistogram,
    compute_level_histograms,
    misses_at_node,
    node_distance_histogram,
    optimal_pairs,
    optimal_pairs_algorithm3,
)
from repro.core.engines import (
    EngineInputs,
    EngineSpec,
    choose_auto,
    compute_histograms,
    engine_names,
    get_engine,
    register_engine,
    resolve_engine,
)
from repro.core.explorer import (
    AnalyticalCacheExplorer,
    explore,
    explore_many,
    explore_percent,
)
from repro.core.request import (
    ExplorationReport,
    ExplorationRequest,
    explore_request,
)
from repro.core.linesize import (
    LineInstance,
    LineSizeExplorer,
    LineSweepResult,
    explore_line_sizes,
)
from repro.core.multi import MultiTraceExplorer, MultiTraceResult
from repro.core.parallel import (
    compute_level_histograms_parallel,
    compute_level_histograms_parallel_shm,
    shutdown_worker_pool,
)
from repro.core.streaming import compute_level_histograms_streaming
from repro.core.vectorized import (
    compute_level_histograms_packed,
    compute_level_histograms_vectorized,
    numpy_available,
)
from repro.core.sensitivity import (
    SensitivityStep,
    budget_sensitivity,
    marginal_budget_for_cheaper_cache,
)
from repro.core.validation import ValidationRecord, validate_instances

__all__ = [
    "CacheInstance",
    "ExplorationResult",
    "ZeroOneSets",
    "build_zero_one_sets",
    "build_zero_one_sets_numpy",
    "BCAT",
    "BCATNode",
    "build_bcat",
    "walk_bcat_sets",
    "MRCT",
    "build_mrct",
    "build_mrct_naive",
    "PackedMRCT",
    "build_mrct_auto",
    "build_mrct_fast",
    "build_mrct_fenwick",
    "build_packed_mrct",
    "LevelHistogram",
    "compute_level_histograms",
    "misses_at_node",
    "node_distance_histogram",
    "optimal_pairs",
    "optimal_pairs_algorithm3",
    "AnalyticalCacheExplorer",
    "explore",
    "explore_many",
    "explore_percent",
    "ExplorationReport",
    "ExplorationRequest",
    "explore_request",
    "LineInstance",
    "LineSizeExplorer",
    "LineSweepResult",
    "explore_line_sizes",
    "EngineInputs",
    "EngineSpec",
    "choose_auto",
    "compute_histograms",
    "engine_names",
    "get_engine",
    "register_engine",
    "resolve_engine",
    "compute_level_histograms_parallel",
    "compute_level_histograms_parallel_shm",
    "shutdown_worker_pool",
    "compute_level_histograms_streaming",
    "compute_level_histograms_packed",
    "compute_level_histograms_vectorized",
    "numpy_available",
    "MultiTraceExplorer",
    "MultiTraceResult",
    "SensitivityStep",
    "budget_sensitivity",
    "marginal_budget_for_cheaper_cache",
    "ValidationRecord",
    "validate_instances",
]
