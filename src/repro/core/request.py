"""One entry point for every exploration shape the repo supports.

The exploration frontends accumulated divergent ad-hoc signatures:
``explore(trace, budget)``, ``explore_percent(trace, percent)``,
``explore_many(trace, budgets)``, ``explore_line_sizes(trace, budget,
line_sizes)`` and ``MultiTraceExplorer(...).run(budget, mode)``.
:class:`ExplorationRequest` is the single contract that covers all of
them: what to explore (one trace, an application set, a line-size
sweep), at which budgets (absolute K's, the paper's percent-of-max-
misses, or both), and with which machinery (engine, worker count,
recorder, artifact store).  :func:`explore_request` executes it and
returns an :class:`ExplorationReport`.

The legacy helpers remain as thin shims that build a request, so no
caller breaks; new code should construct requests::

    from repro import ExplorationRequest, explore_request

    report = explore_request(
        ExplorationRequest.single(trace, percents=(5, 10, 15, 20))
    )
    for result in report.results:
        print(result.as_dict())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core import engines as _engines
from repro.core.instance import ExplorationResult
from repro.core.linesize import LineSizeExplorer, LineSweepResult
from repro.core.multi import MultiTraceExplorer, MultiTraceResult
from repro.scenario.spec import ScenarioSpec
from repro.trace.trace import Trace

#: The exploration shapes a request can take.
MODES = ("single", "sum", "each", "linesize")

#: The machinery kwargs that predate :class:`ScenarioSpec`, with their
#: defaults.  They remain accepted as deprecation shims; when a request
#: carries an explicit scenario, any non-default loose value must agree
#: with it (conflicts fail loudly instead of silently winning).
_SCENARIO_SHIM_FIELDS = {
    "engine": _engines.AUTO_ENGINE,
    "processes": 2,
    "prelude": "auto",
    "max_depth": None,
    "include_depth_one": False,
}


@dataclass(frozen=True, eq=False)
class ExplorationRequest:
    """A complete, validated description of one exploration.

    Attributes:
        traces: traces to analyze.  ``single`` and ``linesize`` modes
            take exactly one; ``sum``/``each`` take the application set.
        mode: one of :data:`MODES` — ``single`` (one trace, the paper's
            core algorithm), ``sum``/``each`` (application-set rules of
            :class:`repro.core.multi.MultiTraceExplorer`), ``linesize``
            (sweep line sizes via
            :class:`repro.core.linesize.LineSizeExplorer`).
        budgets: absolute miss budgets K to explore.
        percents: budgets given as percent of the trace's maximum
            non-cold misses (the paper's parameterization); resolved
            against the trace statistics and explored after ``budgets``.
            ``single`` mode only.
        max_depth: deepest cache depth to report (power of two).
        include_depth_one: also report the fully associative depth-1
            column (``single`` mode only).
        line_sizes: line sizes for ``linesize`` mode.
        weights: per-trace weights for ``sum`` mode.
        engine: histogram engine name (see :mod:`repro.core.engines`).
        processes: worker count for the ``parallel`` engine.
        prelude: prelude builder mode (``auto``/``fast``/``python``;
            see :class:`repro.core.engines.EngineInputs`).  ``single``
            mode forwards it to the explorer; other modes currently run
            with the default.
        recorder: optional :class:`repro.obs.Recorder` shared by every
            explorer the request spawns.
        store: optional :class:`repro.store.ArtifactStore` shared by
            every explorer the request spawns (warm-start).
        scenario: the :class:`repro.scenario.ScenarioSpec` describing
            *how* to explore — machinery (engine/processes/prelude/
            depth bounds) plus the scenario dimensions (replacement
            policy, second level, cost model).  When omitted, one is
            built from the loose machinery kwargs above (the
            pre-scenario signature, kept as a deprecation shim); when
            given, the loose kwargs must be left at their defaults or
            agree with it, and are overwritten to mirror it so older
            call sites reading ``request.engine`` etc. keep working.

    Build via the mode-specific constructors (:meth:`single`,
    :meth:`multi`, :meth:`line_sweep`) rather than positionally.
    """

    traces: Tuple[Trace, ...]
    mode: str = "single"
    budgets: Tuple[int, ...] = ()
    percents: Tuple[float, ...] = ()
    max_depth: Optional[int] = None
    include_depth_one: bool = False
    line_sizes: Tuple[int, ...] = LineSizeExplorer.DEFAULT_LINE_SIZES
    weights: Optional[Tuple[int, ...]] = None
    engine: str = _engines.AUTO_ENGINE
    processes: int = 2
    prelude: str = "auto"
    recorder: Optional[object] = None
    store: Optional[object] = None
    scenario: Optional[ScenarioSpec] = None

    def __post_init__(self) -> None:
        self._reconcile_scenario()
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if not self.traces:
            raise ValueError("at least one trace is required")
        if self.mode in ("single", "linesize") and len(self.traces) != 1:
            raise ValueError(
                f"mode {self.mode!r} takes exactly one trace, "
                f"got {len(self.traces)}"
            )
        if self.mode != "single" and self.percents:
            raise ValueError(
                "percent budgets are only defined for mode 'single' "
                "(they scale by one trace's max misses)"
            )
        if self.mode != "single" and self.include_depth_one:
            raise ValueError(
                "include_depth_one is only supported in mode 'single'"
            )
        if self.mode != "sum" and self.weights is not None:
            raise ValueError("weights only apply to mode 'sum'")
        if self.mode != "single" and not self.budgets:
            raise ValueError(f"mode {self.mode!r} needs at least one budget")
        if any(k < 0 for k in self.budgets):
            raise ValueError("budgets must be non-negative")
        if any(p < 0 for p in self.percents):
            raise ValueError("percents must be non-negative")
        if self.mode != "single" and not self.scenario.is_baseline():
            raise ValueError(
                "policy/l2_depth/cost_model scenarios are only supported "
                f"in mode 'single', not {self.mode!r}"
            )

    def _reconcile_scenario(self) -> None:
        """Unify the scenario with the legacy loose kwargs (shim path).

        Field validation (engine names, prelude modes, policy domains)
        lives in :class:`ScenarioSpec` itself, so both spellings fail
        with identical errors.
        """
        if self.scenario is None:
            object.__setattr__(
                self,
                "scenario",
                ScenarioSpec(
                    **{
                        name: getattr(self, name)
                        for name in _SCENARIO_SHIM_FIELDS
                    }
                ),
            )
            return
        for name, default in _SCENARIO_SHIM_FIELDS.items():
            loose = getattr(self, name)
            from_spec = getattr(self.scenario, name)
            if loose != default and loose != from_spec:
                raise ValueError(
                    f"conflicting {name!r}: request kwarg {loose!r} vs "
                    f"scenario {from_spec!r} — set it on the scenario only"
                )
            object.__setattr__(self, name, from_spec)

    # -- scenario accessors -----------------------------------------------------

    @property
    def policy(self) -> str:
        """The scenario's replacement policy."""
        return self.scenario.policy

    @property
    def l2_depth(self) -> Optional[int]:
        """The scenario's L2 depth bound (``None`` = single level)."""
        return self.scenario.l2_depth

    @property
    def cost_model(self) -> Optional[str]:
        """The scenario's cost model (``None`` = miss counts only)."""
        return self.scenario.cost_model

    # -- constructors -----------------------------------------------------------

    @classmethod
    def single(
        cls,
        trace: Trace,
        budget: Optional[int] = None,
        budgets: Sequence[int] = (),
        percent: Optional[float] = None,
        percents: Sequence[float] = (),
        max_depth: Optional[int] = None,
        include_depth_one: bool = False,
        engine: str = _engines.AUTO_ENGINE,
        processes: int = 2,
        prelude: str = "auto",
        recorder=None,
        store=None,
        policy: str = "lru",
        l2_depth: Optional[int] = None,
        cost_model: Optional[str] = None,
        scenario: Optional[ScenarioSpec] = None,
    ) -> "ExplorationRequest":
        """One-trace exploration at absolute and/or percent budgets.

        Pass a :class:`~repro.scenario.ScenarioSpec` via ``scenario``,
        or spell its fields loose (``engine``/``prelude``/``policy``/
        ``l2_depth``/``cost_model``/...) — not both, unless they agree.
        """
        all_budgets = tuple(budgets) + ((budget,) if budget is not None else ())
        all_percents = tuple(percents) + (
            (percent,) if percent is not None else ()
        )
        if scenario is None:
            scenario = ScenarioSpec(
                engine=engine,
                processes=processes,
                prelude=prelude,
                max_depth=max_depth,
                include_depth_one=include_depth_one,
                policy=policy,
                l2_depth=l2_depth,
                cost_model=cost_model,
            )
        elif (policy, l2_depth, cost_model) != ("lru", None, None) and (
            policy,
            l2_depth,
            cost_model,
        ) != (scenario.policy, scenario.l2_depth, scenario.cost_model):
            raise ValueError(
                "conflicting policy/l2_depth/cost_model: set them on the "
                "scenario only"
            )
        return cls(
            traces=(trace,),
            mode="single",
            budgets=all_budgets,
            percents=all_percents,
            max_depth=max_depth,
            include_depth_one=include_depth_one,
            engine=engine,
            processes=processes,
            prelude=prelude,
            recorder=recorder,
            store=store,
            scenario=scenario,
        )

    @classmethod
    def multi(
        cls,
        traces: Sequence[Trace],
        budget: int,
        mode: str = "sum",
        weights: Optional[Sequence[int]] = None,
        max_depth: Optional[int] = None,
        engine: str = _engines.AUTO_ENGINE,
        processes: int = 2,
        recorder=None,
        store=None,
    ) -> "ExplorationRequest":
        """Application-set exploration (``sum`` or ``each`` rule)."""
        return cls(
            traces=tuple(traces),
            mode=mode,
            budgets=(budget,),
            weights=tuple(weights) if weights is not None else None,
            max_depth=max_depth,
            engine=engine,
            processes=processes,
            recorder=recorder,
            store=store,
        )

    @classmethod
    def line_sweep(
        cls,
        trace: Trace,
        budget: int,
        line_sizes: Sequence[int] = LineSizeExplorer.DEFAULT_LINE_SIZES,
        max_depth: Optional[int] = None,
        engine: str = _engines.AUTO_ENGINE,
        processes: int = 2,
        recorder=None,
        store=None,
    ) -> "ExplorationRequest":
        """Line-size sweep at one budget."""
        return cls(
            traces=(trace,),
            mode="linesize",
            budgets=(budget,),
            line_sizes=tuple(line_sizes),
            max_depth=max_depth,
            engine=engine,
            processes=processes,
            recorder=recorder,
            store=store,
        )


@dataclass
class ExplorationReport:
    """Everything one :func:`explore_request` call produced.

    Exactly one of the result collections is populated, matching the
    request's mode; :attr:`result` is the mode-agnostic "first answer"
    accessor.

    Attributes:
        mode: the request's mode, echoed.
        engine: the *resolved* concrete engine name (``auto`` decided).
        budgets: the absolute budgets explored, percent budgets resolved
            and appended in request order.
        results: per-budget results (``single`` mode).
        multi_results: per-budget set results (``sum``/``each``).
        line_sweeps: per-budget sweep results (``linesize``).
        store_stats: snapshot of the artifact store's counters after the
            run, when the request carried a store.
        scenario: the scenario extras section (JSON-ready dict from
            :func:`repro.scenario.runner.scenario_extras`) — policy,
            second-level explorations, cost rankings.  ``None`` for
            baseline scenarios, keeping pre-scenario reports (and
            ``/1``/``/1.1`` wire responses) byte-identical.
    """

    mode: str
    engine: str
    budgets: Tuple[int, ...]
    results: Tuple[ExplorationResult, ...] = ()
    multi_results: Tuple[MultiTraceResult, ...] = ()
    line_sweeps: Tuple[LineSweepResult, ...] = ()
    store_stats: Optional[Dict[str, int]] = None
    scenario: Optional[Dict] = None

    @property
    def result(self):
        """The first (often only) result, whatever the mode."""
        for collection in (self.results, self.multi_results, self.line_sweeps):
            if collection:
                return collection[0]
        return None

    def to_json_dict(self) -> Dict:
        """JSON-serializable summary of the whole report.

        Lossless: :meth:`from_json_dict` rebuilds an equal report, so
        the serve layer can ship reports over the wire.  The
        ``instances_list`` / per-sweep ``instances`` fields exist for
        that round-trip (the older map-shaped ``instances`` stays for
        human consumers and older readers).
        """
        payload: Dict[str, object] = {
            "mode": self.mode,
            "engine": self.engine,
            "budgets": list(self.budgets),
        }
        if self.results:
            payload["results"] = [r.to_json_dict() for r in self.results]
        if self.multi_results:
            payload["multi_results"] = [
                {
                    "mode": r.mode,
                    "budget": r.budget,
                    "instances": {
                        str(depth): assoc for depth, assoc in r.as_dict().items()
                    },
                    "instances_list": [
                        {"depth": inst.depth, "associativity": inst.associativity}
                        for inst in r.instances
                    ],
                    "misses_by_trace": {
                        name: list(misses)
                        for name, misses in r.misses_by_trace.items()
                    },
                }
                for r in self.multi_results
            ]
        if self.line_sweeps:
            payload["line_sweeps"] = [
                {
                    "budget": sweep.budget,
                    "trace_name": sweep.trace_name,
                    "by_line_words": {
                        str(line): result.to_json_dict()
                        for line, result in sweep.by_line_words.items()
                    },
                    "instances": [
                        {
                            "line_words": li.line_words,
                            "depth": li.instance.depth,
                            "associativity": li.instance.associativity,
                            "non_cold_misses": li.non_cold_misses,
                            "cold_misses": li.cold_misses,
                        }
                        for li in sweep.instances
                    ],
                }
                for sweep in self.line_sweeps
            ]
        if self.store_stats is not None:
            payload["store"] = dict(self.store_stats)
        if self.scenario is not None:
            payload["scenario"] = dict(self.scenario)
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "ExplorationReport":
        """Rebuild a report from :meth:`to_json_dict` output.

        Raises:
            KeyError/TypeError/ValueError: on malformed payloads.
        """
        from repro.core.instance import CacheInstance
        from repro.core.linesize import LineInstance

        results = tuple(
            ExplorationResult.from_json_dict(entry)
            for entry in payload.get("results", ())
        )
        multi_results = []
        for entry in payload.get("multi_results", ()):
            if "instances_list" in entry:
                pairs = [
                    (int(item["depth"]), int(item["associativity"]))
                    for item in entry["instances_list"]
                ]
            else:  # older writers: the map preserves instance order
                pairs = [
                    (int(depth), int(assoc))
                    for depth, assoc in entry["instances"].items()
                ]
            multi_results.append(
                MultiTraceResult(
                    mode=str(entry["mode"]),
                    budget=int(entry["budget"]),
                    instances=[CacheInstance(d, a) for d, a in pairs],
                    misses_by_trace={
                        str(name): [int(m) for m in misses]
                        for name, misses in entry["misses_by_trace"].items()
                    },
                )
            )
        line_sweeps = []
        for entry in payload.get("line_sweeps", ()):
            by_line_words = {
                int(line): ExplorationResult.from_json_dict(result)
                for line, result in entry["by_line_words"].items()
            }
            instances = [
                LineInstance(
                    line_words=int(item["line_words"]),
                    instance=CacheInstance(
                        int(item["depth"]), int(item["associativity"])
                    ),
                    non_cold_misses=int(item["non_cold_misses"]),
                    cold_misses=int(item["cold_misses"]),
                )
                for item in entry.get("instances", ())
            ]
            line_sweeps.append(
                LineSweepResult(
                    budget=int(entry["budget"]),
                    by_line_words=by_line_words,
                    instances=instances,
                    trace_name=str(entry.get("trace_name", "")),
                )
            )
        store_stats = payload.get("store")
        scenario = payload.get("scenario")
        return cls(
            mode=str(payload["mode"]),
            engine=str(payload["engine"]),
            budgets=tuple(int(k) for k in payload["budgets"]),
            results=results,
            multi_results=tuple(multi_results),
            line_sweeps=tuple(line_sweeps),
            store_stats=dict(store_stats) if store_stats is not None else None,
            scenario=dict(scenario) if scenario is not None else None,
        )


def explore_request(request: ExplorationRequest) -> ExplorationReport:
    """Execute an :class:`ExplorationRequest` — the single entry point.

    Dispatches by mode to the same machinery the legacy helpers use, so
    a request and its shim equivalent produce identical results
    (parity-tested).
    """
    if request.mode == "single":
        report = _run_single(request)
    elif request.mode in ("sum", "each"):
        report = _run_multi(request)
    else:
        report = _run_linesize(request)
    if request.store is not None:
        report.store_stats = request.store.stats.as_dict()
    return report


def _run_single(request: ExplorationRequest) -> ExplorationReport:
    spec = request.scenario
    explorer = _engines.policy_explorer(
        spec.policy,
        request.traces[0],
        max_depth=spec.max_depth,
        engine=spec.engine,
        processes=spec.processes,
        prelude=spec.prelude,
        recorder=request.recorder,
        store=request.store,
    )
    budgets = list(request.budgets)
    budgets.extend(
        explorer.statistics.budget(percent) for percent in request.percents
    )
    results = tuple(
        explorer.explore(k, include_depth_one=spec.include_depth_one)
        for k in budgets
    )
    report = ExplorationReport(
        mode=request.mode,
        engine=explorer.resolved_engine,
        budgets=tuple(budgets),
        results=results,
    )
    if not spec.is_baseline():
        from repro.scenario.runner import scenario_extras

        report.scenario = scenario_extras(
            request.traces[0],
            spec,
            tuple(budgets),
            results,
            explorer,
            recorder=request.recorder,
            store=request.store,
        )
    return report


def _run_multi(request: ExplorationRequest) -> ExplorationReport:
    multi = MultiTraceExplorer(
        list(request.traces),
        weights=list(request.weights) if request.weights is not None else None,
        max_depth=request.max_depth,
        engine=request.engine,
        processes=request.processes,
        recorder=request.recorder,
        store=request.store,
    )
    results = tuple(multi.run(k, mode=request.mode) for k in request.budgets)
    return ExplorationReport(
        mode=request.mode,
        engine=multi.explorers[0].resolved_engine,
        budgets=tuple(request.budgets),
        multi_results=results,
    )


def _run_linesize(request: ExplorationRequest) -> ExplorationReport:
    sweeper = LineSizeExplorer(
        request.traces[0],
        line_sizes=request.line_sizes,
        max_depth=request.max_depth,
        engine=request.engine,
        processes=request.processes,
        recorder=request.recorder,
        store=request.store,
    )
    sweeps = tuple(sweeper.explore(k) for k in request.budgets)
    return ExplorationReport(
        mode=request.mode,
        engine=sweeper.explorer_for(sweeper.line_sizes[0]).resolved_engine,
        budgets=tuple(request.budgets),
        line_sweeps=sweeps,
    )
