"""Shared-memory segments for the ``parallel-shm`` postlude engine.

The parallel engine's original scheme shipped the full zero/one tables
and MRCT to every worker through the pool initializer — one pickle of
the whole working set per worker process.  The packed conflict
bit-matrix is a dense ``uint64`` array, which is exactly what
``multiprocessing.shared_memory`` is for: the main process lays the
matrix (plus the small sidecar vectors) out once in a single shared
segment, and workers map it read-only at attach cost O(1), no
serialization at all.

This module owns the segment *lifecycle*; the engine logic lives in
:mod:`repro.core.parallel`:

* :func:`allocate_segment` — lay out named arrays in one segment and
  return writable NumPy views over it, so callers can fill fields
  in place (e.g. gather the row-sorted matrix straight into shared
  memory) without an intermediate copy.
* :func:`attach_segment` — map an existing segment by its
  :class:`SegmentSpec` (a tiny picklable descriptor) and return
  *read-only* views; this is the worker side.
* :func:`unlink_segment` / :func:`close_segment` — owner-side removal
  and worker-side detach.

Cleanup is belt-and-braces:

* the engine unlinks its segment in a ``finally`` block, which covers
  normal exit, worker crashes (the pool raises in the parent) and
  ``KeyboardInterrupt``;
* every segment created here is also tracked in a module registry and
  unlinked by an ``atexit`` hook, covering callers that lose their
  reference mid-exception;
* if the owning process dies without running either (SIGKILL), the
  CPython ``resource_tracker`` — which this module deliberately leaves
  registered on the create side — unlinks the segment when the tracker
  process exits.

Workers never unlink: the owner always outlives the pool (it joins the
pool before unlinking), so the tracker's bookkeeping stays consistent
— creates register, the owner's unlink unregisters, attaches in forked
workers are transient.  Tests assert that ``/dev/shm`` holds no
``repro-shm-*`` entries after normal exit, worker crash or interrupt.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from typing import Dict, Set, Tuple

from multiprocessing import shared_memory

try:  # pragma: no cover - trivial import guard
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI lane
    _np = None

#: Every segment this module creates is named with this prefix, so leak
#: checks (tests, CI) can sweep ``/dev/shm`` for leftovers.
SEGMENT_PREFIX = "repro-shm-"

#: Fields inside a segment start on this byte boundary (cache-line
#: sized, and a multiple of every dtype's alignment used here).
_ALIGNMENT = 64

#: Names of segments created (and not yet unlinked) by this process.
_owned: Set[str] = set()
_owned_lock = threading.Lock()


@dataclass(frozen=True)
class SegmentField:
    """One named array inside a segment: dtype, shape and byte offset."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class SegmentSpec:
    """A picklable descriptor of one shared segment's layout.

    This is all a worker needs to map the segment: the handful of ints
    and strings here replaces the per-worker pickle of the tables
    themselves.
    """

    name: str
    size: int
    fields: Tuple[SegmentField, ...]


def numpy_required() -> None:
    if _np is None:
        raise RuntimeError(
            "shared-memory segments hold NumPy arrays; NumPy is not installed"
        )


def _aligned(offset: int) -> int:
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _segment_name() -> str:
    """A fresh segment name: prefix + pid + random suffix.

    The pid makes leaked segments attributable; the random suffix keeps
    concurrent allocations (threads, many explorers) collision-free.
    """
    return f"{SEGMENT_PREFIX}{os.getpid()}-{os.urandom(6).hex()}"


def _map_views(
    spec: SegmentSpec, segment: shared_memory.SharedMemory, writable: bool
) -> Dict[str, "object"]:
    views: Dict[str, "object"] = {}
    for field in spec.fields:
        view = _np.ndarray(
            field.shape,
            dtype=_np.dtype(field.dtype),
            buffer=segment.buf,
            offset=field.offset,
        )
        if not writable:
            view.flags.writeable = False
        views[field.name] = view
    return views


def allocate_segment(
    layout: "Dict[str, Tuple[str, Tuple[int, ...]]]",
) -> Tuple[shared_memory.SharedMemory, SegmentSpec, Dict[str, "object"]]:
    """Create one shared segment holding the named arrays, uninitialized.

    Args:
        layout: ``{field name: (dtype string, shape)}`` in the order the
            fields should be laid out.

    Returns:
        ``(segment, spec, views)`` where ``views`` maps each field name
        to a *writable* NumPy view over the segment, for the caller to
        fill in place.  The caller owns the segment and must eventually
        :func:`unlink_segment` it (the atexit sweep and the OS resource
        tracker are fallbacks, not the plan).
    """
    numpy_required()
    fields = []
    offset = 0
    for name, (dtype, shape) in layout.items():
        offset = _aligned(offset)
        fields.append(SegmentField(name=name, dtype=dtype, shape=tuple(shape), offset=offset))
        count = 1
        for dim in shape:
            count *= int(dim)
        offset += count * _np.dtype(dtype).itemsize
    size = max(offset, 1)
    segment = shared_memory.SharedMemory(name=_segment_name(), create=True, size=size)
    with _owned_lock:
        _owned.add(segment.name)
    spec = SegmentSpec(name=segment.name, size=size, fields=tuple(fields))
    return segment, spec, _map_views(spec, segment, writable=True)


def create_segment(
    arrays: "Dict[str, object]",
) -> Tuple[shared_memory.SharedMemory, SegmentSpec]:
    """Copy named arrays into one fresh shared segment.

    Convenience over :func:`allocate_segment` for callers whose arrays
    already exist; each is copied exactly once, into place.
    """
    numpy_required()
    layout = {
        name: (_np.asarray(value).dtype.str, _np.asarray(value).shape)
        for name, value in arrays.items()
    }
    segment, spec, views = allocate_segment(layout)
    for name, value in arrays.items():
        views[name][...] = value
    return segment, spec


def attach_segment(
    spec: SegmentSpec,
) -> Tuple[shared_memory.SharedMemory, Dict[str, "object"]]:
    """Map an existing segment; return read-only views (worker side).

    The returned segment handle must stay referenced for as long as the
    views are used (the views borrow its buffer); call
    :func:`close_segment` when done.  Workers must never *unlink*.
    """
    numpy_required()
    segment = shared_memory.SharedMemory(name=spec.name, create=False)
    return segment, _map_views(spec, segment, writable=False)


def close_segment(segment: shared_memory.SharedMemory) -> None:
    """Detach a mapping without removing the segment (worker side)."""
    try:
        segment.close()
    except (OSError, BufferError):  # pragma: no cover - views still exported
        pass


def unlink_segment(segment: shared_memory.SharedMemory) -> None:
    """Detach *and remove* a segment (owner side); idempotent.

    Safe to call after a worker crash or interrupt: a segment that is
    already gone is not an error.
    """
    close_segment(segment)
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    except OSError:  # pragma: no cover - platform-specific races
        pass
    with _owned_lock:
        _owned.discard(segment.name)


def owned_segments() -> Tuple[str, ...]:
    """Names of segments this process created and has not yet unlinked."""
    with _owned_lock:
        return tuple(sorted(_owned))


def _cleanup_owned() -> None:
    """atexit sweep: unlink anything an exception path left behind."""
    with _owned_lock:
        leftover = tuple(_owned)
        _owned.clear()
    for name in leftover:
        try:
            segment = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - platform-specific races
            continue
        try:
            segment.close()
            segment.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


atexit.register(_cleanup_owned)


def leaked_segments() -> Tuple[str, ...]:
    """``repro-shm-*`` names visible in ``/dev/shm`` right now.

    The leak-check used by tests and CI.  On platforms without a
    ``/dev/shm`` view of POSIX shared memory this returns what the
    registry knows instead (still catching in-process leaks).
    """
    root = "/dev/shm"
    if os.path.isdir(root):
        try:
            return tuple(
                sorted(
                    name
                    for name in os.listdir(root)
                    if name.startswith(SEGMENT_PREFIX)
                )
            )
        except OSError:  # pragma: no cover - platform-specific
            pass
    return owned_segments()
