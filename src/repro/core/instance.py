"""Cache design points produced by the analytical explorer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache.config import CacheConfig, ReplacementKind, WritePolicy, is_power_of_two


@dataclass(frozen=True, order=True)
class CacheInstance:
    """One optimal ``(D, A)`` pair output by the algorithm.

    Attributes:
        depth: cache depth ``D`` (rows); power of two.
        associativity: minimum degree of associativity ``A`` meeting the
            miss budget at this depth.
    """

    depth: int
    associativity: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.depth):
            raise ValueError(f"depth must be a power of two, got {self.depth}")
        if self.associativity < 1:
            raise ValueError(
                f"associativity must be >= 1, got {self.associativity}"
            )

    @property
    def size_words(self) -> int:
        """Total capacity in words (the paper's ``2**log2(D) * A``)."""
        return self.depth * self.associativity

    def to_config(
        self,
        replacement: ReplacementKind = ReplacementKind.LRU,
        write_policy: WritePolicy = WritePolicy.WRITE_BACK,
    ) -> CacheConfig:
        """Materialize as a simulator :class:`CacheConfig` (one-word lines)."""
        return CacheConfig(
            depth=self.depth,
            associativity=self.associativity,
            line_words=1,
            replacement=replacement,
            write_policy=write_policy,
        )

    def __str__(self) -> str:
        return f"(D={self.depth}, A={self.associativity})"


@dataclass
class ExplorationResult:
    """Full output of one analytical exploration run.

    Attributes:
        budget: the miss budget K the run satisfied (non-cold misses).
        instances: one :class:`CacheInstance` per explored depth, in
            increasing depth order — the paper's output set.
        misses: achieved non-cold miss count for each instance (same
            order); always ``<= budget``.
        trace_name: label of the analyzed trace.
    """

    budget: int
    instances: List[CacheInstance]
    misses: List[int] = field(default_factory=list)
    trace_name: str = ""

    def __post_init__(self) -> None:
        if self.misses and len(self.misses) != len(self.instances):
            raise ValueError("misses and instances must have matching lengths")

    def associativity_for(self, depth: int) -> Optional[int]:
        """Minimum associativity at ``depth``, or None if not explored."""
        for inst in self.instances:
            if inst.depth == depth:
                return inst.associativity
        return None

    def as_dict(self) -> Dict[int, int]:
        """``{depth: associativity}`` mapping."""
        return {inst.depth: inst.associativity for inst in self.instances}

    def smallest(self) -> Optional[CacheInstance]:
        """The instance with the smallest total size (ties -> lower depth)."""
        if not self.instances:
            return None
        return min(self.instances, key=lambda inst: (inst.size_words, inst.depth))

    def to_json_dict(self) -> Dict:
        """A JSON-serializable representation (see :meth:`from_json_dict`)."""
        return {
            "budget": self.budget,
            "trace_name": self.trace_name,
            "instances": [
                {
                    "depth": inst.depth,
                    "associativity": inst.associativity,
                    "size_words": inst.size_words,
                    "misses": misses,
                }
                for inst, misses in zip(
                    self.instances, self.misses or [None] * len(self.instances)
                )
            ],
        }

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "ExplorationResult":
        """Rebuild a result from :meth:`to_json_dict` output.

        Raises:
            KeyError/TypeError/ValueError: on malformed payloads.
        """
        instances = [
            CacheInstance(
                depth=int(entry["depth"]),
                associativity=int(entry["associativity"]),
            )
            for entry in payload["instances"]
        ]
        raw_misses = [entry.get("misses") for entry in payload["instances"]]
        misses = (
            [int(m) for m in raw_misses]
            if all(m is not None for m in raw_misses) and raw_misses
            else []
        )
        return cls(
            budget=int(payload["budget"]),
            instances=instances,
            misses=misses,
            trace_name=str(payload.get("trace_name", "")),
        )

    def __iter__(self):
        return iter(self.instances)

    def __len__(self) -> int:
        return len(self.instances)
