"""Cross-validation of the analytical algorithm against simulation.

For LRU caches with one-word lines the analytical miss counts are exact,
so every instance the explorer emits must, when simulated, (a) achieve
exactly the predicted non-cold miss count and (b) stay within the budget.
These helpers package that check for tests, examples and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cache.result import SimulationResult
from repro.cache.simulator import simulate_trace
from repro.core.instance import CacheInstance, ExplorationResult
from repro.trace.trace import Trace


@dataclass(frozen=True)
class ValidationRecord:
    """Outcome of simulating one analytically derived instance.

    Attributes:
        instance: the ``(D, A)`` pair under test.
        predicted_misses: the explorer's non-cold miss count.
        simulated: the full simulation result.
        budget: the miss budget the instance was derived for.
    """

    instance: CacheInstance
    predicted_misses: int
    simulated: SimulationResult
    budget: int

    @property
    def exact(self) -> bool:
        """True when prediction equals simulation, miss for miss."""
        return self.predicted_misses == self.simulated.non_cold_misses

    @property
    def within_budget(self) -> bool:
        """True when the simulated non-cold misses respect the budget."""
        return self.simulated.non_cold_misses <= self.budget

    @property
    def ok(self) -> bool:
        """Exact *and* within budget."""
        return self.exact and self.within_budget


def validate_instances(
    trace: Trace, result: ExplorationResult
) -> List[ValidationRecord]:
    """Simulate every instance of an exploration result against its trace."""
    records: List[ValidationRecord] = []
    predicted = result.misses or [None] * len(result.instances)
    for instance, prediction in zip(result.instances, predicted):
        simulated = simulate_trace(trace, instance.to_config())
        if prediction is None:
            prediction = simulated.non_cold_misses
        records.append(
            ValidationRecord(
                instance=instance,
                predicted_misses=prediction,
                simulated=simulated,
                budget=result.budget,
            )
        )
    return records


@dataclass(frozen=True)
class MinimalityRecord:
    """Outcome of probing one instance one associativity step below.

    The analytical algorithm claims each emitted ``A`` is *minimal*:
    ``A - 1`` ways at the same depth must exceed the budget.  The
    verification oracle checks that claim against the simulator.

    Attributes:
        instance: the ``(D, A)`` pair under test (``A >= 2``).
        budget: the miss budget the instance was derived for.
        misses_below: simulated non-cold misses at ``(D, A - 1)``.
    """

    instance: CacheInstance
    budget: int
    misses_below: int

    @property
    def minimal(self) -> bool:
        """True when one step below genuinely fails the budget."""
        return self.misses_below > self.budget


def check_minimality(
    trace: Trace, result: ExplorationResult
) -> List[MinimalityRecord]:
    """Simulate each instance at ``A - 1`` ways (skipping ``A == 1``).

    Together with :func:`validate_instances` this is the full
    simulator-backed instance check: exact misses, within budget, and
    minimal associativity.
    """
    records: List[MinimalityRecord] = []
    for instance in result.instances:
        if instance.associativity < 2:
            continue
        below = CacheInstance(
            depth=instance.depth,
            associativity=instance.associativity - 1,
        )
        simulated = simulate_trace(trace, below.to_config())
        records.append(
            MinimalityRecord(
                instance=instance,
                budget=result.budget,
                misses_below=simulated.non_cold_misses,
            )
        )
    return records


def assert_all_valid(records: List[ValidationRecord]) -> None:
    """Raise :class:`AssertionError` describing the first failing record."""
    for record in records:
        if not record.exact:
            raise AssertionError(
                f"{record.instance}: predicted {record.predicted_misses} "
                f"non-cold misses but simulation measured "
                f"{record.simulated.non_cold_misses}"
            )
        if not record.within_budget:
            raise AssertionError(
                f"{record.instance}: simulated {record.simulated.non_cold_misses} "
                f"non-cold misses exceeds budget {record.budget}"
            )
