"""Parallel postlude — the paper's section 2.4 distribution note, realized.

The paper observes that bit-vector sets "allow for execution of the
algorithm on a cluster of machines by utilizing a distributed set
library, enabling the processing of very large trace files".  The same
decomposition works on one machine with worker processes: the BCAT is
cut at a *split level*; each subtree rooted there is independent (its
member sets never interact with another subtree's), so workers can
histogram whole subtrees in parallel and the main process merges the
per-level results and handles the levels above the cut.

The zero/one tables and the MRCT are shared by every subtree, so they
are shipped to each worker exactly once, through the pool's
``initializer`` — a job is just ``(root_members, root_level)``, not a
copy of the tables (shipping them per job made large-N' runs pay the
pickling cost once per subtree instead of once per worker).

Results are bit-identical to the serial
:func:`repro.core.postlude.compute_level_histograms` — enforced by tests.

Registered as the ``parallel`` engine in :mod:`repro.core.engines`; its
``processes`` and ``split_level`` options flow through the registry's
dispatch call.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Tuple

from repro.core.mrct import MRCT
from repro.core.postlude import (
    LevelHistogram,
    node_distance_histogram,
    validate_max_level,
)
from repro.core.zerosets import ZeroOneSets

# A worker's job: one subtree root.  Everything else (zero/one tables,
# MRCT, level cap) is per-worker state installed by _init_worker.
_WorkerJob = Tuple[int, int]

#: (zero, one, mrct, max_level) for the worker process, set by
#: :func:`_init_worker`; module-global so jobs stay tiny.
_worker_state: Optional[Tuple[Tuple[int, ...], Tuple[int, ...], MRCT, int]] = None


def _init_worker(
    zero: Tuple[int, ...],
    one: Tuple[int, ...],
    mrct: MRCT,
    max_level: int,
) -> None:
    """Install the tables shared by every subtree job (pool initializer)."""
    global _worker_state
    _worker_state = (zero, one, mrct, max_level)


def _subtree_histograms(job: _WorkerJob) -> Dict[int, Dict[int, int]]:
    """Histogram one BCAT subtree (runs in a worker process).

    Args:
        job: ``(root_members, root_level)``; the zero/one tables, MRCT
            and level cap come from :data:`_worker_state`.
    """
    if _worker_state is None:
        raise RuntimeError("_init_worker was not run in this process")
    root_members, root_level = job
    zero, one, mrct, max_level = _worker_state
    histograms: Dict[int, Dict[int, int]] = {}
    stack = [(root_level, root_members)]
    while stack:
        level, members = stack.pop()
        if members.bit_count() < 2:
            continue
        counts = node_distance_histogram(members, mrct)
        if counts:
            bucket = histograms.setdefault(level, {})
            for distance, count in counts.items():
                bucket[distance] = bucket.get(distance, 0) + count
        if level >= max_level:
            continue
        left = members & zero[level]
        right = members & one[level]
        if left:
            stack.append((level + 1, left))
        if right:
            stack.append((level + 1, right))
    return histograms


def compute_level_histograms_parallel(
    zerosets: ZeroOneSets,
    mrct: MRCT,
    max_level: Optional[int] = None,
    processes: int = 2,
    split_level: int = 2,
) -> Dict[int, LevelHistogram]:
    """Parallel drop-in for :func:`~repro.core.postlude.compute_level_histograms`.

    Args:
        zerosets: per-bit zero/one sets.
        mrct: the conflict table.
        max_level: deepest level to histogram (default: all address bits).
        processes: worker process count (1 short-circuits to serial work
            in-process).
        split_level: BCAT level whose nodes become work units; clamped to
            ``max_level``.  Deeper cuts yield more, smaller units.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if split_level < 0:
        raise ValueError("split_level must be >= 0")
    max_level = validate_max_level(max_level)
    limit = zerosets.address_bits if max_level is None else max_level
    limit = min(limit, zerosets.address_bits)
    split = min(split_level, limit)

    histograms: Dict[int, LevelHistogram] = {
        level: LevelHistogram(level) for level in range(limit + 1)
    }

    # Levels above the cut, plus discovery of the work units at the cut.
    jobs: List[_WorkerJob] = []
    stack: List[Tuple[int, int]] = [(0, zerosets.universe)]
    while stack:
        level, members = stack.pop()
        if members.bit_count() < 2:
            continue
        if level == split:
            jobs.append((members, level))
            continue
        counts = node_distance_histogram(members, mrct)
        histogram = histograms[level]
        for distance, count in counts.items():
            histogram.add(distance, count)
        if level >= limit:
            continue
        left = members & zerosets.zero[level]
        right = members & zerosets.one[level]
        if left:
            stack.append((level + 1, left))
        if right:
            stack.append((level + 1, right))

    init_args = (zerosets.zero, zerosets.one, mrct, limit)
    if processes == 1 or len(jobs) <= 1:
        saved = _worker_state
        _init_worker(*init_args)
        try:
            partials = [_subtree_histograms(job) for job in jobs]
        finally:
            globals()["_worker_state"] = saved
    else:
        with multiprocessing.Pool(
            processes=min(processes, len(jobs)),
            initializer=_init_worker,
            initargs=init_args,
        ) as pool:
            partials = pool.map(_subtree_histograms, jobs)

    for partial in partials:
        for level, counts in partial.items():
            histogram = histograms[level]
            for distance, count in counts.items():
                histogram.add(distance, count)
    return histograms
