"""Parallel postludes — the paper's section 2.4 distribution note, realized.

The paper observes that bit-vector sets "allow for execution of the
algorithm on a cluster of machines by utilizing a distributed set
library, enabling the processing of very large trace files".  The same
decomposition works on one machine with worker processes: the BCAT is
cut at a *split level*; each subtree rooted there is independent (its
member sets never interact with another subtree's), so workers can
histogram whole subtrees in parallel and the main process merges the
per-level results and handles the levels above the cut.

Two engines share that decomposition:

``parallel`` (:func:`compute_level_histograms_parallel`)
    The bigint engine.  The zero/one tables and the MRCT are shipped to
    each worker exactly once, through the pool's ``initializer`` — a
    job is just ``(root_members, root_level)``.  When the caller can
    name its inputs (``reuse_key`` — the trace's content digest), the
    initialized pool itself is cached between calls, so repeated
    explorations of the same trace re-pickle nothing at all.

``parallel-shm`` (:func:`compute_level_histograms_parallel_shm`)
    The shared-memory engine.  Nothing big is pickled, ever: the
    row-sorted packed conflict bit-matrix (plus weights, positions and
    the per-level split masks) is laid out once in a single
    ``multiprocessing.shared_memory`` segment
    (:mod:`repro.core.shm`), workers attach read-only, and work is
    claimed by *index* — the pool's task queue carries subtree
    numbers, one int each, and workers look the subtree's row range
    and mask up in the segment.  Each worker runs the same blocked
    NumPy walk as the ``vectorized`` engine over its row segments, so
    per-level int64 accumulation is order-independent and the merged
    result is bit-identical to serial by construction.

Results of both are bit-identical to the serial
:func:`repro.core.postlude.compute_level_histograms` — enforced by the
differential test matrix and the ``repro verify`` grid.

Registered as the ``parallel`` and ``parallel-shm`` engines in
:mod:`repro.core.engines`; their ``processes`` and ``split_level``
options flow through the registry's dispatch call.
"""

from __future__ import annotations

import atexit
import multiprocessing
from typing import Dict, List, Optional, Tuple

from repro.core.mrct import MRCT
from repro.core.postlude import (
    LevelHistogram,
    node_distance_histogram,
    validate_max_level,
)
from repro.core.zerosets import ZeroOneSets

try:  # NumPy is optional; only the shared-memory engine needs it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI lane
    _np = None

# A worker's job: one subtree root.  Everything else (zero/one tables,
# MRCT, level cap) is per-worker state installed by _init_worker.
_WorkerJob = Tuple[int, int]

#: (zero, one, mrct, max_level) for the worker process, set by
#: :func:`_init_worker`; module-global so jobs stay tiny.
_worker_state: Optional[Tuple[Tuple[int, ...], Tuple[int, ...], MRCT, int]] = None


def _init_worker(
    zero: Tuple[int, ...],
    one: Tuple[int, ...],
    mrct: MRCT,
    max_level: int,
) -> None:
    """Install the tables shared by every subtree job (pool initializer)."""
    global _worker_state
    _worker_state = (zero, one, mrct, max_level)


def _subtree_histograms(job: _WorkerJob) -> Dict[int, Dict[int, int]]:
    """Histogram one BCAT subtree (runs in a worker process).

    Args:
        job: ``(root_members, root_level)``; the zero/one tables, MRCT
            and level cap come from :data:`_worker_state`.
    """
    if _worker_state is None:
        raise RuntimeError("_init_worker was not run in this process")
    root_members, root_level = job
    zero, one, mrct, max_level = _worker_state
    histograms: Dict[int, Dict[int, int]] = {}
    stack = [(root_level, root_members)]
    while stack:
        level, members = stack.pop()
        if members.bit_count() < 2:
            continue
        counts = node_distance_histogram(members, mrct)
        if counts:
            bucket = histograms.setdefault(level, {})
            for distance, count in counts.items():
                bucket[distance] = bucket.get(distance, 0) + count
        if level >= max_level:
            continue
        left = members & zero[level]
        right = members & one[level]
        if left:
            stack.append((level + 1, left))
        if right:
            stack.append((level + 1, right))
    return histograms


#: The one cached worker pool: ``(cache_key, pool)``.  The key is
#: ``(reuse_key, limit, pool_size)`` — the reuse key (a trace content
#: digest) plus the level cap fully determine the initializer payload,
#: so a key hit means the live workers already hold the right tables
#: and ``explore_many``-style repeat calls re-pickle nothing.
_pool_cache: Optional[Tuple[Tuple, "multiprocessing.pool.Pool"]] = None


def shutdown_worker_pool() -> None:
    """Tear down the cached worker pool (idempotent; atexit-registered)."""
    global _pool_cache
    if _pool_cache is None:
        return
    _, pool = _pool_cache
    _pool_cache = None
    pool.terminate()
    pool.join()


atexit.register(shutdown_worker_pool)


def _cached_pool(cache_key: Tuple, processes: int, init_args: Tuple):
    """The cached pool for ``cache_key``, (re)creating it on a key change."""
    global _pool_cache
    if _pool_cache is not None and _pool_cache[0] == cache_key:
        return _pool_cache[1]
    shutdown_worker_pool()
    pool = multiprocessing.Pool(
        processes=processes, initializer=_init_worker, initargs=init_args
    )
    _pool_cache = (cache_key, pool)
    return pool


def compute_level_histograms_parallel(
    zerosets: ZeroOneSets,
    mrct: MRCT,
    max_level: Optional[int] = None,
    processes: int = 2,
    split_level: int = 2,
    reuse_key: Optional[str] = None,
) -> Dict[int, LevelHistogram]:
    """Parallel drop-in for :func:`~repro.core.postlude.compute_level_histograms`.

    Args:
        zerosets: per-bit zero/one sets.
        mrct: the conflict table.
        max_level: deepest level to histogram (default: all address bits).
        processes: worker process count (1 short-circuits to serial work
            in-process).
        split_level: BCAT level whose nodes become work units; clamped to
            ``max_level``.  Deeper cuts yield more, smaller units.
        reuse_key: a content key naming ``(zerosets, mrct)`` — callers
            pass the trace digest.  When given, the initialized worker
            pool is cached across calls under ``(reuse_key, max_level)``,
            so a repeat exploration of the same trace skips re-creating
            the pool and re-pickling the tables into every worker.
            ``None`` (unknown provenance) keeps the old
            pool-per-call behavior.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if split_level < 0:
        raise ValueError("split_level must be >= 0")
    max_level = validate_max_level(max_level)
    limit = zerosets.address_bits if max_level is None else max_level
    limit = min(limit, zerosets.address_bits)
    split = min(split_level, limit)

    histograms: Dict[int, LevelHistogram] = {
        level: LevelHistogram(level) for level in range(limit + 1)
    }

    # Levels above the cut, plus discovery of the work units at the cut.
    jobs: List[_WorkerJob] = []
    stack: List[Tuple[int, int]] = [(0, zerosets.universe)]
    while stack:
        level, members = stack.pop()
        if members.bit_count() < 2:
            continue
        if level == split:
            jobs.append((members, level))
            continue
        counts = node_distance_histogram(members, mrct)
        histogram = histograms[level]
        for distance, count in counts.items():
            histogram.add(distance, count)
        if level >= limit:
            continue
        left = members & zerosets.zero[level]
        right = members & zerosets.one[level]
        if left:
            stack.append((level + 1, left))
        if right:
            stack.append((level + 1, right))

    init_args = (zerosets.zero, zerosets.one, mrct, limit)
    if processes == 1 or len(jobs) <= 1:
        saved = _worker_state
        _init_worker(*init_args)
        try:
            partials = [_subtree_histograms(job) for job in jobs]
        finally:
            globals()["_worker_state"] = saved
    elif reuse_key is not None:
        pool_size = min(processes, len(jobs))
        pool = _cached_pool((reuse_key, limit, pool_size), pool_size, init_args)
        try:
            partials = pool.map(_subtree_histograms, jobs)
        except BaseException:
            # A failed/interrupted map leaves workers in an unknown
            # state; never hand a possibly-poisoned pool to the next call.
            shutdown_worker_pool()
            raise
    else:
        with multiprocessing.Pool(
            processes=min(processes, len(jobs)),
            initializer=_init_worker,
            initargs=init_args,
        ) as pool:
            partials = pool.map(_subtree_histograms, jobs)

    for partial in partials:
        for level, counts in partial.items():
            histogram = histograms[level]
            for distance, count in counts.items():
                histogram.add(distance, count)
    return histograms


# -- the shared-memory engine ---------------------------------------------------

#: Worker-side state for the shared-memory engine, installed by
#: :func:`_shm_init_worker`: ``(segment, views, limit, n_unique, jobs)``.
#: The segment handle must stay referenced — the views borrow its buffer.
_shm_worker_state = None


def _shm_init_worker(spec, limit: int, n_unique: int, jobs) -> None:
    """Attach this worker to the shared segment (pool initializer).

    ``jobs`` is the full (tiny) list of subtree descriptors —
    ``(level, mask bytes, first_position, row_lo, row_hi, cardinality)``;
    the big tables come from the segment, read-only.  Workers never
    unlink; the owner joins the pool before removing the segment.
    """
    global _shm_worker_state
    from repro.core import shm as _shm

    segment, views = _shm.attach_segment(spec)
    decoded = [
        (level, _np.frombuffer(mask, dtype=_np.uint64), first, lo, hi, card)
        for level, mask, first, lo, hi, card in jobs
    ]
    _shm_worker_state = (segment, views, limit, n_unique, decoded)


def _shm_subtree_histograms(job_index: int):
    """Histogram one BCAT subtree out of the shared segment (worker side).

    The argument is just an index — workers claim subtrees through the
    pool's task queue one int at a time, and everything else is looked
    up in the attached segment.  Returns sparse per-level counts as
    ``[(level, distances, counts), ...]`` int64 arrays; int64 addition
    is order-independent, so the parent's merge is exact regardless of
    completion order.
    """
    if _shm_worker_state is None:
        raise RuntimeError("_shm_init_worker was not run in this process")
    segment, views, limit, n_unique, jobs = _shm_worker_state
    from repro.core import vectorized as _vec

    level_counts = _np.zeros((limit + 1, n_unique + 1), dtype=_np.int64)
    _vec._walk_node(
        views["matrix"],
        views["weights"],
        views["positions"],
        views["zero_masks"],
        views["one_masks"],
        level_counts,
        limit,
        jobs[job_index],
    )
    out = []
    for level in range(limit + 1):
        distances = _np.flatnonzero(level_counts[level])
        if distances.size:
            out.append((level, distances, level_counts[level][distances]))
    return out


def compute_level_histograms_parallel_shm(
    zerosets: ZeroOneSets,
    mrct: Optional[MRCT] = None,
    packed=None,
    max_level: Optional[int] = None,
    processes: int = 2,
    split_level: int = 2,
) -> Dict[int, LevelHistogram]:
    """Shared-memory parallel drop-in for the serial postlude.

    The packed conflict bit-matrix (from ``packed``, a
    :class:`repro.core.prelude_fast.PackedMRCT`, or packed here from the
    bigint ``mrct``) is row-sorted into one shared segment together with
    its weights, positions and the per-level split masks.  On the packed
    path the row gather lands *directly* in the segment — a store-mapped
    matrix reaches the workers with exactly one copy and no pickling.
    Workers attach read-only and claim subtree indices from the pool's
    task queue; the segment is unlinked in a ``finally`` (normal exit,
    worker crash, interrupt alike), with :mod:`repro.core.shm`'s atexit
    sweep and the OS resource tracker as backstops.

    Args:
        zerosets: per-bit zero/one sets.
        mrct: the bigint conflict table (used when ``packed`` is None).
        packed: the packed conflict matrix; preferred — no bigint
            round-trip.
        max_level: deepest level to histogram (default: all address bits).
        processes: worker process count (1 walks in-process, no segment).
        split_level: BCAT level whose nodes become work units; clamped
            to the level cap.

    Raises:
        RuntimeError: when NumPy is unavailable (the registry's runner
            falls back to the bigint ``parallel`` engine before calling
            this).
        ValueError: for bad ``processes``/``split_level`` or when
            neither table is given.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    if split_level < 0:
        raise ValueError("split_level must be >= 0")
    if _np is None:
        raise RuntimeError("the parallel-shm engine requires NumPy")
    if packed is None and mrct is None:
        raise ValueError("parallel-shm needs a packed or bigint MRCT")
    from repro.core import shm as _shm
    from repro.core import vectorized as _vec

    max_level = validate_max_level(max_level)
    limit = zerosets.address_bits if max_level is None else max_level
    limit = min(limit, zerosets.address_bits)
    split = min(split_level, limit)
    nprime = zerosets.n_unique

    histograms: Dict[int, LevelHistogram] = {
        level: LevelHistogram(level) for level in range(limit + 1)
    }
    if packed is not None:
        if packed.n_unique != nprime:
            raise ValueError(
                f"packed MRCT covers {packed.n_unique} unique references, "
                f"zero/one sets cover {nprime}"
            )
        total_rows = packed.n_rows
    else:
        total_rows = mrct.total_conflict_sets
    if nprime < 2 or total_rows == 0:
        return histograms

    zero_masks, one_masks, universe = _vec._walk_tables(zerosets, limit)
    nwords = (nprime + 63) // 64
    segment = None
    try:
        if processes > 1 and packed is not None:
            # Lay the walk arrays out in shared memory up front and
            # gather the row-sorted matrix straight into the segment:
            # one copy total, even when ``packed`` is a read-only view
            # over a memory-mapped store entry.
            segment, spec, views = _shm.allocate_segment(
                {
                    "matrix": ("<u8", (total_rows, nwords)),
                    "weights": ("<f8", (total_rows,)),
                    "positions": ("<i8", (total_rows,)),
                    "zero_masks": ("<u8", (limit, nwords)),
                    "one_masks": ("<u8", (limit, nwords)),
                }
            )
            matrix, weights, positions = _vec.prepare_packed_walk(
                zerosets, limit, packed, matrix_out=views["matrix"]
            )
            views["weights"][...] = weights
            views["positions"][...] = positions
            views["zero_masks"][...] = zero_masks
            views["one_masks"][...] = one_masks
            weights = views["weights"]
            positions = views["positions"]
        elif packed is not None:
            matrix, weights, positions = _vec.prepare_packed_walk(
                zerosets, limit, packed
            )
        else:
            matrix, weights, positions = _vec.prepare_bigint_walk(
                zerosets, limit, mrct
            )
            if processes > 1:
                segment, spec = _shm.create_segment(
                    {
                        "matrix": matrix,
                        "weights": weights,
                        "positions": positions,
                        "zero_masks": zero_masks,
                        "one_masks": one_masks,
                    }
                )

        # Levels above the cut run here; nodes at the cut become jobs.
        level_counts = _np.zeros((limit + 1, nprime + 1), dtype=_np.int64)
        jobs: List[Tuple] = []
        root = (0, universe, 0, 0, int(matrix.shape[0]), nprime)
        _vec._walk_node(
            matrix,
            weights,
            positions,
            zero_masks,
            one_masks,
            level_counts,
            limit,
            root,
            split_level=split,
            jobs=jobs,
        )

        if segment is None or len(jobs) <= 1:
            for job in jobs:
                _vec._walk_node(
                    matrix, weights, positions, zero_masks, one_masks,
                    level_counts, limit, job,
                )
        else:
            payload = [
                (level, _np.ascontiguousarray(mask).tobytes(), first, lo, hi, card)
                for level, mask, first, lo, hi, card in jobs
            ]
            with multiprocessing.Pool(
                processes=min(processes, len(jobs)),
                initializer=_shm_init_worker,
                initargs=(spec, limit, nprime, payload),
            ) as pool:
                for partial in pool.imap_unordered(
                    _shm_subtree_histograms, range(len(jobs)), chunksize=1
                ):
                    for level, distances, counts in partial:
                        level_counts[level][distances] += counts
    finally:
        if segment is not None:
            _shm.unlink_segment(segment)

    _vec._flush_level_counts(level_counts, histograms)
    return histograms
