"""The Binary Cache Allocation Tree (BCAT) — paper Algorithm 1 / Figure 3.

Level ``l`` of the tree (root at level 0) partitions the unique references
into the ``2**l`` rows of a depth-``2**l`` cache: a node's left child
holds the members whose bit ``l`` is 0, the right child those whose bit
``l`` is 1.  The tree stops growing below nodes with fewer than two
members, because a row holding at most one unique reference can never
produce a non-cold miss.

Two implementations are provided, as discussed in the paper's section 2.4:

* :func:`build_bcat` materializes the whole tree (exponential space in the
  worst case) — convenient for inspection, display and the paper's running
  example;
* :func:`walk_bcat_sets` streams the node sets level-tagged via an
  explicit-stack depth-first traversal without ever storing the tree
  (linear space), which is what the production postlude uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.zerosets import ZeroOneSets, bitset_members


@dataclass
class BCATNode:
    """One node of the BCAT.

    Attributes:
        members: bit-vector set of reference identifiers mapped to this
            node's cache row.
        level: tree level (0 = root; level ``l`` <=> cache depth ``2**l``).
        left: child holding members with bit ``level`` = 0 (or None).
        right: child holding members with bit ``level`` = 1 (or None).
    """

    members: int
    level: int
    left: Optional["BCATNode"] = None
    right: Optional["BCATNode"] = None

    @property
    def cardinality(self) -> int:
        """Number of references mapped to this row."""
        return self.members.bit_count()

    @property
    def is_leaf(self) -> bool:
        """True when the tree stopped growing below this node."""
        return self.left is None and self.right is None

    def member_ids(self) -> set:
        """Members as a Python set of identifiers (display/tests)."""
        return bitset_members(self.members)


@dataclass
class BCAT:
    """A fully materialized BCAT.

    Attributes:
        root: the level-0 node containing every reference.
        address_bits: number of address bits available as index bits; the
            tree never grows deeper than this.
    """

    root: BCATNode
    address_bits: int

    @property
    def depth(self) -> int:
        """Deepest level with at least one node (the paper's BCAT.depth)."""

        def _depth(node: Optional[BCATNode]) -> int:
            if node is None:
                return -1
            if node.is_leaf:
                return node.level
            return max(_depth(node.left), _depth(node.right))

        return _depth(self.root)

    def level_nodes(self, level: int) -> List[BCATNode]:
        """All nodes at ``level`` in left-to-right order.

        Note that pruned subtrees (below nodes with < 2 members) simply do
        not appear; their rows can never conflict.
        """
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        current = [self.root]
        for _ in range(level):
            nxt: List[BCATNode] = []
            for node in current:
                if node.left is not None:
                    nxt.append(node.left)
                if node.right is not None:
                    nxt.append(node.right)
            current = nxt
        return current

    def level_sets(self, level: int) -> List[int]:
        """Member bit-vectors of all nodes at ``level``."""
        return [node.members for node in self.level_nodes(level)]

    def render(self) -> str:
        """ASCII rendering of the tree (one node per line, indented)."""
        lines: List[str] = []

        def _render(node: Optional[BCATNode], indent: int) -> None:
            if node is None:
                return
            ids = sorted(node.member_ids())
            lines.append("  " * indent + f"L{node.level} {{{','.join(map(str, ids))}}}")
            _render(node.left, indent + 1)
            _render(node.right, indent + 1)

        _render(self.root, 0)
        return "\n".join(lines)


def build_bcat(zerosets: ZeroOneSets) -> BCAT:
    """Materialize the BCAT (paper Algorithm 1).

    The root holds every identifier; a node at level ``l`` with at least
    two members is split by bit ``l`` into ``members & Z_l`` and
    ``members & O_l``.  Children are created even when empty (the paper's
    Figure 3 shows empty rows), but nothing grows *below* a node with
    fewer than two members.
    """
    bits = zerosets.address_bits

    def _grow(node: BCATNode) -> None:
        if node.level >= bits or node.cardinality < 2:
            return
        zero_mask, one_mask = zerosets.pair(node.level)
        node.left = BCATNode(node.members & zero_mask, node.level + 1)
        node.right = BCATNode(node.members & one_mask, node.level + 1)
        _grow(node.left)
        _grow(node.right)

    root = BCATNode(zerosets.universe, 0)
    _grow(root)
    return BCAT(root=root, address_bits=bits)


def walk_bcat_sets(
    zerosets: ZeroOneSets, max_level: Optional[int] = None
) -> Iterator[Tuple[int, int]]:
    """Stream ``(level, members)`` pairs depth-first without storing the tree.

    This is the linear-space traversal of the paper's section 2.4.  Only
    nodes with at least two members are yielded below the root — rows with
    fewer can never conflict, so the postlude does not need them.  Yields
    include the root (level 0, all members).

    Args:
        zerosets: the per-bit zero/one sets.
        max_level: deepest level to descend to (default: all address bits).
    """
    bits = zerosets.address_bits
    limit = bits if max_level is None else min(max_level, bits)
    stack: List[Tuple[int, int]] = [(0, zerosets.universe)]
    while stack:
        level, members = stack.pop()
        yield level, members
        if level >= limit or members.bit_count() < 2:
            continue
        zero_mask, one_mask = zerosets.pair(level)
        left = members & zero_mask
        right = members & one_mask
        if right:
            stack.append((level + 1, right))
        if left:
            stack.append((level + 1, left))


def level_set_map(
    zerosets: ZeroOneSets, max_level: Optional[int] = None
) -> Dict[int, List[int]]:
    """Group the streamed sets by level: ``{level: [members, ...]}``."""
    grouped: Dict[int, List[int]] = {}
    for level, members in walk_bcat_sets(zerosets, max_level):
        grouped.setdefault(level, []).append(members)
    return grouped
