"""Vectorized postlude: the bit-matrix kernel on NumPy ``uint64`` words.

The paper's section 2.4 credits bit-vector sets for making the analytical
pass cheap; the serial engine realizes them as Python bigints, whose
``&``/``bit_count`` are word-parallel C loops but whose *driver* — one
interpreter iteration per (occurrence, level) — dominates the wall clock
on long traces.  This engine removes that driver loop:

1. **Pack** every MRCT conflict set into one row of a ``uint64``
   bit-matrix (column ``j`` = reference with identifier ``j``, exactly
   the bigint layout, so results are bit-identical by construction).
2. **Order** the rows by the *bit-reversed* low address bits of their
   reference.  Under that order the members of every BCAT node occupy a
   contiguous identifier range, hence every node's occurrences form one
   contiguous row segment — the whole tree becomes range arithmetic.
3. **Deduplicate** repeated ``(identifier, conflict set)`` pairs into a
   single weighted row.  Loop-dominated embedded traces re-enter the same
   steady state every iteration, so this routinely compresses the row
   count from O(N) to O(N') (measured ~99x on a 1024-word loop nest).
4. **Walk** the BCAT depth-first without materializing it; each node is
   one broadcast ``AND`` + popcount + weighted ``bincount`` over its row
   segment — no per-occurrence Python, no gathers, no bit permutation.

When NumPy is missing the module stays importable and
:func:`compute_level_histograms_vectorized` silently falls back to the
pure-Python serial engine, so ``repro.core`` keeps working with no
third-party dependencies (covered by tests).

Histograms are bit-identical to
:func:`repro.core.postlude.compute_level_histograms` on every trace —
enforced by the cross-engine differential matrix and Hypothesis
equivalence tests.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.mrct import MRCT
from repro.core.postlude import (
    LevelHistogram,
    compute_level_histograms,
    validate_max_level,
)
from repro.core.zerosets import ZeroOneSets
from repro.obs.recorder import NULL_RECORDER

try:  # NumPy is optional: the engine falls back to the serial kernel.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

#: Byte budget for one node's ``block & mask`` temporary in the BCAT
#: walk.  Large nodes (the root spans every row) are processed in row
#: blocks of this size so the walk's transient memory stays flat instead
#: of scaling with the row count — at N=10^6 undeduplicated rows the
#: unblocked temporaries were 2x the matrix itself.  Sized to sit in L2
#: cache territory; calibrated with benchmarks/bench_parallel.py.
_WALK_BLOCK_BYTES = 4 * 1024 * 1024

#: Prefer the hardware popcount ufunc (NumPy >= 2.0); older NumPy builds
#: fall back to a byte lookup table.  Module-level so tests can force the
#: table path.
_USE_BITWISE_COUNT = _np is not None and hasattr(_np, "bitwise_count")

_BYTE_POPCOUNT = None  # lazy (N=256) lookup table for the fallback path


def numpy_available() -> bool:
    """True when the accelerated path can run (NumPy importable)."""
    return _np is not None


def _byte_popcount_table():
    global _BYTE_POPCOUNT
    if _BYTE_POPCOUNT is None:
        _BYTE_POPCOUNT = _np.array(
            [bin(value).count("1") for value in range(256)], dtype=_np.uint8
        )
    return _BYTE_POPCOUNT


def _row_popcounts(block, mask):
    """Per-row popcount of ``block & mask`` (block: ``(rows, W)`` uint64)."""
    masked = block & mask
    if _USE_BITWISE_COUNT:
        return _np.bitwise_count(masked).sum(axis=1, dtype=_np.int64)
    table = _byte_popcount_table()
    return table[masked.view(_np.uint8)].sum(axis=1, dtype=_np.int64)


def _mask_cardinality(mask) -> int:
    """Total set bits of a packed ``(W,)`` uint64 mask."""
    if _USE_BITWISE_COUNT:
        return int(_np.bitwise_count(mask).sum())
    table = _byte_popcount_table()
    return int(table[mask.view(_np.uint8)].sum())


def _pack_bigint(value: int, nbytes: int):
    """One Python bigint set -> aligned ``(nbytes // 8,)`` uint64 vector."""
    return _np.frombuffer(value.to_bytes(nbytes, "little"), dtype=_np.uint64).copy()


def _bit_reversed_keys(zerosets: ZeroOneSets, limit: int, nbytes: int):
    """Per-identifier sort key: the low ``limit`` address bits, reversed.

    Sorting identifiers by this key makes every BCAT node a contiguous
    identifier range: level ``l`` groups by bits ``0..l-1``, which are
    the key's ``l`` most significant bits.  The bits are reconstructed
    from the one-sets, so the engine needs nothing beyond the paper's
    prelude products.
    """
    nprime = zerosets.n_unique
    key = _np.zeros(nprime, dtype=_np.uint64)
    for bit in range(limit):
        ones = _np.frombuffer(
            zerosets.one[bit].to_bytes(nbytes, "little"), dtype=_np.uint8
        )
        column = _np.unpackbits(ones, bitorder="little", count=nprime)
        key |= column.astype(_np.uint64) << _np.uint64(limit - 1 - bit)
    return key


def _pack_conflict_rows(mrct: MRCT, perm, nbytes: int):
    """Dedupe + pack conflict sets into a row-sorted weighted bit-matrix.

    Rows are emitted in ``perm`` (bit-reversed identifier) order and
    duplicates within one identifier collapse into a single row whose
    weight is the occurrence count.  Returns ``(matrix, weights,
    positions)`` where ``positions[i]`` is the sorted position of row
    ``i``'s identifier.
    """
    total = mrct.total_conflict_sets
    packed = _np.zeros(total * nbytes, dtype=_np.uint8)
    buffer = packed.data  # aligned, NumPy-owned backing store
    weights = _np.empty(total, dtype=_np.float64)
    positions = _np.empty(total, dtype=_np.int64)
    row = 0
    offset = 0
    sets = mrct.sets
    for position, ident in enumerate(perm.tolist()):
        conflicts = sets[ident]
        if not conflicts:
            continue
        if len(conflicts) == 1:
            unique = {conflicts[0]: 1}
        else:
            unique = {}
            for conflict in conflicts:
                unique[conflict] = unique.get(conflict, 0) + 1
        for conflict, weight in unique.items():
            if conflict:
                span = (conflict.bit_length() + 7) // 8
                buffer[offset : offset + span] = conflict.to_bytes(span, "little")
            weights[row] = weight
            positions[row] = position
            row += 1
            offset += nbytes
    matrix = packed[: row * nbytes].view(_np.uint64).reshape(row, nbytes // 8)
    return matrix, weights[:row], positions[:row]


def _walk_tables(zerosets: ZeroOneSets, limit: int):
    """Packed per-level split masks and the root mask for the BCAT walk.

    Returns ``(zero_masks, one_masks, universe)`` — ``(limit, W)``
    uint64 arrays plus the ``(W,)`` all-members mask.  Small (kilobytes
    even at large N'), but shared by every node of the walk.
    """
    nprime = zerosets.n_unique
    nwords = (nprime + 63) // 64
    nbytes = nwords * 8
    zero_masks = _np.empty((limit, nwords), dtype=_np.uint64)
    one_masks = _np.empty((limit, nwords), dtype=_np.uint64)
    for bit in range(limit):
        zero_masks[bit] = _pack_bigint(zerosets.zero[bit], nbytes)
        one_masks[bit] = _pack_bigint(zerosets.one[bit], nbytes)
    universe = _np.full(nwords, _np.uint64(0xFFFF_FFFF_FFFF_FFFF))
    if nprime % 64:
        universe[-1] = _np.uint64((1 << (nprime % 64)) - 1)
    return zero_masks, one_masks, universe


def _node_counts(matrix, weights, row_lo, row_hi, mask, out) -> None:
    """Accumulate one node's weighted distance histogram into ``out``.

    Blocked: rows are processed ``_WALK_BLOCK_BYTES`` at a time, so the
    ``block & mask`` temporary never scales with the node's row count —
    the walk's transient memory stays flat even at the root node of an
    undeduplicated million-row matrix, and each block's popcount input
    stays cache-resident.
    """
    words = max(int(matrix.shape[1]), 1)
    block_rows = max(_WALK_BLOCK_BYTES // (words * 8), 1)
    for start in range(row_lo, row_hi, block_rows):
        end = min(start + block_rows, row_hi)
        distances = _row_popcounts(matrix[start:end], mask)
        # Weighted bincount: weights are occurrence multiplicities,
        # far below 2**53, so the float64 sums are exact integers.
        binned = _np.bincount(distances, weights=weights[start:end])
        out[: len(binned)] += binned.astype(_np.int64)


def _walk_node(
    matrix,
    weights,
    positions,
    zero_masks,
    one_masks,
    level_counts,
    limit: int,
    root,
    split_level=None,
    jobs=None,
) -> None:
    """Depth-first BCAT walk from one node, accumulating into ``level_counts``.

    ``root`` is ``(level, mask, first_position, row_lo, row_hi,
    cardinality)``; ``level_counts`` is a ``(limit + 1, N' + 1)`` int64
    accumulator.  Mirrors ``bcat.walk_bcat_sets`` including its pruning
    of nodes with fewer than two members.

    When ``split_level`` is given, nodes *at* that level are appended to
    ``jobs`` (same tuple shape) instead of being descended into — the
    parallel-shm engine uses this to discover its work units with the
    exact pruning semantics of the full walk.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        level, mask, first_position, row_lo, row_hi, cardinality = node
        if cardinality < 2:
            continue
        if split_level is not None and level == split_level:
            jobs.append(node)
            continue
        if row_hi > row_lo:
            _node_counts(matrix, weights, row_lo, row_hi, mask, level_counts[level])
        if level >= limit:
            continue
        left_mask = mask & zero_masks[level]
        left_cardinality = _mask_cardinality(left_mask)
        right_cardinality = cardinality - left_cardinality
        split_position = first_position + left_cardinality
        split_row = int(_np.searchsorted(positions, split_position))
        if right_cardinality >= 2:
            stack.append(
                (
                    level + 1,
                    mask & one_masks[level],
                    split_position,
                    split_row,
                    row_hi,
                    right_cardinality,
                )
            )
        if left_cardinality >= 2:
            stack.append(
                (level + 1, left_mask, first_position, row_lo, split_row, left_cardinality)
            )


def _flush_level_counts(level_counts, histograms: Dict[int, LevelHistogram]) -> None:
    """Copy the dense per-level accumulators into sparse histograms."""
    for level, accumulated in enumerate(level_counts):
        counts = histograms[level].counts
        for distance in _np.flatnonzero(accumulated):
            counts[int(distance)] = int(accumulated[distance])


def _walk_bit_matrix(
    zerosets: ZeroOneSets,
    limit: int,
    matrix,
    weights,
    positions,
    histograms: Dict[int, LevelHistogram],
) -> None:
    """The BCAT walk over a row-sorted weighted bit-matrix.

    ``matrix`` rows must be ordered by ``positions`` (each row's
    identifier position under the bit-reversed permutation, ascending)
    so every BCAT node is one contiguous row segment; ``weights`` are
    the rows' occurrence multiplicities.  Fills ``histograms`` in
    place.  Shared by the bigint-packing path
    (:func:`compute_level_histograms_vectorized`) and the fused packed
    path (:func:`compute_level_histograms_packed`).
    """
    nprime = zerosets.n_unique
    total_rows = matrix.shape[0]
    zero_masks, one_masks, universe = _walk_tables(zerosets, limit)
    # Per-level accumulators; a conflict cardinality can never exceed N'-1.
    level_counts = _np.zeros((limit + 1, nprime + 1), dtype=_np.int64)
    root = (0, universe, 0, 0, total_rows, nprime)
    _walk_node(
        matrix, weights, positions, zero_masks, one_masks, level_counts, limit, root
    )
    _flush_level_counts(level_counts, histograms)


def _level_limit(zerosets: ZeroOneSets, max_level: Optional[int]) -> int:
    max_level = validate_max_level(max_level)
    limit = zerosets.address_bits if max_level is None else max_level
    return min(limit, zerosets.address_bits)


def prepare_bigint_walk(zerosets: ZeroOneSets, limit: int, mrct: MRCT):
    """Row-sort a bigint MRCT into walk form: ``(matrix, weights, positions)``.

    Rows are ordered by their identifier's position under the
    bit-reversed permutation, so every BCAT node is one contiguous row
    segment — the precondition of :func:`_walk_node`.
    """
    nprime = zerosets.n_unique
    nbytes = ((nprime + 63) // 64) * 8
    key = _bit_reversed_keys(zerosets, limit, nbytes)
    perm = _np.argsort(key, kind="stable")
    return _pack_conflict_rows(mrct, perm, nbytes)


def prepare_packed_walk(
    zerosets: ZeroOneSets, limit: int, packed: "PackedMRCT", matrix_out=None
):
    """Row-sort a :class:`PackedMRCT` into walk form.

    Returns ``(matrix, weights, positions)`` with rows gathered under
    the bit-reversed identifier permutation.  When ``matrix_out`` is
    given (a writable ``(rows, words)`` uint64 array — the parallel-shm
    engine passes its shared-segment view), the gather lands directly
    in it, so a store-mapped packed matrix flows into shared memory
    with exactly one copy and no intermediate allocation.
    """
    nprime = zerosets.n_unique
    nbytes = ((nprime + 63) // 64) * 8
    key = _bit_reversed_keys(zerosets, limit, nbytes)
    perm = _np.argsort(key, kind="stable")
    inverse_perm = _np.empty(nprime, dtype=_np.int64)
    inverse_perm[perm] = _np.arange(nprime, dtype=_np.int64)
    row_positions = inverse_perm[packed.idents]
    order = _np.argsort(row_positions, kind="stable")
    if matrix_out is not None:
        _np.take(packed.matrix, order, axis=0, out=matrix_out)
        matrix = matrix_out
    else:
        matrix = _np.ascontiguousarray(packed.matrix[order])
    weights = packed.weights[order].astype(_np.float64)
    positions = row_positions[order]
    return matrix, weights, positions


def compute_level_histograms_vectorized(
    zerosets: ZeroOneSets,
    mrct: MRCT,
    max_level: Optional[int] = None,
    recorder=NULL_RECORDER,
) -> Dict[int, LevelHistogram]:
    """NumPy drop-in for :func:`~repro.core.postlude.compute_level_histograms`.

    Falls back to the serial bigint kernel when NumPy is not installed;
    either way the returned histograms are bit-identical to the serial
    engine's.
    """
    if _np is None:
        return compute_level_histograms(zerosets, mrct, max_level=max_level)

    nprime = zerosets.n_unique
    limit = _level_limit(zerosets, max_level)
    histograms: Dict[int, LevelHistogram] = {
        level: LevelHistogram(level) for level in range(limit + 1)
    }
    if nprime < 2 or mrct.total_conflict_sets == 0:
        return histograms  # no row can conflict: every histogram is empty

    with recorder.phase("postlude:pack-rows"):
        matrix, weights, positions = prepare_bigint_walk(zerosets, limit, mrct)
    with recorder.phase("postlude:walk"):
        _walk_bit_matrix(zerosets, limit, matrix, weights, positions, histograms)
    return histograms


def compute_level_histograms_packed(
    zerosets: ZeroOneSets,
    packed: "PackedMRCT",
    max_level: Optional[int] = None,
    recorder=NULL_RECORDER,
) -> Dict[int, LevelHistogram]:
    """The fused postlude: consume a packed MRCT with no bigint round-trip.

    Takes the :class:`~repro.core.prelude_fast.PackedMRCT` emitted by the
    fast prelude, reorders its rows under the bit-reversed identifier
    permutation (a gather — the matrix itself is consumed as-is), and
    runs the same BCAT walk as the bigint path.  Histograms are
    bit-identical to every other engine's.  Requires NumPy — a
    ``PackedMRCT`` cannot exist without it.
    """
    if _np is None:  # pragma: no cover - packed inputs imply NumPy
        raise RuntimeError("compute_level_histograms_packed requires NumPy")
    nprime = zerosets.n_unique
    if packed.n_unique != nprime:
        raise ValueError(
            f"packed MRCT covers {packed.n_unique} unique references, "
            f"zero/one sets cover {nprime}"
        )
    limit = _level_limit(zerosets, max_level)
    histograms: Dict[int, LevelHistogram] = {
        level: LevelHistogram(level) for level in range(limit + 1)
    }
    if nprime < 2 or packed.n_rows == 0:
        return histograms

    with recorder.phase("postlude:pack-rows"):
        matrix, weights, positions = prepare_packed_walk(zerosets, limit, packed)
    with recorder.phase("postlude:walk"):
        _walk_bit_matrix(zerosets, limit, matrix, weights, positions, histograms)
    return histograms
