"""The postlude phase — paper Algorithm 3.

For every cache depth ``D = 2**level`` the postlude finds the minimum
associativity ``A`` whose total non-cold miss count is within the budget
``K``.  An occurrence of reference ``u`` (row set ``S``, conflict set
``C``) misses at associativity ``A`` iff ``|S ∩ C| >= A``.

The production path computes, per BCAT level, a *histogram* of the
quantity ``d = |S ∩ C|`` over all non-cold occurrences.  The miss count of
any associativity then falls out as ``sum(hist[d] for d >= A)``, so every
associativity is evaluated at once — this fuses the paper's Algorithms 1
and 3 exactly as its section 2.4 recommends (streaming DFS over the BCAT,
no per-``A`` rescan).  A verbatim Algorithm 3 over a materialized BCAT is
kept in :func:`optimal_pairs_algorithm3` for exposition and as a test
oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.bcat import BCAT, walk_bcat_sets
from repro.core.instance import CacheInstance
from repro.core.mrct import MRCT
from repro.core.zerosets import ZeroOneSets


def validate_max_level(max_level: Optional[int]) -> Optional[int]:
    """Validate a ``max_level`` bound shared by every engine and prelude.

    ``None`` means "no bound" (histogram every level up to the address
    width).  Anything else must be a non-negative integer; every entry
    point — serial, parallel, streaming, vectorized, the store key
    derivation, and the serve wire protocol — funnels through this one
    check so an invalid bound fails identically everywhere.

    Returns:
        the validated bound (as ``int``, or ``None``).

    Raises:
        ValueError: when ``max_level`` is negative or not an integer.
    """
    if max_level is None:
        return None
    if isinstance(max_level, bool) or not isinstance(max_level, int):
        raise ValueError(
            f"max_level must be an integer or None, got {max_level!r}"
        )
    if max_level < 0:
        raise ValueError(f"max_level must be >= 0, got {max_level}")
    return max_level


@dataclass
class LevelHistogram:
    """Histogram of per-row conflict cardinalities at one BCAT level.

    ``counts[d]`` is the number of non-cold occurrences whose row-local
    conflict cardinality ``|S ∩ C|`` equals ``d``.  Occurrences falling in
    rows that hold a single unique reference always have ``d = 0`` and may
    be omitted by the builder; they can never miss for any ``A >= 1``.
    """

    level: int
    counts: Dict[int, int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Cache depth this level models (``2**level``)."""
        return 1 << self.level

    def add(self, distance: int, count: int = 1) -> None:
        """Record ``count`` occurrences at conflict cardinality ``distance``."""
        self.counts[distance] = self.counts.get(distance, 0) + count

    def merge(self, other: "LevelHistogram") -> None:
        """Accumulate another histogram (must be the same level)."""
        if other.level != self.level:
            raise ValueError(f"level mismatch: {self.level} vs {other.level}")
        for distance, count in other.counts.items():
            self.add(distance, count)

    def misses(self, associativity: int) -> int:
        """Non-cold misses of a ``depth x associativity`` cache."""
        if associativity < 1:
            raise ValueError("associativity must be >= 1")
        return sum(c for d, c in self.counts.items() if d >= associativity)

    @property
    def zero_miss_associativity(self) -> int:
        """The paper's ``A_zero``: smallest A with zero misses."""
        return max(self.counts, default=0) + 1

    def min_associativity(self, budget: int) -> int:
        """Smallest associativity whose miss count is ``<= budget``."""
        if budget < 0:
            raise ValueError("budget must be non-negative")
        remaining = sum(self.counts.values())
        assoc = 1
        while True:
            remaining -= self.counts.get(assoc - 1, 0)
            if remaining <= budget:
                return assoc
            assoc += 1


def _iter_bits(mask: int):
    """Yield the set bit positions of ``mask``."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def node_distance_histogram(members: int, mrct: MRCT) -> Dict[int, int]:
    """Histogram of ``|S ∩ C|`` over all occurrences of a row's members."""
    counts: Dict[int, int] = {}
    for ident in _iter_bits(members):
        for conflict in mrct.sets[ident]:
            d = (members & conflict).bit_count()
            counts[d] = counts.get(d, 0) + 1
    return counts


def misses_at_node(members: int, mrct: MRCT, associativity: int) -> int:
    """Paper's per-node miss count: occurrences with ``|S ∩ C| >= A``."""
    if associativity < 1:
        raise ValueError("associativity must be >= 1")
    misses = 0
    for ident in _iter_bits(members):
        for conflict in mrct.sets[ident]:
            if (members & conflict).bit_count() >= associativity:
                misses += 1
    return misses


def compute_level_histograms(
    zerosets: ZeroOneSets,
    mrct: MRCT,
    max_level: Optional[int] = None,
) -> Dict[int, LevelHistogram]:
    """Per-level conflict histograms via the streaming BCAT traversal.

    Rows holding fewer than two unique references are skipped: every one
    of their occurrences has ``d = 0`` and can never miss at ``A >= 1``.

    Returns a histogram for every level ``0 .. limit`` (level 0 models the
    fully associative depth-1 cache), including levels whose rows are all
    conflict-free (empty histogram).
    """
    max_level = validate_max_level(max_level)
    limit = zerosets.address_bits if max_level is None else max_level
    limit = min(limit, zerosets.address_bits)
    histograms: Dict[int, LevelHistogram] = {
        level: LevelHistogram(level) for level in range(limit + 1)
    }
    for level, members in walk_bcat_sets(zerosets, max_level=limit):
        if members.bit_count() < 2:
            continue
        node_counts = node_distance_histogram(members, mrct)
        histogram = histograms[level]
        for distance, count in node_counts.items():
            histogram.add(distance, count)
    return histograms


def optimal_pairs(
    histograms: Dict[int, LevelHistogram],
    budget: int,
    max_level: Optional[int] = None,
    include_depth_one: bool = False,
) -> List[CacheInstance]:
    """Minimum associativity per depth from precomputed histograms.

    Args:
        histograms: output of :func:`compute_level_histograms`.
        budget: the paper's K (non-cold misses allowed).
        max_level: deepest level to report.  Levels beyond the deepest
            histogram are conflict-free and report ``A = 1``.
        include_depth_one: also report the depth-1 (fully associative
            column) instance; the paper's Algorithm 3 starts at depth 2.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    deepest = max(histograms) if histograms else 0
    limit = deepest if max_level is None else max_level
    start = 0 if include_depth_one else 1
    instances: List[CacheInstance] = []
    for level in range(start, limit + 1):
        histogram = histograms.get(level)
        if histogram is None:
            assoc = 1  # beyond the BCAT: every row holds at most one ref
        else:
            assoc = histogram.min_associativity(budget)
        instances.append(CacheInstance(depth=1 << level, associativity=assoc))
    return instances


def optimal_pairs_algorithm3(
    bcat: BCAT, mrct: MRCT, budget: int
) -> List[CacheInstance]:
    """Paper Algorithm 3, verbatim, over a materialized BCAT.

    For each level, associativities are tried in increasing order starting
    from 1; the miss count of the whole level is accumulated node by node
    and the candidate associativity is bumped whenever the count exceeds
    the budget.  Kept as the exposition-faithful oracle; the streaming
    histogram path in :func:`optimal_pairs` must agree with it exactly.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    instances: List[CacheInstance] = []
    for level in range(1, bcat.depth + 1):
        nodes = bcat.level_nodes(level)
        assoc = 1
        while True:
            total = sum(misses_at_node(n.members, mrct, assoc) for n in nodes)
            if total <= budget:
                break
            assoc += 1
        instances.append(CacheInstance(depth=1 << level, associativity=assoc))
    return instances
