"""High-level facade over the analytical exploration pipeline.

:class:`AnalyticalCacheExplorer` owns the prelude products (stripped
trace, zero/one sets, MRCT) and the per-level conflict histograms, all
built lazily and cached, so that exploring many miss budgets K — as the
paper does at 5/10/15/20% of max misses — costs one prelude plus one
histogram pass in total.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core import engines as _engines
from repro.core.instance import ExplorationResult
from repro.core.mrct import MRCT
from repro.core.postlude import LevelHistogram, optimal_pairs
from repro.core.zerosets import ZeroOneSets
from repro.obs.manifest import RunManifest
from repro.obs.recorder import NULL_RECORDER
from repro.trace.stats import TraceStatistics, compute_statistics
from repro.trace.strip import StrippedTrace
from repro.trace.trace import Trace


class AnalyticalCacheExplorer:
    """Analytical cache design-space explorer (the paper's Figure 1(b)).

    Args:
        trace: the word-addressed memory-reference trace to optimize for.
        max_depth: largest cache depth to report, as a power of two.
            Defaults to the smallest depth at which every row is
            conflict-free (one level past the BCAT's deepest conflicts) —
            all larger depths trivially report ``A = 1``.
        engine: which histogram engine to use, by registry name
            (see :mod:`repro.core.engines`): ``"serial"`` (the paper's
            BCAT/MRCT pipeline with bit-vector sets; ``"bitmask"`` is a
            legacy alias), ``"streaming"`` (single LRU-stack pass, O(N')
            memory, for traces that dwarf RAM), ``"parallel"`` (BCAT
            subtrees across worker processes, for very large N·N'),
            ``"vectorized"`` (NumPy bit-matrix kernel) or ``"auto"``
            (default; picks ``vectorized`` for long traces when NumPy is
            available, else ``serial``).
        processes: worker count for the ``"parallel"`` engine (only
            forwarded to engines that declare the option).
        prelude: prelude builder mode — ``"auto"`` (default; fast
            NumPy/Fenwick kernels when they pay for themselves),
            ``"fast"`` (always the fast kernels) or ``"python"`` (the
            paper-faithful reference builders).  Every mode produces
            identical products and identical results.
        recorder: a :class:`repro.obs.Recorder` for per-phase telemetry;
            defaults to the zero-overhead null recorder.  When given, a
            :class:`repro.obs.RunManifest` of the run is available from
            :meth:`run_manifest`.
        store: optional :class:`repro.store.ArtifactStore`.  Every
            pipeline stage (strip, zero/one sets, MRCT, histograms) then
            consults the store before computing and persists what it
            computes, so repeated explorations of the same trace — any
            process, any engine — warm-start from stored artifacts.
            Hits/misses/bytes land in the recorder's counters (and hence
            the run manifest).

    All engines produce bit-identical histograms, hence identical
    exploration results (tested); a store entry written by one engine
    therefore warm-starts every other.

    Example:
        >>> from repro.trace import loop_nest_trace
        >>> from repro.core import AnalyticalCacheExplorer
        >>> explorer = AnalyticalCacheExplorer(loop_nest_trace(8, 10))
        >>> result = explorer.explore(budget=0)
        >>> result.as_dict()[8]
        1
    """

    ENGINES = _engines.engine_names()

    def __init__(
        self,
        trace: Trace,
        max_depth: Optional[int] = None,
        engine: str = _engines.AUTO_ENGINE,
        processes: int = 2,
        prelude: str = "auto",
        recorder=None,
        store=None,
    ) -> None:
        if max_depth is not None:
            if max_depth < 1 or (max_depth & (max_depth - 1)) != 0:
                raise ValueError(
                    f"max_depth must be a power of two, got {max_depth}"
                )
        _engines.canonical_name(engine)  # raises ValueError on unknown names
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.trace = trace
        self.engine = engine
        self.processes = processes
        self.prelude = prelude
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.store = store
        self._max_depth = max_depth
        self._inputs = _engines.EngineInputs(
            trace, recorder=self.recorder, store=store, prelude=prelude
        )
        self._histograms: Optional[Dict[int, LevelHistogram]] = None
        self._statistics: Optional[TraceStatistics] = None
        self._engine_options: Dict[str, object] = {}

    # -- cached pipeline stages -------------------------------------------------

    @property
    def stripped(self) -> StrippedTrace:
        """The stripped trace (prelude step 1)."""
        return self._inputs.stripped

    @property
    def zerosets(self) -> ZeroOneSets:
        """The per-bit zero/one sets (prelude step 2)."""
        return self._inputs.zerosets

    @property
    def mrct(self) -> MRCT:
        """The memory-reference conflict table (prelude step 3)."""
        return self._inputs.mrct

    @property
    def resolved_engine(self) -> str:
        """The concrete engine name this explorer runs (``auto`` resolved)."""
        return _engines.resolve_engine(self.engine, self._inputs).name

    @property
    def histograms(self) -> Dict[int, LevelHistogram]:
        """Per-level conflict histograms, from the configured engine."""
        if self._histograms is None:
            max_level = None
            if self._max_depth is not None:
                max_level = self._max_depth.bit_length() - 1
            # Resolution is a phase of its own: picking "auto" may import
            # NumPy, which dominates small-trace profiles if untracked.
            with self.recorder.phase("resolve-engine"):
                spec = _engines.resolve_engine(self.engine, self._inputs)
            # Only forward the worker count to engines that declare it;
            # user-typo'd options still fail loudly inside compute().
            self._engine_options = spec.filter_options(
                {"processes": self.processes}
            )
            self._histograms = spec.compute(
                self._inputs,
                max_level=max_level,
                **self._engine_options,
            )
        return self._histograms

    @property
    def statistics(self) -> TraceStatistics:
        """Trace statistics (N, N', max misses) for budget scaling."""
        if self._statistics is None:
            with self.recorder.phase("statistics"):
                self._statistics = compute_statistics(self.trace)
        return self._statistics

    # -- depth bookkeeping ---------------------------------------------------------

    @property
    def report_level(self) -> int:
        """Deepest BCAT level reported by :meth:`explore`.

        One past the deepest level that still has conflicts (so the first
        all-direct-mapped depth appears in the output), clamped to the
        trace's address width, and overridden by ``max_depth`` when given.
        """
        if self._max_depth is not None:
            return self._max_depth.bit_length() - 1
        conflict_levels = [
            level for level, h in self.histograms.items() if h.counts
        ]
        deepest = max(conflict_levels, default=0)
        return min(deepest + 1, self.trace.address_bits)

    def misses(self, depth: int, associativity: int) -> int:
        """Exact analytical non-cold miss count of a ``depth x A`` cache."""
        if depth < 1 or (depth & (depth - 1)) != 0:
            raise ValueError(f"depth must be a power of two, got {depth}")
        level = depth.bit_length() - 1
        histogram = self.histograms.get(level)
        if histogram is None:
            if level > max(self.histograms, default=0):
                return 0  # beyond the BCAT: every row conflict-free
            raise ValueError(f"depth {depth} outside the explored range")
        return histogram.misses(associativity)

    # -- exploration entry points -----------------------------------------------------

    def explore(
        self, budget: int, include_depth_one: bool = False
    ) -> ExplorationResult:
        """Compute the optimal ``(D, A)`` set for an absolute miss budget K."""
        histograms = self.histograms  # prelude + engine phases record here
        with self.recorder.phase("postlude:optimal-pairs"):
            instances = optimal_pairs(
                histograms,
                budget,
                max_level=self.report_level,
                include_depth_one=include_depth_one,
            )
            misses = [self.misses(i.depth, i.associativity) for i in instances]
        return ExplorationResult(
            budget=budget,
            instances=instances,
            misses=misses,
            trace_name=self.trace.name,
        )

    def explore_percent(
        self, percent: float, include_depth_one: bool = False
    ) -> ExplorationResult:
        """Explore with K set to ``percent`` % of the trace's max misses.

        This is how the paper parameterizes its evaluation (K at 5, 10,
        15 and 20 percent of the depth-1 direct-mapped miss count).
        """
        budget = self.statistics.budget(percent)
        return self.explore(budget, include_depth_one=include_depth_one)

    def explore_many(
        self, budgets: Sequence[int], include_depth_one: bool = False
    ) -> List[ExplorationResult]:
        """Explore several absolute budgets, reusing all cached stages."""
        return [self.explore(k, include_depth_one=include_depth_one) for k in budgets]

    # -- telemetry export ---------------------------------------------------------

    def run_manifest(self) -> RunManifest:
        """Export this run's telemetry as a :class:`repro.obs.RunManifest`.

        Meaningful after at least one exploration (or histogram access)
        with a real :class:`repro.obs.Recorder`; with the default null
        recorder the manifest carries an empty phase tree.
        """
        stripped = self._inputs.stripped_if_built
        return RunManifest.from_recorder(
            self.recorder,
            engine=self.resolved_engine,
            requested_engine=self.engine,
            options=dict(self._engine_options),
            trace={
                "name": self.trace.name,
                "n": len(self.trace),
                "n_unique": stripped.n_unique if stripped is not None else None,
                "address_bits": self.trace.address_bits,
            },
        )


def explore(
    trace: Trace,
    budget: int,
    max_depth: Optional[int] = None,
    engine: str = _engines.AUTO_ENGINE,
    processes: int = 2,
    recorder=None,
    store=None,
    include_depth_one: bool = False,
) -> ExplorationResult:
    """One-shot convenience wrapper around :class:`AnalyticalCacheExplorer`.

    ``engine``/``processes``/``recorder``/``store`` are forwarded to the
    explorer, so the convenience path matches the class path (earlier
    versions silently ran with the default engine and no telemetry).

    .. deprecated:: 1.2
        Prefer :func:`repro.core.request.explore_request` with an
        :class:`~repro.core.request.ExplorationRequest` — this shim
        forwards there and only returns the first result.
    """
    from repro.core.request import ExplorationRequest, explore_request

    report = explore_request(
        ExplorationRequest.single(
            trace,
            budget=budget,
            max_depth=max_depth,
            engine=engine,
            processes=processes,
            recorder=recorder,
            store=store,
            include_depth_one=include_depth_one,
        )
    )
    return report.results[0]


def explore_percent(
    trace: Trace,
    percent: float,
    max_depth: Optional[int] = None,
    engine: str = _engines.AUTO_ENGINE,
    processes: int = 2,
    recorder=None,
    store=None,
    include_depth_one: bool = False,
) -> ExplorationResult:
    """One-shot percent-of-max-misses exploration (the paper's K%).

    .. deprecated:: 1.2
        Prefer :func:`repro.core.request.explore_request` with
        ``ExplorationRequest.single(trace, percent=...)``.
    """
    from repro.core.request import ExplorationRequest, explore_request

    report = explore_request(
        ExplorationRequest.single(
            trace,
            percent=percent,
            max_depth=max_depth,
            engine=engine,
            processes=processes,
            recorder=recorder,
            store=store,
            include_depth_one=include_depth_one,
        )
    )
    return report.results[0]


def explore_many(
    trace: Trace,
    budgets: Sequence[int],
    max_depth: Optional[int] = None,
    engine: str = _engines.AUTO_ENGINE,
    processes: int = 2,
    recorder=None,
    store=None,
    include_depth_one: bool = False,
) -> List[ExplorationResult]:
    """Explore several absolute budgets over one shared pipeline.

    .. deprecated:: 1.2
        Prefer :func:`repro.core.request.explore_request` with
        ``ExplorationRequest.single(trace, budgets=...)``.
    """
    from repro.core.request import ExplorationRequest, explore_request

    report = explore_request(
        ExplorationRequest.single(
            trace,
            budgets=tuple(budgets),
            max_depth=max_depth,
            engine=engine,
            processes=processes,
            recorder=recorder,
            store=store,
            include_depth_one=include_depth_one,
        )
    )
    return list(report.results)
