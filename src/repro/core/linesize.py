"""Line-size exploration — the paper's first named piece of future work.

Section 2.1 fixes the line size at one word because changing it "would
require redesign of the processor memory interface, bus architecture,
main memory controller, as well as main memory organization"; section 4
then names line size as the next design axis to incorporate.  This
module incorporates it.

The extension is exact, not approximate: a set-associative LRU cache
with ``L``-word lines indexes and tags the *line address*
``addr >> log2(L)``, so its hit/miss behavior on a trace equals that of
a one-word-line cache on the line-address trace
(:meth:`repro.trace.trace.Trace.to_line_trace`).  Sweeping ``L`` is
therefore one analytical run per line size, each sharing nothing but
the original trace.

Cross-``L`` comparison caveat, surfaced in the result type: a miss at
line size ``L`` fetches ``L`` words, so instances are compared both by
miss count (latency events) and by *traffic* in words (bus/energy
proxy), with cold misses included in traffic since cold fills move data
too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cache.config import CacheConfig, is_power_of_two
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.trace.trace import Trace


@dataclass(frozen=True)
class LineInstance:
    """One (line size, depth, associativity) design point.

    Attributes:
        line_words: words per cache line.
        instance: the (D, A) pair at that line size.
        non_cold_misses: analytical non-cold miss count (line fetches
            beyond compulsory ones).
        cold_misses: compulsory line fetches (= unique lines touched).
    """

    line_words: int
    instance: CacheInstance
    non_cold_misses: int
    cold_misses: int

    @property
    def size_words(self) -> int:
        """Total capacity: ``D * A * L`` words."""
        return self.instance.size_words * self.line_words

    @property
    def total_misses(self) -> int:
        """All line fetches, compulsory included."""
        return self.non_cold_misses + self.cold_misses

    @property
    def traffic_words(self) -> int:
        """Words moved from memory: every line fetch moves ``L`` words."""
        return self.total_misses * self.line_words

    def to_config(self) -> CacheConfig:
        """Materialize as a simulator config (LRU, write-back)."""
        return CacheConfig(
            depth=self.instance.depth,
            associativity=self.instance.associativity,
            line_words=self.line_words,
        )

    def __str__(self) -> str:
        return (
            f"(L={self.line_words}, D={self.instance.depth}, "
            f"A={self.instance.associativity})"
        )


@dataclass
class LineSweepResult:
    """Output of a line-size sweep.

    Attributes:
        budget: the per-line-size miss budget K (non-cold misses at that
            line size).
        by_line_words: the plain exploration result for each line size.
        instances: every (L, D, A) point, flattened.
        trace_name: label of the analyzed trace.
    """

    budget: int
    by_line_words: Dict[int, ExplorationResult]
    instances: List[LineInstance]
    trace_name: str = ""

    def line_sizes(self) -> List[int]:
        """Swept line sizes, ascending."""
        return sorted(self.by_line_words)

    def smallest(self) -> Optional[LineInstance]:
        """The budget-satisfying point with the least total capacity."""
        if not self.instances:
            return None
        return min(
            self.instances,
            key=lambda li: (li.size_words, li.line_words, li.instance.depth),
        )

    def least_traffic(self) -> Optional[LineInstance]:
        """The point moving the fewest words from memory."""
        if not self.instances:
            return None
        return min(
            self.instances,
            key=lambda li: (li.traffic_words, li.size_words),
        )

    def at(self, line_words: int) -> ExplorationResult:
        """The exploration result for one line size."""
        return self.by_line_words[line_words]


class LineSizeExplorer:
    """Sweeps cache line size on top of the analytical (D, A) algorithm.

    Args:
        trace: word-addressed trace.
        line_sizes: line sizes (words, powers of two) to sweep; default
            1, 2, 4, 8.
        max_depth: forwarded to each per-line-size explorer.
        engine: histogram engine name, forwarded to each per-line-size
            explorer.
        processes: worker count for the ``"parallel"`` engine.
        recorder: shared :class:`repro.obs.Recorder` across the sweep.
        store: shared :class:`repro.store.ArtifactStore` — each line
            size's derived trace gets its own content digest, so the
            whole sweep warm-starts on a second run.

    Example:
        >>> from repro.trace import loop_nest_trace
        >>> sweep = LineSizeExplorer(loop_nest_trace(64, 20)).explore(0)
        >>> sorted(sweep.by_line_words) == [1, 2, 4, 8]
        True
    """

    DEFAULT_LINE_SIZES = (1, 2, 4, 8)

    def __init__(
        self,
        trace: Trace,
        line_sizes: Iterable[int] = DEFAULT_LINE_SIZES,
        max_depth: Optional[int] = None,
        engine: str = "auto",
        processes: int = 2,
        recorder=None,
        store=None,
    ) -> None:
        sizes = sorted(set(int(s) for s in line_sizes))
        if not sizes:
            raise ValueError("at least one line size is required")
        for size in sizes:
            if not is_power_of_two(size):
                raise ValueError(f"line size must be a power of two, got {size}")
        self.trace = trace
        self.line_sizes = sizes
        self._max_depth = max_depth
        self._engine = engine
        self._processes = processes
        self._recorder = recorder
        self._store = store
        self._explorers: Dict[int, AnalyticalCacheExplorer] = {}

    def explorer_for(self, line_words: int) -> AnalyticalCacheExplorer:
        """The cached per-line-size analytical explorer."""
        if line_words not in self._explorers:
            line_trace = (
                self.trace
                if line_words == 1
                else self.trace.to_line_trace(line_words)
            )
            self._explorers[line_words] = AnalyticalCacheExplorer(
                line_trace,
                max_depth=self._max_depth,
                engine=self._engine,
                processes=self._processes,
                recorder=self._recorder,
                store=self._store,
            )
        return self._explorers[line_words]

    def misses(self, line_words: int, depth: int, associativity: int) -> int:
        """Exact non-cold miss count of an (L, D, A) cache."""
        return self.explorer_for(line_words).misses(depth, associativity)

    def explore(self, budget: int) -> LineSweepResult:
        """Optimal (D, A) per depth, for every line size, at budget K."""
        by_line: Dict[int, ExplorationResult] = {}
        flattened: List[LineInstance] = []
        for line_words in self.line_sizes:
            explorer = self.explorer_for(line_words)
            result = explorer.explore(budget)
            by_line[line_words] = result
            cold = explorer.stripped.n_unique
            for instance, misses in zip(result.instances, result.misses):
                flattened.append(
                    LineInstance(
                        line_words=line_words,
                        instance=instance,
                        non_cold_misses=misses,
                        cold_misses=cold,
                    )
                )
        return LineSweepResult(
            budget=budget,
            by_line_words=by_line,
            instances=flattened,
            trace_name=self.trace.name,
        )


def explore_line_sizes(
    trace: Trace,
    budget: int,
    line_sizes: Sequence[int] = LineSizeExplorer.DEFAULT_LINE_SIZES,
    engine: str = "auto",
    processes: int = 2,
    recorder=None,
    store=None,
) -> LineSweepResult:
    """One-shot helper around :class:`LineSizeExplorer`.

    .. deprecated:: 1.2
        Prefer :func:`repro.core.request.explore_request` with
        ``ExplorationRequest.line_sweep(trace, budget=..., ...)`` —
        this shim builds exactly that request.
    """
    from repro.core.request import ExplorationRequest, explore_request

    report = explore_request(
        ExplorationRequest.line_sweep(
            trace,
            budget=budget,
            line_sizes=line_sizes,
            engine=engine,
            processes=processes,
            recorder=recorder,
            store=store,
        )
    )
    return report.line_sweeps[0]
