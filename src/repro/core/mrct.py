"""The Memory Reference Conflict Table (MRCT) — paper Algorithm 2 / Table 4.

For each unique reference ``u`` and each of its occurrences *after the
first* (the first is always a cold miss), the MRCT stores the set of
distinct other references seen since ``u``'s previous occurrence.  An
occurrence is then a miss in a cache row holding set ``S`` with
associativity ``A`` exactly when ``|S ∩ C| >= A``.

Two builders are provided:

* :func:`build_mrct_naive` — the paper's Algorithm 2 verbatim: a per-
  unique-reference accumulator set updated on every trace step
  (``O(N * N')`` single-element updates).  Kept for exposition and small
  tests.
* :func:`build_mrct` — the hash/single-pass variant the paper recommends
  in section 2.4, fused with stripping: a global LRU stack of identifiers
  makes each conflict set an OR over the ``d`` most-recent entries, where
  ``d`` is the occurrence's global stack distance.  Total cost is the sum
  of stack distances, i.e. bounded by ``N * N'`` but typically far less
  for loop-dominated embedded traces.

Conflict sets are bit-vector ints, matching :mod:`repro.core.zerosets`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Set

from repro.core.zerosets import bitset_members
from repro.trace.strip import StrippedTrace


@dataclass
class MRCT:
    """The conflict table.

    Attributes:
        sets: ``sets[ident]`` is the list of conflict bit-vectors for that
            reference's second, third, ... occurrences, in trace order.
        n_unique: number of unique references.
    """

    sets: List[List[int]]
    n_unique: int

    def conflict_sets(self, ident: int) -> List[int]:
        """Conflict bit-vectors for one reference (may be empty)."""
        return self.sets[ident]

    def conflict_id_sets(self, ident: int) -> List[Set[int]]:
        """Conflict sets expanded to Python sets (display/tests)."""
        return [bitset_members(mask) for mask in self.sets[ident]]

    @property
    def total_conflict_sets(self) -> int:
        """Total number of non-cold occurrences recorded."""
        return sum(len(s) for s in self.sets)

    def __repr__(self) -> str:
        return f"<MRCT refs={self.n_unique} occurrences={self.total_conflict_sets}>"


def build_mrct(stripped: StrippedTrace) -> MRCT:
    """Build the MRCT in one pass using a global LRU stack (section 2.4).

    When reference ``u`` recurs, the distinct references seen since its
    previous occurrence are exactly the entries above ``u`` in a global
    least-recently-used stack of identifiers, so the conflict set is the
    OR of their membership bits.
    """
    n_unique = stripped.n_unique
    table: List[List[int]] = [[] for _ in range(n_unique)]
    stack: List[int] = []  # identifiers, most recent first
    stack_index = stack.index
    for ident in stripped.id_sequence:
        try:
            depth = stack_index(ident)
        except ValueError:
            stack.insert(0, ident)  # first (cold) occurrence: no entry
            continue
        conflict = 0
        # islice iterates the prefix in place; the old ``stack[:depth]``
        # allocated a list copy per occurrence, O(depth) extra memory
        # traffic on the hottest loop of the prelude.
        for other in islice(stack, depth):
            conflict |= 1 << other
        table[ident].append(conflict)
        del stack[depth]
        stack.insert(0, ident)
    return MRCT(sets=table, n_unique=n_unique)


def build_mrct_naive(stripped: StrippedTrace) -> MRCT:
    """Build the MRCT with the paper's Algorithm 2, verbatim.

    One accumulator set ``S_i`` per unique reference collects every other
    identifier as the trace is scanned; when reference ``i`` recurs, the
    accumulator is snapshotted into the table and reset.  The snapshot at
    the *first* occurrence is discarded (the paper's Table 4 ignores the
    cold occurrence).
    """
    n_unique = stripped.n_unique
    table: List[List[int]] = [[] for _ in range(n_unique)]
    accumulator: List[int] = [0] * n_unique
    seen: List[bool] = [False] * n_unique
    for ident in stripped.id_sequence:
        if seen[ident]:
            table[ident].append(accumulator[ident])
        else:
            seen[ident] = True
        accumulator[ident] = 0
        member = 1 << ident
        for other in range(n_unique):
            if other != ident:
                accumulator[other] |= member
    return MRCT(sets=table, n_unique=n_unique)


def mrct_as_display_table(mrct: MRCT) -> Dict[int, List[Set[int]]]:
    """Render the MRCT like the paper's Table 4: ``{id: [conflict sets]}``.

    Identifiers are 1-based in the output, matching the paper's labels.
    """
    return {
        ident + 1: [
            {member + 1 for member in bitset_members(mask)}
            for mask in mrct.sets[ident]
        ]
        for ident in range(mrct.n_unique)
    }
