"""Budget sensitivity: how the optimal associativity responds to K.

The per-level histograms contain the *entire* K→A relationship, not
just its value at one budget: the minimum associativity at depth ``D``
drops from ``A`` to ``A - 1`` exactly when the budget reaches
``misses(D, A - 1)``.  This module extracts those breakpoints, giving
the designer the full trade-off curve ("how many extra misses buy a
cheaper cache?") for free after a single analytical run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.trace import Trace


@dataclass(frozen=True)
class SensitivityStep:
    """One step of the K→A staircase at a fixed depth.

    Attributes:
        associativity: the minimal A on this budget interval.
        min_budget: smallest K for which this A suffices.
        max_budget: largest K before an even smaller A suffices
            (None for the final A = 1 step, which holds forever).
    """

    associativity: int
    min_budget: int
    max_budget: int = -1  # -1 encodes "unbounded" (dataclass default quirk)

    @property
    def unbounded(self) -> bool:
        """True for the terminal A=1 step."""
        return self.max_budget < 0


def _as_explorer(
    explorer: Union[AnalyticalCacheExplorer, Trace],
    engine: str = "auto",
    processes: int = 2,
    recorder=None,
    store=None,
) -> AnalyticalCacheExplorer:
    """Accept either an explorer or a raw trace (building one explorer)."""
    if isinstance(explorer, AnalyticalCacheExplorer):
        return explorer
    return AnalyticalCacheExplorer(
        explorer,
        engine=engine,
        processes=processes,
        recorder=recorder,
        store=store,
    )


def budget_sensitivity(
    explorer: Union[AnalyticalCacheExplorer, Trace],
    depth: int,
    engine: str = "auto",
    processes: int = 2,
    recorder=None,
    store=None,
) -> List[SensitivityStep]:
    """The K→A staircase for one depth, largest A first.

    The first step starts at K = 0 with ``A_zero``; each following step
    begins exactly at the miss count of the next-smaller associativity.
    Accepts a prepared :class:`AnalyticalCacheExplorer` or a raw
    :class:`~repro.trace.trace.Trace`; in the latter case an explorer is
    built with the given ``engine``/``recorder``/``store`` (so a
    sensitivity sweep can warm-start from the artifact cache).
    """
    if depth < 1 or (depth & (depth - 1)) != 0:
        raise ValueError(f"depth must be a power of two, got {depth}")
    explorer = _as_explorer(
        explorer,
        engine=engine,
        processes=processes,
        recorder=recorder,
        store=store,
    )
    # misses(A) for A = A_zero down to 1 gives the breakpoints directly.
    level = depth.bit_length() - 1
    histogram = explorer.histograms.get(level)
    if histogram is None or not histogram.counts:
        return [SensitivityStep(associativity=1, min_budget=0)]
    a_zero = histogram.zero_miss_associativity
    steps: List[SensitivityStep] = []
    lower = 0
    for assoc in range(a_zero, 0, -1):
        if assoc == 1:
            steps.append(SensitivityStep(associativity=1, min_budget=lower))
            break
        # A = assoc suffices from `lower` until the budget reaches the
        # miss count of assoc - 1, where the cheaper cache takes over.
        upper = histogram.misses(assoc - 1)
        if upper > lower:
            steps.append(
                SensitivityStep(
                    associativity=assoc, min_budget=lower, max_budget=upper - 1
                )
            )
            lower = upper
    return steps


def marginal_budget_for_cheaper_cache(
    explorer: Union[AnalyticalCacheExplorer, Trace],
    depth: int,
    budget: int,
    engine: str = "auto",
    processes: int = 2,
    recorder=None,
    store=None,
) -> int:
    """Extra misses needed before a smaller associativity suffices.

    Returns 0 when the current budget already admits A = 1.  Accepts an
    explorer or a raw trace, like :func:`budget_sensitivity`.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    steps = budget_sensitivity(
        explorer,
        depth,
        engine=engine,
        processes=processes,
        recorder=recorder,
        store=store,
    )
    for step in steps:
        if step.unbounded or budget <= step.max_budget:
            if step.min_budget <= budget:
                if step.associativity == 1:
                    return 0
                return step.max_budget + 1 - budget
    return 0
