"""Per-bit zero/one sets (paper Table 3).

For every address bit ``B_i`` the prelude computes a pair of sets:
``Z_i`` holds the identifiers of all unique references whose bit ``i`` is
0, and ``O_i`` those whose bit ``i`` is 1.  Cross-intersections of these
sets describe how references distribute over the rows of any cache depth,
which is exactly what the BCAT encodes.

Sets are stored as Python integers used as bit vectors — bit ``j`` set
means "reference with identifier ``j`` is a member".  The paper itself
notes (section 2.4) that bit-vector sets are what make the approach cheap;
arbitrary-precision ints give us word-parallel ``&``/``|`` and a hardware
popcount via ``int.bit_count``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.trace.strip import StrippedTrace


def bitset_members(mask: int) -> Set[int]:
    """Expand a bit-vector set into a Python set of identifiers."""
    members: Set[int] = set()
    ident = 0
    while mask:
        if mask & 1:
            members.add(ident)
        mask >>= 1
        ident += 1
    return members


def bitset_from_members(members) -> int:
    """Pack an iterable of identifiers into a bit-vector set."""
    mask = 0
    for ident in members:
        if ident < 0:
            raise ValueError(f"identifier must be non-negative, got {ident}")
        mask |= 1 << ident
    return mask


@dataclass(frozen=True)
class ZeroOneSets:
    """The array of zero/one set pairs for a stripped trace.

    Attributes:
        zero: ``zero[i]`` is the bit-vector set ``Z_i``.
        one: ``one[i]`` is the bit-vector set ``O_i``.
        n_unique: number of unique references (bit-vector width).
    """

    zero: Tuple[int, ...]
    one: Tuple[int, ...]
    n_unique: int

    @property
    def address_bits(self) -> int:
        """Number of address bits covered."""
        return len(self.zero)

    @property
    def universe(self) -> int:
        """Bit-vector set containing every identifier."""
        return (1 << self.n_unique) - 1

    def pair(self, bit: int) -> Tuple[int, int]:
        """``(Z_bit, O_bit)`` for one address bit."""
        return self.zero[bit], self.one[bit]

    def zero_members(self, bit: int) -> Set[int]:
        """``Z_bit`` as a Python set (for display/tests)."""
        return bitset_members(self.zero[bit])

    def one_members(self, bit: int) -> Set[int]:
        """``O_bit`` as a Python set (for display/tests)."""
        return bitset_members(self.one[bit])


def build_zero_one_sets(stripped: StrippedTrace) -> ZeroOneSets:
    """Compute the zero/one sets of a stripped trace.

    Cost is ``O(N' * address_bits)`` single-bit updates.
    """
    bits = stripped.address_bits
    zero: List[int] = [0] * bits
    one: List[int] = [0] * bits
    for ident, addr in enumerate(stripped.unique_addresses):
        member = 1 << ident
        for bit in range(bits):
            if (addr >> bit) & 1:
                one[bit] |= member
            else:
                zero[bit] |= member
    return ZeroOneSets(zero=tuple(zero), one=tuple(one), n_unique=stripped.n_unique)


def build_zero_one_sets_numpy(stripped: StrippedTrace) -> ZeroOneSets:
    """Vectorized zero/one sets: one ``packbits`` per address bit.

    Identifier ``j``'s membership bit for address bit ``b`` is column
    ``j`` of the ``(bits, N')`` matrix ``(addresses >> b) & 1``; packing
    each row little-endian yields exactly the bigint bit-vectors of
    :func:`build_zero_one_sets` (property-tested identical).  Raises
    ``ImportError`` when NumPy is unavailable.
    """
    import numpy as np

    bits = stripped.address_bits
    n_unique = stripped.n_unique
    if n_unique == 0:
        return ZeroOneSets(zero=(0,) * bits, one=(0,) * bits, n_unique=0)
    addresses = np.asarray(stripped.unique_addresses, dtype=np.int64)
    universe = (1 << n_unique) - 1
    one: List[int] = []
    for bit in range(bits):
        column = ((addresses >> bit) & 1).astype(np.uint8)
        packed = np.packbits(column, bitorder="little")
        one.append(int.from_bytes(packed.tobytes(), "little"))
    zero = tuple(universe ^ mask for mask in one)
    return ZeroOneSets(zero=zero, one=tuple(one), n_unique=n_unique)
