"""Streaming postlude: all level histograms in one trace pass, O(N') memory.

The paper stores the MRCT explicitly, making space proportional to the
trace length (its section 2.4 accepts this because embedded traces are
loop-dominated).  This module removes even that: conflict cardinalities
for *every* level are computed on the fly from a single global LRU
stack, so memory is O(N') regardless of trace length, and no conflict
set is ever materialized.

The trick: when reference ``u`` recurs, its conflict set is exactly the
stack entries above it.  The row-local conflict cardinality at level
``l`` is the number of those entries agreeing with ``u`` in the low
``l`` address bits — i.e. whose XOR with ``u`` has at least ``l``
trailing zero bits.  One walk over the ``d`` entries above ``u``
therefore yields every level's cardinality at once: bucket each entry
by ``trailing_zeros(entry XOR u)`` (clamped to the deepest level) and
suffix-sum the buckets.  Total cost is O(sum of global reuse distances
+ N * levels) — the same asymptotics as the MRCT path.  In pure Python
the per-entry loop is slower than the MRCT path's word-parallel bitmask
popcounts (the benchmark quantifies it), so this engine's value is its
*space*: O(N') live state versus conflict sets proportional to the
trace length — the variant to use when the trace dwarfs memory.

Produces histograms bit-identical to
:func:`repro.core.postlude.compute_level_histograms` (tested), so the
explorer can use either engine.  Registered as the ``streaming`` engine
in :mod:`repro.core.engines` (it is the one engine that consumes the raw
trace rather than the prelude products).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.postlude import LevelHistogram
from repro.trace.trace import Trace


def _trailing_zeros(value: int) -> int:
    """Number of trailing zero bits (value must be non-zero)."""
    return (value & -value).bit_length() - 1


def compute_level_histograms_streaming(
    trace: Trace, max_level: Optional[int] = None
) -> Dict[int, LevelHistogram]:
    """All per-level conflict histograms in one pass over the trace.

    Args:
        trace: word-addressed trace.
        max_level: deepest level to histogram (default: the trace's
            address width).

    Returns:
        ``{level: LevelHistogram}`` for levels ``0 .. max_level``,
        identical to the BCAT/MRCT pipeline's output.
    """
    limit = trace.address_bits if max_level is None else max_level
    limit = min(limit, trace.address_bits)
    histograms: Dict[int, LevelHistogram] = {
        level: LevelHistogram(level) for level in range(limit + 1)
    }
    stack: List[int] = []  # addresses, most recent first
    stack_index = stack.index
    buckets = [0] * (limit + 1)
    # Bookkeeping to reproduce the BCAT path exactly: it omits the
    # (always-zero) entries of rows holding a single unique reference,
    # which is only known once the whole trace has been seen.
    occurrences: Dict[int, int] = {}
    row_members: List[Dict[int, int]] = [dict() for _ in range(limit + 1)]

    for addr in trace:
        try:
            depth = stack_index(addr)
        except ValueError:
            stack.insert(0, addr)  # cold occurrence: no conflicts recorded
            occurrences[addr] = 1
            for level in range(limit + 1):
                row = addr & ((1 << level) - 1)
                members = row_members[level]
                members[row] = members.get(row, 0) + 1
            continue
        occurrences[addr] += 1
        # Bucket the d conflicting entries by shared low bits with addr.
        for i in range(limit + 1):
            buckets[i] = 0
        for other in stack[:depth]:
            shared = _trailing_zeros(other ^ addr)
            buckets[min(shared, limit)] += 1
        # Level l's conflict cardinality = entries sharing >= l low bits.
        cardinality = 0
        for level in range(limit, -1, -1):
            cardinality += buckets[level]
            histograms[level].add(cardinality)
        del stack[depth]
        stack.insert(0, addr)

    # Post-filter: drop the zero-distance entries of singleton rows (the
    # BCAT traversal never visits them).
    for level in range(limit + 1):
        mask = (1 << level) - 1
        members = row_members[level]
        removable = 0
        for addr, count in occurrences.items():
            if count > 1 and members[addr & mask] == 1:
                removable += count - 1
        if removable:
            counts = histograms[level].counts
            counts[0] -= removable
            if counts[0] == 0:
                del counts[0]
    return histograms
