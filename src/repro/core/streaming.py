"""Streaming postlude: all level histograms in one trace pass, O(N') memory.

The paper stores the MRCT explicitly, making space proportional to the
trace length (its section 2.4 accepts this because embedded traces are
loop-dominated).  This module removes even that: conflict cardinalities
for *every* level are computed on the fly from a single global LRU
stack, so memory is O(N') regardless of trace length, and no conflict
set is ever materialized.

The trick: when reference ``u`` recurs, its conflict set is exactly the
stack entries above it.  The row-local conflict cardinality at level
``l`` is the number of those entries agreeing with ``u`` in the low
``l`` address bits — i.e. whose XOR with ``u`` has at least ``l``
trailing zero bits.  One walk over the ``d`` entries above ``u``
therefore yields every level's cardinality at once: bucket each entry
by ``trailing_zeros(entry XOR u)`` (clamped to the deepest level) and
suffix-sum the buckets.  Total cost is O(sum of global reuse distances
+ N * levels) — the same asymptotics as the MRCT path.  The stack is a
doubly-linked list with an address → node position map, so relocating a
reference to the top is O(1) and the only per-reference cost is the
reuse-distance walk itself.  In pure Python that walk is slower than
the MRCT path's word-parallel bitmask popcounts (the benchmark
quantifies it), so this engine's value is its *space*: O(N') live state
versus conflict sets proportional to the trace length — the variant to
use when the trace dwarfs memory.

All of the per-reference state lives in :class:`StreamingState`, which
is *appendable* (feed the trace in chunks; histograms are exact after
every chunk) and *checkpointable* (``repro.store`` persists and
restores it, see :mod:`repro.stream`).  Produces histograms
bit-identical to :func:`repro.core.postlude.compute_level_histograms`
(tested), so the explorer can use either engine.  Registered as the
``streaming`` engine in :mod:`repro.core.engines` (it is the one engine
that consumes the raw trace rather than the prelude products).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.postlude import LevelHistogram, validate_max_level
from repro.trace.trace import Trace

#: Domain tag folded into every session content digest.
DIGEST_TAG = b"repro-stream-digest/1"

#: Two distinct odd multipliers for the resumable polynomial digest.
_POLY_A = 0x9E3779B97F4A7C15
_POLY_B = 0xC2B2AE3D27D4EB4F
_MASK64 = (1 << 64) - 1


def _trailing_zeros(value: int) -> int:
    """Number of trailing zero bits (value must be non-zero)."""
    return (value & -value).bit_length() - 1


def _mix64(value: int) -> int:
    """splitmix64 finalizer: scramble one 64-bit word."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


class _Node:
    """One LRU-stack entry (intrusive doubly-linked list node)."""

    __slots__ = ("addr", "prev", "next")

    def __init__(self, addr: int) -> None:
        self.addr = addr
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None


class StreamingState:
    """Appendable, checkpointable state of the streaming postlude.

    Holds the global LRU stack (doubly-linked, with an address → node
    position map for O(1) relocation), per-address occurrence counts,
    per-level row-membership counts, the raw per-level cardinality
    counts, and a resumable content digest.  After *any* sequence of
    :meth:`append` calls, :meth:`histograms` is bit-identical to running
    the batch engines on the concatenation of everything appended so
    far — the state never needs to revisit old references.

    Args:
        address_bits: significant address width; fixed for the session
            (appended addresses must fit).
        max_level: deepest level to histogram (default: ``address_bits``).

    Raises:
        ValueError: on a non-positive width or a negative ``max_level``.
    """

    def __init__(self, address_bits: int, max_level: Optional[int] = None) -> None:
        if address_bits < 1:
            raise ValueError(f"address_bits must be >= 1, got {address_bits}")
        max_level = validate_max_level(max_level)
        self.address_bits = address_bits
        self.max_level = max_level
        self.limit = address_bits if max_level is None else min(max_level, address_bits)
        # Sentinel-headed circular list; head.next is the stack top.
        self._head = _Node(-1)
        self._head.prev = self._head
        self._head.next = self._head
        self._nodes: Dict[int, _Node] = {}
        self.occurrences: Dict[int, int] = {}
        self.row_members: List[Dict[int, int]] = [
            dict() for _ in range(self.limit + 1)
        ]
        # Raw cardinality counts per level, *before* the singleton-row
        # post-filter (which histograms() applies non-destructively).
        self._counts: List[Dict[int, int]] = [dict() for _ in range(self.limit + 1)]
        self.total_refs = 0
        # Resumable rolling digest over the appended address sequence.
        self._h1 = 0
        self._h2 = 0

    # -- ingestion -------------------------------------------------------------

    def append(self, chunk: Union[Trace, Iterable[int]]) -> int:
        """Ingest a chunk of references; histograms stay exact.

        Args:
            chunk: a :class:`Trace` or iterable of word addresses, in
                program order.  Addresses must fit ``address_bits``.

        Returns:
            the number of references ingested from this chunk.
        """
        if isinstance(chunk, Trace):
            if chunk.address_bits > self.address_bits:
                raise ValueError(
                    f"chunk address_bits {chunk.address_bits} exceeds "
                    f"session width {self.address_bits}"
                )
            addresses: Iterable[int] = chunk.addresses
        else:
            addresses = chunk

        limit = self.limit
        head = self._head
        nodes = self._nodes
        occurrences = self.occurrences
        row_members = self.row_members
        counts = self._counts
        top_mask = -1 << self.address_bits
        h1, h2 = self._h1, self._h2
        n = 0

        for addr in addresses:
            addr = int(addr)
            if addr < 0 or addr & top_mask:
                raise ValueError(
                    f"address {addr:#x} does not fit in {self.address_bits} bits"
                )
            n += 1
            mixed = _mix64(addr & _MASK64)
            h1 = (h1 * _POLY_A + mixed + 1) & _MASK64
            h2 = (h2 * _POLY_B + mixed + 1) & _MASK64
            node = nodes.get(addr)
            if node is None:
                # Cold occurrence: push a fresh node, no conflicts recorded.
                node = _Node(addr)
                first = head.next
                node.prev = head
                node.next = first
                first.prev = node
                head.next = node
                nodes[addr] = node
                occurrences[addr] = 1
                for level in range(limit + 1):
                    row = addr & ((1 << level) - 1)
                    members = row_members[level]
                    members[row] = members.get(row, 0) + 1
                continue
            occurrences[addr] += 1
            # Walk top → node, bucketing the d conflicting entries above
            # it by shared low bits with addr (depth falls out for free).
            buckets = [0] * (limit + 1)
            walker = head.next
            while walker is not node:
                shared = _trailing_zeros(walker.addr ^ addr)
                buckets[shared if shared < limit else limit] += 1
                walker = walker.next
            # Level l's conflict cardinality = entries sharing >= l low bits.
            cardinality = 0
            for level in range(limit, -1, -1):
                cardinality += buckets[level]
                level_counts = counts[level]
                level_counts[cardinality] = level_counts.get(cardinality, 0) + 1
            # Relocate to the top: unlink, then relink after the sentinel.
            node.prev.next = node.next
            node.next.prev = node.prev
            first = head.next
            node.prev = head
            node.next = first
            first.prev = node
            head.next = node

        self._h1, self._h2 = h1, h2
        self.total_refs += n
        return n

    # -- results ---------------------------------------------------------------

    def histograms(self) -> Dict[int, LevelHistogram]:
        """Current per-level histograms, bit-identical to the batch path.

        Applies the BCAT singleton-row post-filter (zero-distance entries
        of rows holding one unique reference are omitted) to a *copy* of
        the raw counts, so the state keeps accepting appends afterwards.
        """
        result: Dict[int, LevelHistogram] = {}
        occurrences = self.occurrences
        for level in range(self.limit + 1):
            counts = dict(self._counts[level])
            mask = (1 << level) - 1
            members = self.row_members[level]
            removable = 0
            for addr, count in occurrences.items():
                if count > 1 and members[addr & mask] == 1:
                    removable += count - 1
            if removable:
                counts[0] -= removable
                if counts[0] == 0:
                    del counts[0]
            result[level] = LevelHistogram(level, counts)
        return result

    @property
    def unique_count(self) -> int:
        """Distinct addresses seen so far (the paper's N')."""
        return len(self._nodes)

    def stack_addresses(self) -> List[int]:
        """The LRU stack, most recent first (exactly the unique addresses)."""
        out: List[int] = []
        walker = self._head.next
        while walker is not self._head:
            out.append(walker.addr)
            walker = walker.next
        return out

    # -- digest & checkpointing ------------------------------------------------

    def digest_state(self) -> Tuple[int, int, int]:
        """The resumable digest accumulator ``(h1, h2, total_refs)``."""
        return (self._h1, self._h2, self.total_refs)

    @property
    def content_digest(self) -> str:
        """Hex digest identifying (address_bits, appended sequence).

        Split-independent: any chunking of the same sequence yields the
        same digest.  Built from two independent 64-bit polynomial
        rolling hashes over splitmix64-mixed addresses (so the
        accumulator is checkpointable), finalized through SHA-256.  Not
        a cryptographic hash of the trace — a stable session identity.
        """
        payload = DIGEST_TAG + b"\x00" + b"%d:%d:%d:%d" % (
            self.address_bits,
            self.total_refs,
            self._h1,
            self._h2,
        )
        return hashlib.sha256(payload).hexdigest()

    def snapshot(self) -> Dict[str, object]:
        """Checkpointable view of the full state (see the store codec).

        The stack (most recent first) carries exactly the unique
        addresses, so ``occurrences`` is stored aligned to it and
        ``row_members`` is rebuilt on restore.
        """
        stack = self.stack_addresses()
        return {
            "address_bits": self.address_bits,
            "max_level": self.max_level,
            "total_refs": self.total_refs,
            "h1": self._h1,
            "h2": self._h2,
            "stack": stack,
            "occurrences": [self.occurrences[addr] for addr in stack],
            "counts": [dict(c) for c in self._counts],
        }

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "StreamingState":
        """Rebuild a state from :meth:`snapshot` output."""
        state = cls(
            int(snapshot["address_bits"]),
            snapshot["max_level"],  # type: ignore[arg-type]
        )
        stack: List[int] = list(snapshot["stack"])  # type: ignore[arg-type]
        occ: List[int] = list(snapshot["occurrences"])  # type: ignore[arg-type]
        if len(stack) != len(occ):
            raise ValueError("snapshot stack/occurrences length mismatch")
        # Relink bottom-up so the first stack entry ends up on top.
        for addr, count in zip(reversed(stack), reversed(occ)):
            node = _Node(addr)
            first = state._head.next
            node.prev = state._head
            node.next = first
            first.prev = node
            state._head.next = node
            state._nodes[addr] = node
            state.occurrences[addr] = count
            for level in range(state.limit + 1):
                row = addr & ((1 << level) - 1)
                members = state.row_members[level]
                members[row] = members.get(row, 0) + 1
        counts: List[Dict[int, int]] = snapshot["counts"]  # type: ignore[assignment]
        if len(counts) != state.limit + 1:
            raise ValueError(
                f"snapshot carries {len(counts)} levels, expected {state.limit + 1}"
            )
        state._counts = [
            {int(k): int(v) for k, v in level.items()} for level in counts
        ]
        state.total_refs = int(snapshot["total_refs"])
        state._h1 = int(snapshot["h1"])
        state._h2 = int(snapshot["h2"])
        return state


class StreamDigest:
    """Digest-only accumulator: a session's content digest without its state.

    Runs the same rolling hashes as :class:`StreamingState` but keeps no
    stack or histograms, so a cheap pre-pass over a chunked file can
    decide whether a checkpoint for the full sequence already exists
    before paying for ingestion.
    """

    __slots__ = ("address_bits", "total_refs", "_h1", "_h2")

    def __init__(self, address_bits: int) -> None:
        if address_bits < 1:
            raise ValueError(f"address_bits must be >= 1, got {address_bits}")
        self.address_bits = address_bits
        self.total_refs = 0
        self._h1 = 0
        self._h2 = 0

    def append(self, chunk: Iterable[int]) -> int:
        h1, h2 = self._h1, self._h2
        n = 0
        for addr in chunk:
            mixed = _mix64(int(addr) & _MASK64)
            h1 = (h1 * _POLY_A + mixed + 1) & _MASK64
            h2 = (h2 * _POLY_B + mixed + 1) & _MASK64
            n += 1
        self._h1, self._h2 = h1, h2
        self.total_refs += n
        return n

    @property
    def content_digest(self) -> str:
        payload = DIGEST_TAG + b"\x00" + b"%d:%d:%d:%d" % (
            self.address_bits,
            self.total_refs,
            self._h1,
            self._h2,
        )
        return hashlib.sha256(payload).hexdigest()


def trace_stream_digest(trace: Trace) -> str:
    """The :attr:`StreamingState.content_digest` of a whole trace.

    Convenience for warm-start lookups: matches the digest of a session
    that appended exactly this trace, without building the full state.
    """
    digest = StreamDigest(trace.address_bits)
    digest.append(trace)
    return digest.content_digest


def compute_level_histograms_streaming(
    trace: Trace, max_level: Optional[int] = None
) -> Dict[int, LevelHistogram]:
    """All per-level conflict histograms in one pass over the trace.

    Args:
        trace: word-addressed trace.
        max_level: deepest level to histogram (default: the trace's
            address width).

    Returns:
        ``{level: LevelHistogram}`` for levels ``0 .. max_level``,
        identical to the BCAT/MRCT pipeline's output.
    """
    state = StreamingState(trace.address_bits, max_level=max_level)
    state.append(trace)
    return state.histograms()
