"""Fast MRCT builders: blocked NumPy bit-matrix kernel + Fenwick fallback.

:func:`repro.core.mrct.build_mrct` walks a global LRU stack with
``list.index``/``insert``/``del``, paying O(depth) Python-object work per
occurrence — the sum of stack distances, which dominates cold-trace wall
clock now that the postlude is vectorized.  This module provides three
exact replacements:

* :func:`build_mrct_fast` — a blocked NumPy kernel.  Conflict sets are
  materialized directly as rows of a packed ``uint64`` bit matrix.  The
  key identity: reference ``v`` belongs to occurrence ``i``'s conflict
  set iff ``v``'s last occurrence before ``i`` lies inside the window
  ``(prv[i], i)``, where ``prv[i]`` is the queried reference's previous
  occurrence.  Fixing a block boundary ``M <= i`` with ``prv[i] < M``
  splits the window into ``(prv[i], M)`` — answered from a snapshot of
  last-occurrence positions frozen at ``M`` (a suffix of its
  position-sorted member rows, OR-accumulated once per block) — and
  ``[M, i)``, answered from an in-block prefix-OR accumulate.  Two block
  scales plus a small-window tail (``bitwise_or.reduceat`` over segment
  ranges, or a flattened-window bit scatter when the member matrix would
  be too wide) make every occurrence O(words) vector work instead of
  O(depth) object work.
* :func:`build_mrct_fenwick` — pure Python, no NumPy: a Fenwick
  (order-statistic) tree over trace positions yields each occurrence's
  stack distance in O(log N), and an OR segment tree over "current last
  occurrence" positions yields the conflict set itself in O(log N)
  bigint ORs — O(N log N) total versus ``build_mrct``'s O(N·depth).
* :func:`build_packed_mrct` — the fused-pipeline product: the same rows
  as ``build_mrct_fast`` but deduplicated with integer weights into a
  :class:`PackedMRCT`, which the vectorized postlude consumes zero-copy
  (no bigint round-trip, no re-packing).

All three are exact: ``build_mrct_fast`` and ``build_mrct_fenwick``
reproduce ``build_mrct``'s table including per-reference occurrence
order (property-tested), and ``PackedMRCT`` preserves the weighted
multiset of ``(identifier, conflict set)`` pairs, which is all any
histogram engine observes.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.mrct import MRCT, build_mrct
from repro.obs.recorder import NULL_RECORDER
from repro.trace.strip import StrippedTrace

try:  # pragma: no cover - trivial import guard
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI lane
    _np = None


#: Block scales for the NumPy kernel.  The coarse pass answers every
#: occurrence whose window crosses a 1024-boundary; the fine pass runs
#: only when the remaining windows are still too long for the reduceat
#: tail's word-op budget.
_BLOCK_SCALES = (1024, 64)

#: The reduceat tail costs (sum of remaining window lengths) x words
#: uint64 ORs; below this budget it finishes the kernel in one call.
_REDUCEAT_OPS_BUDGET = 150_000_000

#: The reduceat tail materializes an (N, words) member matrix; skip it
#: (scatter tail instead) when that would exceed this many bytes.
_REDUCEAT_MEM_BUDGET = 256 * 1024 * 1024

#: Maximum total window length the scatter tail may absorb when the
#: reduceat tail is ruled out by memory; block passes run until the
#: remaining windows fit.  The scatter tail does O(1) work per window
#: position regardless of row width, so this is far looser than the
#: bigint tail budget it replaced.
_SCATTER_WINDOW_BUDGET = 32_000_000

#: Window positions flattened per scatter chunk; bounds the index
#: temporaries at a few hundred MB independent of total tail size.
_SCATTER_CHUNK = 8_000_000

#: Below this trace length the classic LRU-stack builder wins — the
#: NumPy kernel's argsorts and block setup cost more than they save
#: (calibrated by benchmarks/bench_prelude.py).
FAST_MRCT_MIN_REFS = 2048

#: Thresholds for preferring the Fenwick builder over ``build_mrct``
#: when NumPy is unavailable.  ``build_mrct`` costs the sum of stack
#: distances (bounded by N·N'), the Fenwick builder a flat O(N log N);
#: small unique-sets keep stacks shallow, so both gates must pass.
FENWICK_MIN_REFS = 8192
FENWICK_MIN_UNIQUE = 256


@dataclass(eq=False)
class PackedMRCT:
    """The MRCT as a deduplicated packed bit matrix (fused-engine form).

    Attributes:
        matrix: ``(rows, words)`` uint64 array; row ``r`` is a conflict
            bit-vector packed little-endian, 64 identifiers per word.
        idents: ``(rows,)`` int64 array; ``idents[r]`` is the identifier
            whose occurrences produced row ``r``.
        weights: ``(rows,)`` int64 array; number of occurrences that
            produced this exact ``(identifier, conflict set)`` pair.
        n_unique: number of unique references (bit-vector width).

    Rows are sorted lexicographically by ``(identifier, conflict
    words)`` — the deterministic ``np.unique`` order — so equal inputs
    produce byte-equal packed tables (stable store artifacts).  Trace
    order is *not* preserved: the packed form is a weighted multiset,
    which is exactly what the histogram postlude consumes.
    """

    matrix: "object"
    idents: "object"
    weights: "object"
    n_unique: int

    @property
    def n_rows(self) -> int:
        """Number of distinct ``(identifier, conflict set)`` rows."""
        return int(self.matrix.shape[0])

    @property
    def words(self) -> int:
        """uint64 words per row (``ceil(n_unique / 64)``)."""
        return int(self.matrix.shape[1])

    @property
    def total_conflict_sets(self) -> int:
        """Total non-cold occurrences represented (sum of weights)."""
        return int(self.weights.sum()) if self.n_rows else 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedMRCT):
            return NotImplemented
        return (
            self.n_unique == other.n_unique
            and _np.array_equal(self.matrix, other.matrix)
            and _np.array_equal(self.idents, other.idents)
            and _np.array_equal(self.weights, other.weights)
        )

    def to_mrct(self) -> MRCT:
        """Expand back to the bigint :class:`MRCT` form.

        The weighted rows are replayed ``weight`` times each, grouped by
        identifier in packed-row order.  The result is multiset-equal to
        the original table but does *not* preserve trace order — use it
        only for engines (serial/parallel/streaming adapters) whose
        output depends on the multiset alone.
        """
        table: List[List[int]] = [[] for _ in range(self.n_unique)]
        nbytes = self.words * 8
        raw = self.matrix.tobytes()
        idents = self.idents.tolist()
        weights = self.weights.tolist()
        for row in range(self.n_rows):
            value = int.from_bytes(raw[row * nbytes : (row + 1) * nbytes], "little")
            table[idents[row]].extend([value] * weights[row])
        return MRCT(sets=table, n_unique=self.n_unique)

    def __repr__(self) -> str:
        return (
            f"<PackedMRCT refs={self.n_unique} rows={self.n_rows} "
            f"occurrences={self.total_conflict_sets}>"
        )


def _ids_array(stripped: StrippedTrace):
    """The stripped id sequence as an int64 NumPy array (zero-copy when
    the underlying ``array`` already holds 8-byte items)."""
    seq = stripped.id_sequence
    if isinstance(seq, array) and seq.itemsize == 8:
        return _np.frombuffer(seq, dtype=_np.int64)
    return _np.asarray(seq, dtype=_np.int64)


def _previous_occurrences(ids):
    """``prv[i]`` = previous position of ``ids[i]``, or -1 if cold.

    A stable argsort groups equal identifiers with positions ascending,
    so each group's predecessor relation is a single shifted compare.
    """
    n = ids.shape[0]
    order = _np.argsort(ids, kind="stable")
    prv = _np.full(n, -1, dtype=_np.int64)
    if n > 1:
        same = ids[order[1:]] == ids[order[:-1]]
        prv[order[1:][same]] = order[:-1][same]
    return prv


def _block_pass(ids, prv, rows, row_of, queries, scale, n_unique, nwords):
    """Answer every query whose window crosses a ``scale`` boundary.

    Walks the trace in blocks of ``scale`` positions, maintaining ``L``,
    the last occurrence of each identifier *strictly before* the current
    block.  A query at position ``q`` with ``prv[q] < M`` (``M`` the
    block start) decomposes as::

        row[q] = suffix_or[rank] | prefix_or[q - M]

    where ``suffix_or`` accumulates the member rows of the snapshot
    idents sorted by ``L`` (idents with ``L > prv[q]`` — the queried
    reference itself is excluded because its ``L`` *is* ``prv[q]``) and
    ``prefix_or[t]`` is the OR of the block's first ``t`` member rows
    (again excluding the queried reference, whose only occurrences in
    ``[M, q)`` would contradict ``prv[q] < M``).  Returns the queries
    whose windows stayed inside one block, untouched.
    """
    n = ids.shape[0]
    starts = (queries // scale) * scale
    handled_mask = prv[queries] < starts
    handled = queries[handled_mask]
    pending = queries[~handled_mask]
    if handled.shape[0] == 0:
        return pending
    last = _np.full(n_unique, -1, dtype=_np.int64)
    n_blocks = (n + scale - 1) // scale
    bounds = _np.searchsorted(handled // scale, _np.arange(n_blocks + 1))
    for block in range(n_blocks):
        begin = block * scale
        end = min(begin + scale, n)
        lo, hi = int(bounds[block]), int(bounds[block + 1])
        if hi > lo:
            queries_here = handled[lo:hi]
            # Snapshot: idents seen before this block, sorted by their
            # last occurrence; suffix ORs answer "everything whose last
            # occurrence exceeds prv[q]" with one gather.
            seen = _np.nonzero(last >= 0)[0]
            order = _np.argsort(last[seen], kind="stable")
            sorted_last = last[seen][order]
            sorted_ids = seen[order].astype(_np.uint64)
            nv = sorted_ids.shape[0]
            suffix = _np.zeros((nv + 1, nwords), dtype=_np.uint64)
            if nv:
                member = _member_rows(sorted_ids, nwords)
                suffix[:nv] = _np.bitwise_or.accumulate(member[::-1], axis=0)[::-1]
            # In-block prefix ORs: prefix[t] = distinct ids in [begin, begin+t).
            block_member = _member_rows(ids[begin:end].astype(_np.uint64), nwords)
            prefix = _np.zeros((block_member.shape[0] + 1, nwords), dtype=_np.uint64)
            prefix[1:] = _np.bitwise_or.accumulate(block_member, axis=0)
            rank = _np.searchsorted(sorted_last, prv[queries_here], side="right")
            rows[row_of[queries_here]] = suffix[rank] | prefix[queries_here - begin]
        # Advance the snapshot past this block: last occurrence within
        # the block via np.unique on the reversed slice (first index in
        # the reversal is the last occurrence; fancy assignment with
        # duplicate indices would be undefined).
        blk_ids = ids[begin:end]
        uniq, first_rev = _np.unique(blk_ids[::-1], return_index=True)
        last[uniq] = (end - 1) - first_rev
    return pending


def _member_rows(idents_u64, nwords):
    """One packed membership row (``1 << ident``) per identifier."""
    count = idents_u64.shape[0]
    member = _np.zeros((count, nwords), dtype=_np.uint64)
    member[_np.arange(count), (idents_u64 >> _np.uint64(6)).astype(_np.int64)] = (
        _np.uint64(1) << (idents_u64 & _np.uint64(63))
    )
    return member


def _reduceat_tail(ids, prv, rows, row_of, pending, nwords):
    """Finish the remaining queries with one ``bitwise_or.reduceat``.

    Each window ``(prv[q], q)`` is a *contiguous* range of trace
    positions, so the OR of its member rows is a ``reduceat`` segment
    over the per-position membership matrix.  Segments are passed as
    interleaved (start, end) index pairs; the odd outputs (the gaps
    between windows) are discarded.  Cost: (sum of window lengths) x
    words uint64 ORs, independent of how the windows overlap.
    """
    starts = prv[pending] + 1
    ends = pending
    nonempty = starts < ends  # empty window => conflict set stays 0
    count = int(nonempty.sum())
    if count == 0:
        return
    member = _member_rows(ids.astype(_np.uint64), nwords)
    indices = _np.empty(2 * count, dtype=_np.int64)
    indices[0::2] = starts[nonempty]
    indices[1::2] = ends[nonempty]
    segments = _np.bitwise_or.reduceat(member, indices, axis=0)
    rows[row_of[pending[nonempty]]] = segments[0::2]


def _scatter_tail(ids, prv, rows, row_of, pending, nwords):
    """Finish the remaining queries by scattering membership bits.

    The wide-matrix replacement for the reduceat tail (which would
    materialize an (N, words) member matrix): every remaining window
    ``(prv[q], q)`` is flattened into one run of trace positions — a
    single cumsum over per-window start corrections — and each
    position's membership bit is ORed into its query's row word with
    ``np.bitwise_or.at``.  O(1) work per window position regardless of
    row width; chunked on window boundaries so the flattened index
    temporaries stay bounded.
    """
    starts = prv[pending] + 1
    lengths = pending - starts
    nonempty = lengths > 0  # empty window => conflict set stays 0
    if not nonempty.any():
        return
    starts = starts[nonempty]
    lengths = lengths[nonempty]
    targets = row_of[pending[nonempty]]
    boundaries = _np.cumsum(lengths)
    nqueries = lengths.shape[0]
    lo = 0
    while lo < nqueries:
        base = int(boundaries[lo - 1]) if lo else 0
        hi = int(
            _np.searchsorted(boundaries, base + _SCATTER_CHUNK, side="right")
        )
        hi = max(hi, lo + 1)  # a single window may exceed the chunk size
        s = starts[lo:hi]
        length = lengths[lo:hi]
        count = int(boundaries[hi - 1]) - base
        # flat = [s0, s0+1, ..., s0+L0-1, s1, s1+1, ...]: ones everywhere,
        # each window boundary corrected to jump from the previous
        # window's last position to the next window's start.
        flat = _np.ones(count, dtype=_np.int64)
        flat[0] = s[0]
        if hi - lo > 1:
            bnd = _np.cumsum(length[:-1])
            flat[bnd] = s[1:] - (s[:-1] + length[:-1] - 1)
        flat = _np.cumsum(flat)
        row_idx = _np.repeat(targets[lo:hi], length)
        pos_ids = ids[flat].astype(_np.uint64)
        word_idx = (pos_ids >> _np.uint64(6)).astype(_np.int64)
        bits = _np.uint64(1) << (pos_ids & _np.uint64(63))
        _np.bitwise_or.at(rows, (row_idx, word_idx), bits)
        lo = hi


def _conflict_rows(ids, n_unique):
    """All non-cold conflict sets as a packed ``(rows, words)`` matrix.

    Returns ``(rows, noncold)`` where ``noncold`` holds the trace
    positions (ascending) that produced each row; ``ids[noncold]`` are
    the corresponding identifiers.  Row ``r``'s window ``(prv, pos)`` is
    answered by the cheapest applicable strategy: coarse block pass,
    fine block pass, or the bigint tail (see module docstring).
    """
    n = int(ids.shape[0])
    nwords = (n_unique + 63) // 64
    prv = _previous_occurrences(ids)
    noncold = _np.nonzero(prv >= 0)[0]
    rows = _np.zeros((noncold.shape[0], max(nwords, 1)), dtype=_np.uint64)
    if noncold.shape[0] == 0:
        return rows[:, :nwords], noncold
    row_of = _np.zeros(n, dtype=_np.int64)
    row_of[noncold] = _np.arange(noncold.shape[0], dtype=_np.int64)
    use_reduceat = n * nwords * 8 <= _REDUCEAT_MEM_BUDGET
    tail_budget = (
        _REDUCEAT_OPS_BUDGET // nwords if use_reduceat else _SCATTER_WINDOW_BUDGET
    )
    pending = noncold
    for scale in _BLOCK_SCALES:
        if scale >= n or pending.shape[0] == 0:
            break
        remaining = int(_np.sum(pending - prv[pending])) - int(pending.shape[0])
        if remaining <= tail_budget:
            break  # cheap enough to finish in one tail call
        pending = _block_pass(ids, prv, rows, row_of, pending, scale, n_unique, nwords)
    if pending.shape[0]:
        if use_reduceat:
            _reduceat_tail(ids, prv, rows, row_of, pending, nwords)
        else:
            _scatter_tail(ids, prv, rows, row_of, pending, nwords)
    return rows, noncold


def build_mrct_fast(stripped: StrippedTrace) -> MRCT:
    """Build the exact bigint MRCT with the blocked NumPy kernel.

    Produces a table identical to :func:`repro.core.mrct.build_mrct` —
    same sets, same per-reference occurrence order — in O(N/scale)
    vector passes instead of O(sum of stack distances) Python-object
    work.  Raises ``RuntimeError`` when NumPy is unavailable; use
    :func:`build_mrct_auto` for the dispatching front door.
    """
    if _np is None:
        raise RuntimeError("build_mrct_fast requires NumPy; use build_mrct_auto")
    n_unique = stripped.n_unique
    table: List[List[int]] = [[] for _ in range(n_unique)]
    if stripped.n == 0:
        return MRCT(sets=table, n_unique=n_unique)
    ids = _ids_array(stripped)
    rows, noncold = _conflict_rows(ids, n_unique)
    nbytes = rows.shape[1] * 8
    raw = rows.tobytes()
    from_bytes = int.from_bytes
    for row, ident in enumerate(ids[noncold].tolist()):
        offset = row * nbytes
        table[ident].append(from_bytes(raw[offset : offset + nbytes], "little"))
    return MRCT(sets=table, n_unique=n_unique)


def build_packed_mrct(stripped: StrippedTrace, recorder=NULL_RECORDER) -> PackedMRCT:
    """Build the deduplicated packed MRCT for the fused vectorized path.

    Same kernel as :func:`build_mrct_fast`, but instead of expanding to
    bigints the per-occurrence rows are deduplicated by ``(identifier,
    conflict words)`` via ``np.unique(axis=0)`` with occurrence counts
    as integer weights.  Zero-conflict rows are kept — they carry the
    distance-0 histogram mass.  ``recorder`` gets per-kernel phase
    timers (``prelude:conflict-rows``, ``prelude:dedup-rows``) for
    ``repro profile``.
    """
    if _np is None:
        raise RuntimeError("build_packed_mrct requires NumPy; use build_mrct_auto")
    n_unique = stripped.n_unique
    nwords = (n_unique + 63) // 64
    if stripped.n == 0 or n_unique == 0:
        return PackedMRCT(
            matrix=_np.zeros((0, nwords), dtype=_np.uint64),
            idents=_np.zeros(0, dtype=_np.int64),
            weights=_np.zeros(0, dtype=_np.int64),
            n_unique=n_unique,
        )
    ids = _ids_array(stripped)
    with recorder.phase("prelude:conflict-rows"):
        rows, noncold = _conflict_rows(ids, n_unique)
    with recorder.phase("prelude:dedup-rows"):
        return _dedup_rows(rows, ids[noncold], n_unique)


def _mix64(values):
    """Vectorized splitmix64 finalizer (wrapping uint64 arithmetic).

    A plain multiplier dot product is not enough here: a set bit at
    position ``b`` contributes ``multiplier << b``, so high bits shed
    almost all multiplier entropy and near-identical conflict rows
    collide routinely.  The shift-xor-multiply finalizer mixes every
    input bit into every output bit first.
    """
    values = (values ^ (values >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return values ^ (values >> _np.uint64(31))


def _row_hashes(rows, idents):
    """A content hash per ``(identifier, conflict row)`` pair.

    Equal pairs always hash equal; unequal pairs almost never do.  The
    caller verifies hash groups exactly, so a collision costs speed
    (full ``np.unique`` fallback), never correctness.
    """
    nwords = rows.shape[1]
    golden = 0x9E3779B97F4A7C15
    hashes = _mix64(idents.astype(_np.uint64) ^ _np.uint64(golden))
    for word in range(nwords):
        salt = _np.uint64(((word + 1) * golden) & 0xFFFFFFFFFFFFFFFF)
        hashes = hashes * _np.uint64(0x100000001B3) + _mix64(rows[:, word] + salt)
    return hashes


def _dedup_rows(rows, idents, n_unique) -> PackedMRCT:
    """Deduplicate per-occurrence rows into a weighted :class:`PackedMRCT`.

    A vectorized content hash finds duplicate ``(identifier, row)``
    pairs; hash groups are verified exactly against their first member
    (a hash collision falls back to a full ``np.unique(axis=0)``), so
    the result is always an exact weighted multiset of the input.  When
    duplication is too scarce to pay for the dedup (under 1/8 of rows)
    the rows are returned in trace order with unit weights — the time
    saved outweighs the postlude's extra row work.  Otherwise each
    distinct pair appears once, weighted
    by its occurrence count, in a content-derived deterministic order —
    equal traces yield byte-equal artifacts either way.  Row order
    carries no meaning: the postlude re-sorts rows by BCAT position.
    """
    total = rows.shape[0]
    nwords = rows.shape[1]
    if total == 0:
        return PackedMRCT(
            matrix=rows, idents=idents, weights=_np.zeros(0, dtype=_np.int64),
            n_unique=n_unique,
        )
    hashes = _row_hashes(rows, idents)
    _, first, inverse, counts = _np.unique(
        hashes, return_index=True, return_inverse=True, return_counts=True
    )
    # Dedup must pay for itself: the verification pass plus the gathers
    # cost about as much as the postlude walking ~12% extra rows, so low
    # duplication ships the rows as-is with unit weights.
    if total - first.shape[0] < total // 8:
        return PackedMRCT(
            matrix=rows,
            idents=idents,
            weights=_np.ones(total, dtype=_np.int64),
            n_unique=n_unique,
        )
    representative = first[inverse]
    exact = _np.array_equal(rows, rows[representative]) and _np.array_equal(
        idents, idents[representative]
    )
    if exact:
        return PackedMRCT(
            matrix=_np.ascontiguousarray(rows[first]),
            idents=_np.ascontiguousarray(idents[first]),
            weights=counts.astype(_np.int64),
            n_unique=n_unique,
        )
    # Hash collision (vanishingly rare): exact dedup on all columns.
    combo = _np.empty((total, nwords + 1), dtype=_np.uint64)
    combo[:, 0] = idents.astype(_np.uint64)
    combo[:, 1:] = rows
    unique_combo, exact_counts = _np.unique(combo, axis=0, return_counts=True)
    return PackedMRCT(
        matrix=_np.ascontiguousarray(unique_combo[:, 1:]),
        idents=unique_combo[:, 0].astype(_np.int64),
        weights=exact_counts.astype(_np.int64),
        n_unique=n_unique,
    )


def _fenwick_add(tree: List[int], pos: int, delta: int) -> None:
    while pos < len(tree):
        tree[pos] += delta
        pos += pos & -pos


def _fenwick_count_below(tree: List[int], pos: int) -> int:
    """Number of active positions strictly below ``pos`` (0-based)."""
    total = 0
    while pos > 0:
        total += tree[pos]
        pos -= pos & -pos
    return total


def _segment_assign(tree: List[int], size: int, pos: int, value: int) -> None:
    node = size + pos
    tree[node] = value
    node >>= 1
    while node:
        tree[node] = tree[2 * node] | tree[2 * node + 1]
        node >>= 1


def _segment_or(tree: List[int], size: int, lo: int, hi: int) -> int:
    """OR of leaves in the inclusive range ``[lo, hi]``."""
    result = 0
    lo += size
    hi += size + 1
    while lo < hi:
        if lo & 1:
            result |= tree[lo]
            lo += 1
        if hi & 1:
            hi -= 1
            result |= tree[hi]
        lo >>= 1
        hi >>= 1
    return result


def build_mrct_fenwick(stripped: StrippedTrace) -> MRCT:
    """Build the exact MRCT with O(N log N) tree updates, no NumPy.

    Two trees indexed by trace position:

    * a Fenwick (order-statistic) tree counting *active* positions — the
      current last occurrence of every reference seen so far — gives the
      occurrence's stack distance in O(log N) integer adds;
    * an OR segment tree whose active leaf ``p`` holds ``1 << ids[p]``
      gives the conflict set itself as a range-OR over the window
      ``(prv, i)`` in O(log N) bigint ORs.

    A reference's re-occurrence moves its active position (clear old
    leaf, set new), so the range-OR sees each *distinct* conflicting
    reference exactly once and never the queried reference itself
    (its active position is ``prv``, outside the open window).
    """
    n_unique = stripped.n_unique
    table: List[List[int]] = [[] for _ in range(n_unique)]
    ids = stripped.id_sequence
    n = len(ids)
    if n == 0:
        return MRCT(sets=table, n_unique=n_unique)
    size = 1
    while size < n:
        size <<= 1
    or_tree: List[int] = [0] * (2 * size)
    fenwick: List[int] = [0] * (n + 1)
    last: List[int] = [-1] * n_unique
    for i, ident in enumerate(ids):
        previous = last[ident]
        if previous >= 0:
            distance = _fenwick_count_below(fenwick, i) - _fenwick_count_below(
                fenwick, previous + 1
            )
            conflict = (
                _segment_or(or_tree, size, previous + 1, i - 1) if distance else 0
            )
            table[ident].append(conflict)
            _segment_assign(or_tree, size, previous, 0)
            _fenwick_add(fenwick, previous + 1, -1)
        _segment_assign(or_tree, size, i, 1 << ident)
        _fenwick_add(fenwick, i + 1, 1)
        last[ident] = i
    return MRCT(sets=table, n_unique=n_unique)


def build_mrct_auto(stripped: StrippedTrace) -> MRCT:
    """Pick the fastest exact MRCT builder for this trace.

    NumPy + long trace → :func:`build_mrct_fast`; no NumPy but long,
    reuse-heavy trace → :func:`build_mrct_fenwick`; otherwise the
    classic :func:`repro.core.mrct.build_mrct` (lowest constants).
    All three produce identical tables.
    """
    if _np is not None and stripped.n >= FAST_MRCT_MIN_REFS:
        return build_mrct_fast(stripped)
    if (
        _np is None
        and stripped.n >= FENWICK_MIN_REFS
        and stripped.n_unique >= FENWICK_MIN_UNIQUE
    ):
        return build_mrct_fenwick(stripped)
    return build_mrct(stripped)
