"""Replacement-policy robustness — future work "cache management policies".

The analytical model is exact for LRU, which the paper fixes as "the
most common and often optimal" choice (section 2.1) and names as a
future design axis (section 4).  This module quantifies how far that
assumption carries: every LRU-derived instance is re-simulated under
FIFO, PLRU and seeded-random replacement, reporting the miss deltas and
whether the budget still holds.

(PLRU needs power-of-two ways; instances with other associativities are
skipped for that policy and marked as such.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cache.config import CacheConfig, ReplacementKind, is_power_of_two
from repro.cache.simulator import simulate_trace
from repro.core.instance import CacheInstance, ExplorationResult
from repro.trace.trace import Trace

DEFAULT_POLICIES = (
    ReplacementKind.FIFO,
    ReplacementKind.PLRU,
    ReplacementKind.RANDOM,
)


@dataclass(frozen=True)
class PolicyOutcome:
    """One instance simulated under one alternative policy.

    Attributes:
        policy: the replacement policy simulated.
        non_cold_misses: its non-cold miss count (None when the policy
            cannot implement the instance, e.g. PLRU with 3 ways).
    """

    policy: ReplacementKind
    non_cold_misses: Optional[int]

    @property
    def applicable(self) -> bool:
        """False when the policy cannot realize this geometry."""
        return self.non_cold_misses is not None


@dataclass(frozen=True)
class RobustnessRecord:
    """All policy outcomes for one LRU-derived instance.

    Attributes:
        instance: the (D, A) point under test.
        lru_misses: the (exact) LRU miss count it was derived with.
        budget: the miss budget it was derived for.
        outcomes: per-policy simulation outcomes.
    """

    instance: CacheInstance
    lru_misses: int
    budget: int
    outcomes: Dict[ReplacementKind, PolicyOutcome]

    def within_budget(self, policy: ReplacementKind) -> Optional[bool]:
        """Does the instance still meet K under ``policy``? (None = n/a)"""
        outcome = self.outcomes[policy]
        if not outcome.applicable:
            return None
        return outcome.non_cold_misses <= self.budget

    def worst_misses(self) -> int:
        """Largest miss count across all applicable policies (incl. LRU)."""
        counts = [self.lru_misses] + [
            o.non_cold_misses for o in self.outcomes.values() if o.applicable
        ]
        return max(counts)

    @property
    def robust(self) -> bool:
        """True when every applicable policy stays within the budget."""
        return self.worst_misses() <= self.budget


def policy_robustness(
    trace: Trace,
    result: ExplorationResult,
    policies: Sequence[ReplacementKind] = DEFAULT_POLICIES,
    seed: int = 0,
) -> List[RobustnessRecord]:
    """Simulate every instance of a result under alternative policies."""
    if not result.misses:
        raise ValueError("result carries no LRU miss counts")
    records: List[RobustnessRecord] = []
    for instance, lru_misses in zip(result.instances, result.misses):
        outcomes: Dict[ReplacementKind, PolicyOutcome] = {}
        for policy in policies:
            if policy is ReplacementKind.PLRU and not is_power_of_two(
                instance.associativity
            ):
                outcomes[policy] = PolicyOutcome(policy, None)
                continue
            config = CacheConfig(
                depth=instance.depth,
                associativity=instance.associativity,
                replacement=policy,
                seed=seed,
            )
            misses = simulate_trace(trace, config).non_cold_misses
            outcomes[policy] = PolicyOutcome(policy, misses)
        records.append(
            RobustnessRecord(
                instance=instance,
                lru_misses=lru_misses,
                budget=result.budget,
                outcomes=outcomes,
            )
        )
    return records
