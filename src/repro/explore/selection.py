"""Cost-aware selection among budget-satisfying cache instances.

The analytical explorer answers "which (D, A) meet the miss budget";
a designer then picks one by hardware cost — the area/energy/latency
trade the paper's introduction frames.  This module attaches
:mod:`repro.analysis.hwmodel` estimates to exploration results and
ranks them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.analysis.hwmodel import HardwareEstimate, estimate_hardware
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.core.linesize import LineSweepResult
from repro.explore.pareto import pareto_filter


@dataclass(frozen=True)
class CostedInstance:
    """A cache instance with its hardware cost attached.

    Attributes:
        instance: the (D, A) pair.
        line_words: line size (1 for the paper's fixed-line space).
        estimate: normalized area/energy/latency estimate.
        non_cold_misses: analytical miss count at this point.
        run_energy: total dynamic energy of replaying the whole trace
            (accesses + refill traffic), normalized units.
    """

    instance: CacheInstance
    line_words: int
    estimate: HardwareEstimate
    non_cold_misses: int
    run_energy: float

    @property
    def size_words(self) -> int:
        """Capacity in words, line size included."""
        return self.instance.size_words * self.line_words


def cost_exploration(
    explorer: AnalyticalCacheExplorer,
    result: ExplorationResult,
    address_bits: int = 32,
) -> List[CostedInstance]:
    """Attach hardware costs to a one-word-line exploration result."""
    if not result.misses:
        raise ValueError("result carries no miss counts")
    accesses = len(explorer.trace)
    cold = explorer.stripped.n_unique
    costed: List[CostedInstance] = []
    for instance, misses in zip(result.instances, result.misses):
        estimate = estimate_hardware(instance.to_config(), address_bits)
        costed.append(
            CostedInstance(
                instance=instance,
                line_words=1,
                estimate=estimate,
                non_cold_misses=misses,
                run_energy=estimate.total_energy(accesses, misses + cold),
            )
        )
    return costed


def cost_line_sweep(
    sweep: LineSweepResult,
    accesses: int,
    address_bits: int = 32,
) -> List[CostedInstance]:
    """Attach hardware costs to every point of a line-size sweep."""
    if accesses < 0:
        raise ValueError("accesses must be non-negative")
    costed: List[CostedInstance] = []
    for point in sweep.instances:
        estimate = estimate_hardware(point.to_config(), address_bits)
        costed.append(
            CostedInstance(
                instance=point.instance,
                line_words=point.line_words,
                estimate=estimate,
                non_cold_misses=point.non_cold_misses,
                run_energy=estimate.total_energy(accesses, point.total_misses),
            )
        )
    return costed


def cheapest(
    costed: List[CostedInstance],
    key: Callable[[CostedInstance], float] = lambda c: c.run_energy,
) -> CostedInstance:
    """The minimum-cost instance under ``key`` (default: run energy)."""
    if not costed:
        raise ValueError("no instances to choose from")
    return min(costed, key=key)


def cost_pareto(costed: List[CostedInstance]) -> List[CostedInstance]:
    """Non-dominated set over (area, run energy, access time, misses)."""
    return pareto_filter(
        costed,
        lambda c: (
            c.estimate.area_bits,
            c.run_energy,
            c.estimate.access_time,
            float(c.non_cold_misses),
        ),
    )
