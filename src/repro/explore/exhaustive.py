"""Exhaustive simulation DSE — the brute-force corner of Figure 1(a).

Simulates *every* configuration in a :class:`~repro.explore.space.DesignSpace`
and reads the per-depth minimum associativity off the full miss grid.
Guaranteed optimal, and the cost yardstick the analytical algorithm is
benchmarked against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cache.simulator import simulate_trace
from repro.core.instance import CacheInstance, ExplorationResult
from repro.explore.space import DesignSpace
from repro.trace.trace import Trace


@dataclass
class ExhaustiveResult:
    """Everything the exhaustive sweep learned.

    Attributes:
        result: per-depth minimum associativity meeting the budget (the
            same shape the analytical explorer outputs).  Depths whose
            minimum exceeds the space's ``max_associativity`` are omitted.
        grid: non-cold misses for every simulated (depth, associativity).
        simulations: how many full trace simulations were run.
        elapsed_seconds: wall-clock cost of the sweep.
    """

    result: ExplorationResult
    grid: Dict[Tuple[int, int], int]
    simulations: int
    elapsed_seconds: float

    def misses(self, depth: int, associativity: int) -> int:
        """Simulated non-cold misses at one grid point."""
        return self.grid[(depth, associativity)]


def exhaustive_explore(
    trace: Trace, budget: int, space: DesignSpace
) -> ExhaustiveResult:
    """Simulate the whole space, then pick per-depth minima.

    Args:
        trace: the trace to optimize for.
        budget: the paper's K (non-cold misses allowed).
        space: the depth x associativity grid to sweep.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    start = time.perf_counter()
    grid: Dict[Tuple[int, int], int] = {}
    simulations = 0
    for config in space:
        outcome = simulate_trace(trace, config)
        grid[(config.depth, config.associativity)] = outcome.non_cold_misses
        simulations += 1
    elapsed = time.perf_counter() - start

    instances: List[CacheInstance] = []
    achieved: List[int] = []
    for depth in space.depths:
        for associativity in space.associativities:
            misses = grid[(depth, associativity)]
            if misses <= budget:
                instances.append(
                    CacheInstance(depth=depth, associativity=associativity)
                )
                achieved.append(misses)
                break
    result = ExplorationResult(
        budget=budget,
        instances=instances,
        misses=achieved,
        trace_name=trace.name,
    )
    return ExhaustiveResult(
        result=result,
        grid=grid,
        simulations=simulations,
        elapsed_seconds=elapsed,
    )
