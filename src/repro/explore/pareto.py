"""Pareto filtering of cache design points.

The analytical explorer emits one instance per depth; a designer usually
wants the non-dominated subset — no other instance is both smaller and
misses less.  :func:`pareto_filter` is the generic minimizer;
:func:`pareto_instances` applies it to (size, misses) pairs.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.core.instance import CacheInstance, ExplorationResult

T = TypeVar("T")


def pareto_filter(
    items: Sequence[T], metrics: Callable[[T], Tuple[float, ...]]
) -> List[T]:
    """Return the non-dominated items, minimizing every metric component.

    Item ``x`` dominates ``y`` when ``metrics(x) <= metrics(y)``
    component-wise with at least one strict inequality.  Of items with
    identical metrics, the first is kept.

    Cost is ``O(n^2)`` comparisons — design spaces here are tiny.
    """
    values = [metrics(item) for item in items]
    kept: List[T] = []
    for i, item in enumerate(items):
        dominated = False
        for j, other in enumerate(values):
            if j == i:
                continue
            le = all(o <= v for o, v in zip(other, values[i]))
            lt = any(o < v for o, v in zip(other, values[i]))
            if le and (lt or (other == values[i] and j < i)):
                dominated = True
                break
        if not dominated:
            kept.append(item)
    return kept


def pareto_instances(result: ExplorationResult) -> List[CacheInstance]:
    """Non-dominated (size, misses) instances of an exploration result.

    Requires the result to carry achieved miss counts (the analytical
    explorer always fills them in).
    """
    if not result.misses:
        raise ValueError("result carries no miss counts to trade off against size")
    paired = list(zip(result.instances, result.misses))
    kept = pareto_filter(
        paired, lambda pair: (pair[0].size_words, pair[1])
    )
    return [instance for instance, _ in kept]
