"""Cache design spaces.

The paper's space is depth x associativity with one-word lines; a
:class:`DesignSpace` enumerates exactly that grid as simulator configs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.cache.config import CacheConfig, ReplacementKind, is_power_of_two


@dataclass(frozen=True)
class DesignSpace:
    """A depth x associativity grid.

    Attributes:
        min_depth: smallest cache depth (power of two).
        max_depth: largest cache depth (power of two).
        max_associativity: associativities explored are ``1 .. this``.
        replacement: replacement policy for every point (paper: LRU).
    """

    min_depth: int = 2
    max_depth: int = 1024
    max_associativity: int = 8
    replacement: ReplacementKind = ReplacementKind.LRU

    def __post_init__(self) -> None:
        if not is_power_of_two(self.min_depth):
            raise ValueError(f"min_depth must be a power of two, got {self.min_depth}")
        if not is_power_of_two(self.max_depth):
            raise ValueError(f"max_depth must be a power of two, got {self.max_depth}")
        if self.min_depth > self.max_depth:
            raise ValueError("min_depth must not exceed max_depth")
        if self.max_associativity < 1:
            raise ValueError("max_associativity must be >= 1")

    @property
    def depths(self) -> List[int]:
        """All depths in the space, ascending."""
        out = []
        depth = self.min_depth
        while depth <= self.max_depth:
            out.append(depth)
            depth *= 2
        return out

    @property
    def associativities(self) -> List[int]:
        """All associativities in the space, ascending."""
        return list(range(1, self.max_associativity + 1))

    def __len__(self) -> int:
        return len(self.depths) * self.max_associativity

    def __iter__(self) -> Iterator[CacheConfig]:
        for depth in self.depths:
            for associativity in self.associativities:
                yield CacheConfig(
                    depth=depth,
                    associativity=associativity,
                    replacement=self.replacement,
                )

    @classmethod
    def for_trace_bits(cls, address_bits: int, max_associativity: int = 8) -> "DesignSpace":
        """Space covering all depths a trace of given width can index."""
        return cls(
            min_depth=2,
            max_depth=1 << max(1, address_bits - 1),
            max_associativity=max_associativity,
        )
