"""Design-space exploration framework around both of the paper's Figure 1 flows.

* :mod:`repro.explore.exhaustive` — the traditional approach taken to its
  limit: simulate every configuration in the space.
* :mod:`repro.explore.heuristic` — the traditional iterative
  design-simulate-analyze loop (simulate, inspect misses, adjust, repeat).
* :mod:`repro.explore.pareto` — Pareto filtering of (size, misses)
  trade-offs.
* :mod:`repro.explore.compare` — head-to-head agreement and cost
  comparison of the traditional flows against the analytical algorithm.
"""

from repro.explore.space import DesignSpace
from repro.explore.exhaustive import ExhaustiveResult, exhaustive_explore
from repro.explore.heuristic import HeuristicResult, iterative_heuristic_explore
from repro.explore.pareto import pareto_filter, pareto_instances
from repro.explore.compare import MethodComparison, compare_methods
from repro.explore.hierarchy import (
    HierarchyExplorer,
    HierarchyResult,
    explore_hierarchy,
    split_cache_misses,
)
from repro.explore.phases import (
    PhaseExploration,
    PhaseResult,
    explore_phases,
)
from repro.explore.policies import (
    PolicyOutcome,
    RobustnessRecord,
    policy_robustness,
)
from repro.explore.selection import (
    CostedInstance,
    cheapest,
    cost_exploration,
    cost_line_sweep,
    cost_pareto,
)

__all__ = [
    "DesignSpace",
    "ExhaustiveResult",
    "exhaustive_explore",
    "HeuristicResult",
    "iterative_heuristic_explore",
    "pareto_filter",
    "pareto_instances",
    "MethodComparison",
    "compare_methods",
    "HierarchyExplorer",
    "HierarchyResult",
    "explore_hierarchy",
    "split_cache_misses",
    "PhaseExploration",
    "PhaseResult",
    "explore_phases",
    "PolicyOutcome",
    "RobustnessRecord",
    "policy_robustness",
    "CostedInstance",
    "cheapest",
    "cost_exploration",
    "cost_line_sweep",
    "cost_pareto",
]
