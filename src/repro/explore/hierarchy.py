"""Two-level hierarchy exploration — the paper's "SoC artifacts" future work.

An L2 cache services exactly the miss stream of the L1 in front of it,
so the analytical algorithm applies one level down: simulate the L1
once to obtain its miss trace
(:func:`repro.cache.simulator.miss_stream`), then explore L2 depths and
associativities analytically on that trace.  One L1 simulation replaces
the entire per-L2-configuration simulation sweep a traditional
methodology would run.

Global miss accounting: an access misses the whole hierarchy iff it
misses L1 *and* the resulting L2 access misses; the L2's non-cold-miss
budget therefore bounds the memory traffic beyond the compulsory
(first-touch) fills, which no hierarchy can avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.config import CacheConfig
from repro.cache.result import SimulationResult
from repro.cache.simulator import miss_stream
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import CacheInstance, ExplorationResult
from repro.trace.trace import Trace


@dataclass
class HierarchyResult:
    """Outcome of exploring L2 behind a fixed L1.

    Attributes:
        l1_config: the fixed first-level cache.
        l1_result: its simulation result on the full trace.
        miss_trace: the L1 miss stream (L2's input, L1-line granularity).
        l2_result: analytical exploration of the miss stream at the
            given budget.
    """

    l1_config: CacheConfig
    l1_result: SimulationResult
    miss_trace: Trace
    l2_result: ExplorationResult

    @property
    def l1_misses(self) -> int:
        """All L1 misses = L2 accesses."""
        return self.l1_result.misses

    def memory_accesses(self, l2_instance: CacheInstance) -> int:
        """Accesses that fall through to main memory for one L2 choice.

        Compulsory L2 misses (unique lines) plus the analytical non-cold
        count of the chosen instance.
        """
        assoc = self.l2_result.associativity_for(l2_instance.depth)
        if assoc is None or assoc > l2_instance.associativity:
            raise ValueError(
                f"{l2_instance} was not derived from this exploration"
            )
        index = [i.depth for i in self.l2_result.instances].index(
            l2_instance.depth
        )
        non_cold = self.l2_result.misses[index]
        return self.miss_trace.unique_count() + non_cold


class HierarchyExplorer:
    """Explore second-level caches behind a fixed L1.

    Args:
        trace: the processor-side reference trace.
        l1_config: the fixed L1 cache configuration.

    Example:
        >>> from repro.trace import loop_nest_trace
        >>> from repro.cache import CacheConfig
        >>> explorer = HierarchyExplorer(
        ...     loop_nest_trace(64, 10), CacheConfig(depth=8, associativity=1)
        ... )
        >>> explorer.explore(0).l2_result.budget
        0
    """

    def __init__(self, trace: Trace, l1_config: CacheConfig) -> None:
        self.trace = trace
        self.l1_config = l1_config
        self._miss_trace: Optional[Trace] = None
        self._l1_result: Optional[SimulationResult] = None
        self._explorer: Optional[AnalyticalCacheExplorer] = None

    @property
    def miss_trace(self) -> Trace:
        """The (cached) L1 miss stream."""
        if self._miss_trace is None:
            self._miss_trace, self._l1_result = miss_stream(
                self.trace, self.l1_config
            )
        return self._miss_trace

    @property
    def l1_result(self) -> SimulationResult:
        """The (cached) L1 simulation result."""
        self.miss_trace  # force the single L1 simulation
        assert self._l1_result is not None
        return self._l1_result

    @property
    def l2_explorer(self) -> AnalyticalCacheExplorer:
        """Analytical explorer over the miss stream."""
        if self._explorer is None:
            self._explorer = AnalyticalCacheExplorer(self.miss_trace)
        return self._explorer

    def explore(self, budget: int) -> HierarchyResult:
        """Optimal L2 (D, A) per depth for an L2 non-cold miss budget."""
        return HierarchyResult(
            l1_config=self.l1_config,
            l1_result=self.l1_result,
            miss_trace=self.miss_trace,
            l2_result=self.l2_explorer.explore(budget),
        )

    def l2_misses(self, depth: int, associativity: int) -> int:
        """Exact non-cold L2 miss count for one L2 geometry."""
        return self.l2_explorer.misses(depth, associativity)


def explore_hierarchy(
    trace: Trace, l1_config: CacheConfig, budget: int
) -> HierarchyResult:
    """One-shot helper around :class:`HierarchyExplorer`."""
    return HierarchyExplorer(trace, l1_config).explore(budget)


def split_cache_misses(
    instruction_trace: Trace,
    data_trace: Trace,
    depth: int,
    associativity: int,
) -> int:
    """Non-cold misses of a split I/D pair, each of the given geometry.

    Split caches do not interact, so the total is the sum of the two
    analytical counts — used by the unified-vs-split experiment.
    """
    inst = AnalyticalCacheExplorer(instruction_trace).misses(depth, associativity)
    data = AnalyticalCacheExplorer(data_trace).misses(depth, associativity)
    return inst + data
