"""Phase-based exploration for reconfigurable caches.

The paper's research group followed this work with *adaptive* caches
that reconfigure at runtime (Nacul & Givargis, "Adaptive Online Cache
Reconfiguration for Low Power Systems").  The analytical algorithm
supports that style of design directly: split the trace into phases,
explore each phase independently, and compare the per-phase optima
against the single best static configuration — the difference is the
*reconfiguration benefit* an adaptive cache could harvest.

Phase boundaries here are equal-length windows (program phases in
embedded kernels are loop-aligned, so window counts of 4–16 work well);
callers with better phase knowledge can pass explicit boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import ExplorationResult
from repro.trace.trace import Trace


@dataclass
class PhaseResult:
    """One phase's exploration.

    Attributes:
        index: phase number (0-based).
        start, end: trace positions (half-open interval).
        result: the phase's analytical exploration at the shared budget.
    """

    index: int
    start: int
    end: int
    result: ExplorationResult

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class PhaseExploration:
    """Outcome of a phase-based exploration.

    Attributes:
        budget: per-phase miss budget K.
        phases: per-phase results, in order.
        static_result: the whole-trace exploration at the same budget
            (what a non-reconfigurable cache must satisfy).
    """

    budget: int
    phases: List[PhaseResult]
    static_result: ExplorationResult

    def phase_instances(self, depth: int) -> List[Optional[int]]:
        """Per-phase minimum associativity at one depth (None = unreported)."""
        return [p.result.associativity_for(depth) for p in self.phases]

    def reconfiguration_benefit(self, depth: int) -> Optional[int]:
        """Capacity saved by per-phase reconfiguration at one depth.

        The static cache needs the whole-trace minimum A; a
        reconfigurable one needs each phase's own minimum while that
        phase runs, so its *peak* requirement is the max over phases —
        which can be smaller than the static requirement because the
        static run also pays for *cross-phase* conflicts.  Returns the
        word savings of (static A - max per-phase A) rows, or None when
        the depth is unreported anywhere.
        """
        static_assoc = self.static_result.associativity_for(depth)
        per_phase = self.phase_instances(depth)
        if static_assoc is None or any(a is None for a in per_phase):
            return None
        peak = max(per_phase)
        return (static_assoc - peak) * depth


def explore_phases(
    trace: Trace,
    budget: int,
    phase_count: int = 8,
    boundaries: Optional[Sequence[int]] = None,
    max_depth: Optional[int] = None,
) -> PhaseExploration:
    """Explore per-phase optima plus the static whole-trace answer.

    Args:
        trace: the trace to split.
        budget: miss budget K, applied per phase *and* to the static run
            (phases see fewer references, so per-phase budgets are the
            conservative choice).
        phase_count: number of equal windows when ``boundaries`` is None.
        boundaries: explicit ascending split positions (without 0 and
            ``len(trace)``).
        max_depth: forwarded to every explorer so all results share the
            same depth range.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    n = len(trace)
    if boundaries is None:
        if phase_count < 1:
            raise ValueError("phase_count must be >= 1")
        step = max(1, n // phase_count)
        boundaries = list(range(step, n, step))[: phase_count - 1]
    else:
        boundaries = list(boundaries)
        if boundaries != sorted(boundaries):
            raise ValueError("boundaries must be ascending")
        if boundaries and (boundaries[0] <= 0 or boundaries[-1] >= n):
            raise ValueError("boundaries must lie strictly inside the trace")

    edges = [0] + list(boundaries) + [n]
    if max_depth is None:
        # Share the static explorer's depth range across all phases.
        static_explorer = AnalyticalCacheExplorer(trace)
        max_depth = 1 << static_explorer.report_level
    else:
        static_explorer = AnalyticalCacheExplorer(trace, max_depth=max_depth)

    static_result = AnalyticalCacheExplorer(
        trace, max_depth=max_depth
    ).explore(budget)

    phases: List[PhaseResult] = []
    for index in range(len(edges) - 1):
        start, end = edges[index], edges[index + 1]
        window = trace[start:end]
        window.name = f"{trace.name}/phase{index}" if trace.name else ""
        result = AnalyticalCacheExplorer(window, max_depth=max_depth).explore(
            budget
        )
        phases.append(
            PhaseResult(index=index, start=start, end=end, result=result)
        )
    return PhaseExploration(
        budget=budget, phases=phases, static_result=static_result
    )
