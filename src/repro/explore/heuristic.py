"""The iterative design-simulate-analyze loop — Figure 1(a)'s feedback cycle.

A designer following the traditional methodology does not sweep the whole
grid; they simulate a candidate, look at the miss count, adjust a
parameter and repeat.  This module reproduces that loop mechanically:
per depth, the smallest sufficient associativity is located by doubling
then binary search, each probe costing one full trace simulation.  The
interesting output is the *number of simulations* the loop needed — the
cost the analytical method eliminates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.core.instance import CacheInstance, ExplorationResult
from repro.explore.space import DesignSpace
from repro.trace.trace import Trace


@dataclass
class HeuristicResult:
    """Outcome of the iterative loop.

    Attributes:
        result: per-depth minimal instances found (identical to exhaustive
            for this monotone space — the loop is exact, just cheaper).
        simulations: number of simulate-analyze iterations used.
        probes: every (depth, associativity, misses) triple probed, in
            order — the designer's audit trail.
        elapsed_seconds: wall-clock cost.
    """

    result: ExplorationResult
    simulations: int
    probes: List[Tuple[int, int, int]]
    elapsed_seconds: float


def _probe(
    trace: Trace,
    depth: int,
    associativity: int,
    cache: Dict[Tuple[int, int], int],
    probes: List[Tuple[int, int, int]],
) -> int:
    """Simulate one candidate (memoized) and log the iteration."""
    key = (depth, associativity)
    if key not in cache:
        config = CacheConfig(depth=depth, associativity=associativity)
        cache[key] = simulate_trace(trace, config).non_cold_misses
        probes.append((depth, associativity, cache[key]))
    return cache[key]


def iterative_heuristic_explore(
    trace: Trace, budget: int, space: DesignSpace
) -> HeuristicResult:
    """Run the design-simulate-analyze loop over every depth.

    Per depth: probe A=1; while over budget, double A (galloping); then
    binary-search the gap.  Misses are non-increasing in A under LRU, so
    the result is exact.  Depths where even ``max_associativity`` fails
    are omitted, mirroring :func:`~repro.explore.exhaustive.exhaustive_explore`.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    start = time.perf_counter()
    cache: Dict[Tuple[int, int], int] = {}
    probes: List[Tuple[int, int, int]] = []
    instances: List[CacheInstance] = []
    achieved: List[int] = []

    for depth in space.depths:
        # Gallop upward until the budget is met (or the space is exhausted).
        low = 1
        high = 1
        while _probe(trace, depth, high, cache, probes) > budget:
            low = high + 1
            high *= 2
            if high > space.max_associativity:
                high = space.max_associativity
                if (
                    low > high
                    or _probe(trace, depth, high, cache, probes) > budget
                ):
                    high = None
                break
        if high is None:
            continue  # this depth cannot meet the budget within the space
        # Binary search in (low-1, high]; invariant: high meets the budget.
        while low < high:
            mid = (low + high) // 2
            if _probe(trace, depth, mid, cache, probes) <= budget:
                high = mid
            else:
                low = mid + 1
        instances.append(CacheInstance(depth=depth, associativity=high))
        achieved.append(cache[(depth, high)])

    elapsed = time.perf_counter() - start
    result = ExplorationResult(
        budget=budget,
        instances=instances,
        misses=achieved,
        trace_name=trace.name,
    )
    return HeuristicResult(
        result=result,
        simulations=len(probes),
        probes=probes,
        elapsed_seconds=elapsed,
    )
