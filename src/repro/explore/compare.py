"""Head-to-head comparison of exploration methods (Figure 1(a) vs 1(b)).

Runs the analytical explorer, the exhaustive sweep and the iterative
heuristic on the same trace and budget, checks that all three agree on
the per-depth minimum associativity, and reports the cost of each — the
quantitative version of the paper's motivation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.instance import ExplorationResult
from repro.explore.exhaustive import ExhaustiveResult, exhaustive_explore
from repro.explore.heuristic import HeuristicResult, iterative_heuristic_explore
from repro.explore.space import DesignSpace
from repro.trace.trace import Trace


@dataclass
class MethodComparison:
    """Results and costs of the three exploration methods on one problem.

    Attributes:
        analytical: the analytical result (Figure 1(b)).
        analytical_seconds: its wall-clock cost (prelude + postlude).
        exhaustive: the full-sweep baseline.
        heuristic: the iterative-loop baseline.
        budget: the miss budget all methods targeted.
    """

    analytical: ExplorationResult
    analytical_seconds: float
    exhaustive: ExhaustiveResult
    heuristic: HeuristicResult
    budget: int

    def agreement(self) -> bool:
        """True when all methods agree wherever they both report a depth.

        The simulation-based methods omit depths whose minimum
        associativity exceeds the searched space, so agreement is checked
        on the intersection of reported depths.
        """
        analytical = self.analytical.as_dict()
        for other in (self.exhaustive.result, self.heuristic.result):
            for depth, assoc in other.as_dict().items():
                if depth in analytical and analytical[depth] != assoc:
                    return False
        return True

    def disagreements(self) -> List[str]:
        """Human-readable description of any disagreements."""
        analytical = self.analytical.as_dict()
        problems: List[str] = []
        for label, other in (
            ("exhaustive", self.exhaustive.result),
            ("heuristic", self.heuristic.result),
        ):
            for depth, assoc in other.as_dict().items():
                if depth in analytical and analytical[depth] != assoc:
                    problems.append(
                        f"depth {depth}: analytical says A={analytical[depth]}, "
                        f"{label} says A={assoc}"
                    )
        return problems

    @property
    def speedup_vs_exhaustive(self) -> float:
        """Wall-clock speedup of analytical over the exhaustive sweep."""
        if self.analytical_seconds <= 0:
            return float("inf")
        return self.exhaustive.elapsed_seconds / self.analytical_seconds

    @property
    def speedup_vs_heuristic(self) -> float:
        """Wall-clock speedup of analytical over the iterative loop."""
        if self.analytical_seconds <= 0:
            return float("inf")
        return self.heuristic.elapsed_seconds / self.analytical_seconds


def compare_methods(
    trace: Trace, budget: int, space: Optional[DesignSpace] = None
) -> MethodComparison:
    """Run all three methods on one trace/budget and package the outcome."""
    if space is None:
        space = DesignSpace.for_trace_bits(trace.address_bits)
    start = time.perf_counter()
    explorer = AnalyticalCacheExplorer(trace, max_depth=space.max_depth)
    analytical = explorer.explore(budget)
    analytical_seconds = time.perf_counter() - start
    exhaustive = exhaustive_explore(trace, budget, space)
    heuristic = iterative_heuristic_explore(trace, budget, space)
    return MethodComparison(
        analytical=analytical,
        analytical_seconds=analytical_seconds,
        exhaustive=exhaustive,
        heuristic=heuristic,
        budget=budget,
    )
