"""Phase recorder: nested monotonic timers, counters and memory sampling.

The paper's selling point is that the whole design space falls out of
*one* analytical pass, so the interesting question about any run is
where that pass spends its time — strip vs. zero/one sets vs. MRCT vs.
the postlude engine.  :class:`Recorder` answers it: pipeline stages wrap
themselves in ``with recorder.phase("prelude:mrct"):`` and the recorder
accumulates a tree of :class:`PhaseRecord` nodes with monotonic-clock
durations, plus named counters (trace length, N', conflict sets, ...)
attached to whichever phase was open when they were recorded.

The default everywhere is :data:`NULL_RECORDER`, a :class:`NullRecorder`
whose every method is a constant-time no-op returning a shared null
context manager — instrumented code paths pay a single attribute call
and nothing else when profiling is off (the benchmark harness keeps
this honest).

Memory sampling is opt-in (``Recorder(memory=True)``): ``tracemalloc``
is started around the outermost phase and the traced peak, together
with ``ru_maxrss`` from :mod:`resource` where available, lands in
:attr:`Recorder.memory_stats`.  Recorders are single-run, single-thread
objects; make a fresh one per run.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class PhaseRecord:
    """One timed phase: a node in the recorder's phase tree.

    Attributes:
        name: phase label, e.g. ``"prelude:strip"`` or ``"engine:serial"``.
        duration_s: wall-clock seconds (monotonic) the phase was open.
        children: phases opened while this one was open, in order.
        counters: counters recorded while this phase was innermost.
    """

    name: str
    duration_s: float = 0.0
    children: List["PhaseRecord"] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready ``{name, duration_s, counters, children}`` tree."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "counters": dict(self.counters),
            "children": [child.as_dict() for child in self.children],
        }

    def find(self, name: str) -> Optional["PhaseRecord"]:
        """First phase named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class _PhaseContext:
    """Context manager for one open phase (re-entered never, used once)."""

    __slots__ = ("_recorder", "_record", "_start")

    def __init__(self, recorder: "Recorder", record: PhaseRecord) -> None:
        self._recorder = recorder
        self._record = record

    def __enter__(self) -> PhaseRecord:
        self._start = time.perf_counter()
        return self._record

    def __exit__(self, *exc_info: object) -> None:
        self._record.duration_s += time.perf_counter() - self._start
        self._recorder._close_phase(self._record)


class Recorder:
    """Collects a tree of timed phases plus counters for one run.

    Args:
        memory: when True, sample ``tracemalloc`` around the outermost
            phase and peak RSS at the end of it (adds tracing overhead —
            leave off for pure timing runs).
        thread_safe: when True, guard counter updates with a lock so
            multiple threads may :meth:`count`/:meth:`record`
            concurrently (the serve daemon's recorder outlives many
            requests).  Phases remain single-thread; only counters get
            the lock.
    """

    enabled = True

    def __init__(self, memory: bool = False, thread_safe: bool = False) -> None:
        self.phases: List[PhaseRecord] = []
        self.counters: Dict[str, int] = {}
        self.memory_stats: Dict[str, int] = {}
        self._memory = memory
        self._lock = threading.Lock() if thread_safe else None
        self._stack: List[PhaseRecord] = []
        self._first_start: Optional[float] = None
        self._last_end: Optional[float] = None
        self._started_tracemalloc = False

    # -- phases -----------------------------------------------------------------

    def phase(self, name: str) -> _PhaseContext:
        """Open a (possibly nested) timed phase: ``with recorder.phase(n):``."""
        record = PhaseRecord(name=name)
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.phases.append(record)
            if self._first_start is None:
                self._first_start = time.perf_counter()
                if self._memory:
                    self._start_memory()
        self._stack.append(record)
        return _PhaseContext(self, record)

    def _close_phase(self, record: PhaseRecord) -> None:
        if not self._stack or self._stack[-1] is not record:
            raise RuntimeError(
                f"phase {record.name!r} closed out of order; "
                "recorder phases must nest strictly"
            )
        self._stack.pop()
        if not self._stack:
            self._last_end = time.perf_counter()
            if self._memory:
                self._sample_memory()

    # -- counters ---------------------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` on the innermost open phase."""
        if self._lock is not None:
            with self._lock:
                self._count(name, value)
        else:
            self._count(name, value)

    def _count(self, name: str, value: int) -> None:
        if self._stack:
            bucket = self._stack[-1].counters
            bucket[name] = bucket.get(name, 0) + value
        self.counters[name] = self.counters.get(name, 0) + value

    def record(self, name: str, value: int) -> None:
        """Set counter ``name`` to ``value`` (gauge semantics, not additive)."""
        if self._lock is not None:
            with self._lock:
                self._record(name, value)
        else:
            self._record(name, value)

    def _record(self, name: str, value: int) -> None:
        if self._stack:
            self._stack[-1].counters[name] = value
        self.counters[name] = value

    def counters_snapshot(self) -> Dict[str, int]:
        """A consistent copy of the counter totals (lock-guarded)."""
        if self._lock is not None:
            with self._lock:
                return dict(self.counters)
        return dict(self.counters)

    # -- memory -----------------------------------------------------------------

    def _start_memory(self) -> None:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def _sample_memory(self) -> None:
        import tracemalloc

        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.memory_stats["tracemalloc_peak_bytes"] = max(
                peak, self.memory_stats.get("tracemalloc_peak_bytes", 0)
            )
            if self._started_tracemalloc:
                tracemalloc.stop()
                self._started_tracemalloc = False
        try:
            import resource

            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        except (ImportError, ValueError):  # pragma: no cover - non-POSIX
            rss_kb = 0
        if rss_kb:
            self.memory_stats["peak_rss_kb"] = rss_kb

    # -- results ----------------------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Wall time from the first phase opening to the last one closing."""
        if self._first_start is None:
            return 0.0
        end = self._last_end
        if end is None:  # still inside a phase
            end = time.perf_counter()
        return end - self._first_start

    @property
    def total_s(self) -> float:
        """Sum of top-level phase durations (<= :attr:`wall_s` + gaps)."""
        return sum(record.duration_s for record in self.phases)

    def find(self, name: str) -> Optional[PhaseRecord]:
        """First phase named ``name`` anywhere in the tree (depth-first)."""
        for record in self.phases:
            found = record.find(name)
            if found is not None:
                return found
        return None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary: phases tree, counters, wall time, memory."""
        return {
            "wall_s": self.wall_s,
            "phases": [record.as_dict() for record in self.phases],
            "counters": dict(self.counters),
            "memory": dict(self.memory_stats),
        }

    def render(self, precision: int = 3) -> str:
        """Human-readable indented phase tree with durations and counters."""
        lines: List[str] = []

        def walk(record: PhaseRecord, depth: int) -> None:
            note = ""
            if record.counters:
                pairs = ", ".join(
                    f"{k}={v}" for k, v in sorted(record.counters.items())
                )
                note = f"  [{pairs}]"
            lines.append(
                f"{'  ' * depth}{record.name:<24s} "
                f"{record.duration_s:.{precision}f}s{note}"
            )
            for child in record.children:
                walk(child, depth + 1)

        for record in self.phases:
            walk(record, 0)
        lines.append(f"{'total':<24s} {self.wall_s:.{precision}f}s")
        return "\n".join(lines)


class _NullContext:
    """Shared do-nothing context manager returned by :class:`NullRecorder`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """No-op recorder: the default when profiling is disabled.

    Every method is constant-time and allocation-free, so instrumented
    code can call it unconditionally without measurable overhead.
    """

    enabled = False
    phases: List[PhaseRecord] = []
    counters: Dict[str, int] = {}
    memory_stats: Dict[str, int] = {}
    wall_s = 0.0
    total_s = 0.0

    __slots__ = ()

    def phase(self, name: str) -> _NullContext:
        """Return the shared null context manager (times nothing)."""
        return _NULL_CONTEXT

    def count(self, name: str, value: int = 1) -> None:
        """Discard the counter update."""

    def record(self, name: str, value: int) -> None:
        """Discard the gauge update."""

    def find(self, name: str) -> None:
        """Nothing is ever recorded, so nothing is ever found."""
        return None

    def as_dict(self) -> Dict[str, object]:
        """An empty summary (kept schema-shaped for convenience)."""
        return {"wall_s": 0.0, "phases": [], "counters": {}, "memory": {}}

    def render(self, precision: int = 3) -> str:
        """A single line saying profiling was off."""
        return "(profiling disabled)"


#: Shared singleton used as the default recorder everywhere.
NULL_RECORDER = NullRecorder()
