"""Run manifests: one JSON document describing one instrumented run.

A manifest pins down everything needed to interpret (or reproduce) a
profiled run: which engine actually executed (``auto`` resolved), the
options it ran with, the trace's shape, the recorder's phase tree and
counters, and the host environment.  ``repro explore --profile`` and
``repro profile`` emit one; CI validates the emitted document against
:func:`validate_manifest` so the format cannot rot silently.

Document layout (schema ``repro-run-manifest/1``)::

    {
      "schema": "repro-run-manifest/1",
      "engine": str,              # concrete engine that ran (auto resolved)
      "requested_engine": str,    # what the caller asked for
      "options": {str: int|str|bool},
      "trace": {"name": str, "n": int, "n_unique": int | null,
                "address_bits": int},
      "wall_s": float,            # first phase open -> last phase close
      "phases": [                 # recorder tree, recursive
        {"name": str, "duration_s": float,
         "counters": {str: int}, "children": [...]}
      ],
      "counters": {str: int},     # run-level totals
      "memory": {str: int},       # tracemalloc peak / peak RSS, if sampled
      "environment": {"python": str, "numpy": str | null,
                      "platform": str},
      "verify": {str: int},       # optional: verification counters
                                  # (repro verify --profile runs only)
      "serve": {str: int},        # optional: serve daemon counters
                                  # (repro serve shutdown manifests only)
      "sweep": {str: int}         # optional: sweep scheduler counters
    }                             # (repro sweep aggregate manifests only)

Validation enforces the structural schema *and* the timing invariant
the whole layer exists for: at every tree node, children's durations
must sum to no more than the parent's (within tolerance), and top-level
phases must sum to the recorded wall time (within tolerance) — i.e. the
profile accounts for where the run's time actually went.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.recorder import Recorder

#: Manifest document schema identifier.
MANIFEST_SCHEMA = "repro-run-manifest/1"

#: Timing slack allowed by :func:`validate_manifest`: a duration sum may
#: exceed its bound by 5% relative or 25 ms absolute (interpreter noise
#: on sub-millisecond runs), whichever is larger.
TIMING_TOLERANCE_REL = 0.05
TIMING_TOLERANCE_ABS_S = 0.025


def environment_info() -> Dict[str, Optional[str]]:
    """Host fingerprint shared by manifests and the benchmark harness."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
    }


@dataclass
class RunManifest:
    """A completed run's telemetry, ready for JSON export.

    Attributes:
        engine: concrete engine that executed (``auto`` already resolved).
        requested_engine: engine name the caller asked for.
        options: engine options the run used (only JSON-scalar values).
        trace: trace shape (``name``, ``n``, ``n_unique``, ``address_bits``).
        wall_s: recorder wall time (first phase open to last close).
        phases: the recorder's phase tree, as ``PhaseRecord.as_dict()``.
        counters: run-level counter totals.
        memory: memory samples (empty when sampling was off).
        environment: host fingerprint from :func:`environment_info`.
        verify: verification counter totals (``repro verify`` runs
            only; ``None`` — and omitted from the JSON — otherwise).
        serve: serve-daemon counter totals (``repro serve`` shutdown
            manifests only; ``None`` — and omitted — otherwise).
        sweep: sweep-scheduler counter totals (``repro sweep``
            aggregate manifests only; ``None`` — and omitted —
            otherwise).
    """

    engine: str
    requested_engine: str
    options: Dict[str, object]
    trace: Dict[str, object]
    wall_s: float
    phases: List[Dict[str, object]]
    counters: Dict[str, int] = field(default_factory=dict)
    memory: Dict[str, int] = field(default_factory=dict)
    environment: Dict[str, object] = field(default_factory=environment_info)
    verify: Optional[Dict[str, int]] = None
    serve: Optional[Dict[str, int]] = None
    sweep: Optional[Dict[str, int]] = None

    @classmethod
    def from_recorder(
        cls,
        recorder: Recorder,
        engine: str,
        requested_engine: str,
        options: Dict[str, object],
        trace: Dict[str, object],
    ) -> "RunManifest":
        """Build a manifest from a recorder that has finished its run."""
        return cls(
            engine=engine,
            requested_engine=requested_engine,
            options=dict(options),
            trace=dict(trace),
            wall_s=recorder.wall_s,
            phases=[record.as_dict() for record in recorder.phases],
            counters=dict(recorder.counters),
            memory=dict(recorder.memory_stats),
        )

    def to_json_dict(self) -> Dict[str, object]:
        """The manifest as a plain JSON-serializable dict."""
        document: Dict[str, object] = {
            "schema": MANIFEST_SCHEMA,
            "engine": self.engine,
            "requested_engine": self.requested_engine,
            "options": dict(self.options),
            "trace": dict(self.trace),
            "wall_s": self.wall_s,
            "phases": self.phases,
            "counters": dict(self.counters),
            "memory": dict(self.memory),
            "environment": dict(self.environment),
        }
        if self.verify is not None:
            document["verify"] = dict(self.verify)
        if self.serve is not None:
            document["serve"] = dict(self.serve)
        if self.sweep is not None:
            document["sweep"] = dict(self.sweep)
        return document

    def to_json(self, indent: int = 2) -> str:
        """The manifest serialized as a JSON string."""
        return json.dumps(self.to_json_dict(), indent=indent)


def _tolerance(bound: float) -> float:
    return max(bound * TIMING_TOLERANCE_REL, TIMING_TOLERANCE_ABS_S)


def _validate_phase(node: object, path: str) -> float:
    """Validate one phase-tree node; return its duration."""
    if not isinstance(node, dict):
        raise ValueError(f"{path}: phase must be an object")
    for key in ("name", "duration_s", "counters", "children"):
        if key not in node:
            raise ValueError(f"{path}: phase missing field {key!r}")
    if not isinstance(node["name"], str) or not node["name"]:
        raise ValueError(f"{path}: phase name must be a non-empty string")
    duration = node["duration_s"]
    if not isinstance(duration, (int, float)) or isinstance(duration, bool):
        raise ValueError(f"{path}: duration_s must be a number")
    if duration < 0:
        raise ValueError(f"{path}: negative duration")
    counters = node["counters"]
    if not isinstance(counters, dict) or any(
        not isinstance(k, str)
        or not isinstance(v, int)
        or isinstance(v, bool)
        for k, v in counters.items()
    ):
        raise ValueError(f"{path}: counters must map strings to ints")
    children = node["children"]
    if not isinstance(children, list):
        raise ValueError(f"{path}: children must be a list")
    child_total = sum(
        _validate_phase(child, f"{path}/{node['name']}")
        for child in children
    )
    if child_total > duration + _tolerance(duration):
        raise ValueError(
            f"{path}/{node['name']}: children sum to {child_total:.6f}s, "
            f"more than the phase's own {duration:.6f}s"
        )
    return float(duration)


def validate_manifest(document: object) -> None:
    """Raise ``ValueError`` unless ``document`` is a valid run manifest."""
    if not isinstance(document, dict):
        raise ValueError("manifest must be a JSON object")
    if document.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(f"schema must be {MANIFEST_SCHEMA!r}")
    for key, kind in (("engine", str), ("requested_engine", str)):
        if not isinstance(document.get(key), kind) or not document[key]:
            raise ValueError(f"missing or mistyped field {key!r}")
    for key in ("options", "trace", "counters", "memory", "environment"):
        if not isinstance(document.get(key), dict):
            raise ValueError(f"field {key!r} must be an object")
    trace = document["trace"]
    for key in ("name", "n", "n_unique", "address_bits"):
        if key not in trace:
            raise ValueError(f"trace missing field {key!r}")
    if not isinstance(trace["name"], str):
        raise ValueError("trace.name must be a string")
    for key in ("n", "address_bits"):
        if not isinstance(trace[key], int) or isinstance(trace[key], bool):
            raise ValueError(f"trace.{key} must be an int")
    if trace["n_unique"] is not None and not isinstance(trace["n_unique"], int):
        raise ValueError("trace.n_unique must be an int or null")
    environment = document["environment"]
    for key in ("python", "platform"):
        if not isinstance(environment.get(key), str):
            raise ValueError(f"environment.{key} must be a string")
    if not isinstance(environment.get("numpy"), (str, type(None))):
        raise ValueError("environment.numpy must be a string or null")
    for section in ("verify", "serve", "sweep"):
        if section in document:
            counters = document[section]
            if not isinstance(counters, dict) or any(
                not isinstance(k, str)
                or not isinstance(v, int)
                or isinstance(v, bool)
                for k, v in counters.items()
            ):
                raise ValueError(f"{section!r} must map strings to ints")
    wall = document.get("wall_s")
    if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
        raise ValueError("wall_s must be a non-negative number")
    phases = document.get("phases")
    if not isinstance(phases, list) or not phases:
        raise ValueError("'phases' must be a non-empty list")
    top_total = sum(_validate_phase(node, "phases") for node in phases)
    if abs(top_total - wall) > _tolerance(wall):
        raise ValueError(
            f"top-level phases sum to {top_total:.6f}s but wall_s is "
            f"{wall:.6f}s — the profile does not account for the run"
        )
