"""Observability layer: per-phase telemetry for the analytical pipeline.

* :mod:`repro.obs.recorder` — :class:`Recorder` (nested phase timers,
  counters, opt-in memory sampling) and the zero-overhead
  :class:`NullRecorder` default.
* :mod:`repro.obs.manifest` — :class:`RunManifest`, the JSON document a
  profiled run exports, plus its schema validator.

The pipeline (``EngineInputs`` prelude stages, every registered engine,
the explorers, the CLI) carries a recorder everywhere but records
nothing unless a real :class:`Recorder` is supplied — pass one to
``AnalyticalCacheExplorer(recorder=...)``, or use ``repro explore
--profile`` / ``repro profile`` from the command line.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    environment_info,
    validate_manifest,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    PhaseRecord,
    Recorder,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "RunManifest",
    "environment_info",
    "validate_manifest",
    "NULL_RECORDER",
    "NullRecorder",
    "PhaseRecord",
    "Recorder",
]
