"""Property-based tests of the trace substrate."""

from hypothesis import given, settings, strategies as st

from repro.trace.io import read_trace, write_trace
from repro.trace.reference import AccessKind
from repro.trace.stats import max_misses_depth_one
from repro.trace.strip import strip_trace
from repro.trace.trace import Trace

addresses = st.lists(st.integers(0, 1023), min_size=0, max_size=100)


@given(addrs=addresses)
@settings(max_examples=150, deadline=None)
def test_strip_identifiers_are_dense_and_consistent(addrs):
    stripped = strip_trace(Trace(addrs, address_bits=10))
    assert sorted(stripped.id_of.values()) == list(range(stripped.n_unique))
    for i, addr in enumerate(addrs):
        assert stripped.unique_addresses[stripped.id_sequence[i]] == addr


@given(addrs=addresses)
@settings(max_examples=150, deadline=None)
def test_strip_preserves_order_of_first_occurrence(addrs):
    stripped = strip_trace(Trace(addrs, address_bits=10))
    seen = []
    for addr in addrs:
        if addr not in seen:
            seen.append(addr)
    assert stripped.unique_addresses == seen


@given(addrs=addresses)
@settings(max_examples=100, deadline=None)
def test_max_misses_bounds(addrs):
    trace = Trace(addrs, address_bits=10)
    max_misses = max_misses_depth_one(trace)
    assert 0 <= max_misses <= max(0, len(addrs) - trace.unique_count())


@given(
    addrs=st.lists(st.integers(0, 4095), min_size=0, max_size=60),
    suffix=st.sampled_from([".trace", ".din", ".csv", ".din.gz"]),
    kinds=st.lists(
        st.sampled_from(list(AccessKind)), min_size=0, max_size=60
    ),
)
@settings(max_examples=60, deadline=None)
def test_io_roundtrip(tmp_path_factory, addrs, suffix, kinds):
    tmp_path = tmp_path_factory.mktemp("io")
    kinds = (kinds + [AccessKind.READ] * len(addrs))[: len(addrs)]
    trace = Trace(addrs, address_bits=12, kinds=kinds)
    path = tmp_path / f"t{suffix}"
    write_trace(trace, path)
    loaded = read_trace(path, address_bits=12)
    assert list(loaded) == addrs
    if suffix != ".trace":  # text format does not carry kinds
        assert [loaded.kind(i) for i in range(len(loaded))] == kinds


@given(addrs=addresses, split=st.integers(0, 100))
@settings(max_examples=100, deadline=None)
def test_concat_of_slices_is_identity(addrs, split):
    trace = Trace(addrs, address_bits=10)
    split = min(split, len(trace))
    rebuilt = trace[:split].concat(trace[split:])
    assert list(rebuilt) == addrs
    assert rebuilt.address_bits == 10
