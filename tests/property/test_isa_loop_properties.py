"""Property-based tests: random *looping* programs vs a golden interpreter.

The straight-line ALU property test cannot exercise branches, memory or
the loop bookkeeping that real kernels live on.  Here hypothesis builds
structured programs — an initialization, a bounded counted loop whose
body mixes ALU ops and memory traffic, and a final store — and an
independent Python interpreter predicts the final state and the exact
data-trace length.
"""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.machine import Machine
from repro.isa.instructions import to_signed
from repro.isa.program import DATA_BASE

WORD = 0xFFFFFFFF

_BODY_OPS = {
    "add": lambda a, b: (a + b) & WORD,
    "sub": lambda a, b: (a - b) & WORD,
    "xor": lambda a, b: a ^ b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "mul": lambda a, b: (a * b) & WORD,
}


@st.composite
def loop_programs(draw):
    """(assembly source, expected registers, expected memory cells)."""
    iterations = draw(st.integers(1, 12))
    array_len = draw(st.integers(1, 8))
    seeds = [draw(st.integers(0, WORD)) for _ in range(4)]
    body = [
        (
            draw(st.sampled_from(sorted(_BODY_OPS))),
            draw(st.integers(2, 5)),
            draw(st.integers(2, 5)),
            draw(st.integers(2, 5)),
        )
        for _ in range(draw(st.integers(0, 6)))
    ]
    initial_memory = [draw(st.integers(0, WORD)) for _ in range(array_len)]

    lines = [
        "        .data",
        "arr:    .word " + ", ".join(str(v) for v in initial_memory),
        "out:    .space %d" % array_len,
        "        .text",
        f"        li r10, {iterations}",
        "        li r1, 0",
    ]
    for reg, value in enumerate(seeds, start=2):
        lines.append(f"        li r{reg}, {value}")
    lines.append("loop:")
    # Read one array element (index = i % array_len), fold it in.
    lines.append(f"        li r9, {array_len}")
    lines.append("        rem r8, r1, r9")
    lines.append("        lw r7, arr(r8)")
    lines.append("        add r2, r2, r7")
    for op, rd, rs, rt in body:
        lines.append(f"        {op} r{rd}, r{rs}, r{rt}")
    # Write a result element.
    lines.append("        sw r2, out(r8)")
    lines.append("        inc r1")
    lines.append("        blt r1, r10, loop")
    lines.append("        halt")
    source = "\n".join(lines)

    # Golden interpretation.
    regs = [0] * 16
    regs[10] = iterations
    for reg, value in enumerate(seeds, start=2):
        regs[reg] = value
    memory = {DATA_BASE + i: v for i, v in enumerate(initial_memory)}
    out_base = DATA_BASE + array_len
    data_accesses = 0
    for i in range(iterations):
        regs[1] = i
        regs[9] = array_len
        regs[8] = i % array_len
        regs[7] = memory[DATA_BASE + regs[8]]
        data_accesses += 1
        regs[2] = (regs[2] + regs[7]) & WORD
        for op, rd, rs, rt in body:
            regs[rd] = _BODY_OPS[op](regs[rs], regs[rt])
        memory[out_base + regs[8]] = regs[2]
        data_accesses += 1
        regs[1] = i + 1
    expected_out = [
        memory.get(out_base + j, 0) for j in range(array_len)
    ]
    return source, regs, expected_out, data_accesses


@given(case=loop_programs())
@settings(max_examples=100, deadline=None)
def test_loop_programs_match_golden_interpreter(case):
    source, expected_regs, expected_out, data_accesses = case
    machine = Machine(assemble(source))
    machine.run()
    for reg in range(1, 11):
        assert machine.register(reg) == expected_regs[reg], (reg, source)
    assert machine.read_block("out", len(expected_out)) == expected_out
    assert len(machine.data_trace()) == data_accesses


@given(case=loop_programs())
@settings(max_examples=40, deadline=None)
def test_loop_programs_trace_structure(case):
    source, _, _, _ = case
    machine = Machine(assemble(source))
    machine.run()
    itrace = machine.instruction_trace()
    assert len(itrace) == machine.instructions_executed
    # The loop head must be fetched as many times as the loop iterates.
    head = machine.program.symbols["loop"]
    iterations = to_signed(machine.register(10))
    assert sum(1 for a in itrace if a == head) == iterations
