"""Property-based ``max_level`` agreement (hypothesis).

Every engine x prelude combination must produce identical histograms
under any legal level bound — including the edge bounds the validation
sweep exists for: ``max_level=0`` (only the full-address level),
bounds larger than the address width (clamped, not an error), and
empty traces.  Appendable sessions must agree too, under any chunking.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import engines
from repro.stream import TraceSession
from repro.trace.trace import Trace

FAST_ENGINES = ("serial", "streaming", "vectorized")


@st.composite
def bounded_cases(draw, max_length=80, max_bits=6):
    """(trace, max_level) pairs that stress the bound's edges."""
    bits = draw(st.integers(min_value=1, max_value=max_bits))
    sequence = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=0,
            max_size=max_length,
        )
    )
    # Weight the interesting region: 0, within range, and beyond the
    # address width (which every engine must clamp, never reject).
    max_level = draw(
        st.one_of(
            st.just(0),
            st.integers(min_value=0, max_value=bits),
            st.integers(min_value=bits + 1, max_value=bits + 16),
        )
    )
    return Trace(sequence, address_bits=bits), max_level


def _histograms(trace, name, max_level, prelude="auto"):
    inputs = engines.EngineInputs(trace, prelude=prelude)
    spec = engines.resolve_engine(name, inputs)
    options = spec.filter_options({"processes": 2})
    return spec.compute(inputs, max_level=max_level, **options)


@given(case=bounded_cases())
@settings(max_examples=60, deadline=None)
def test_engines_agree_under_any_legal_bound(case):
    trace, max_level = case
    reference = _histograms(trace, "serial", max_level)
    assert set(reference) == set(
        range(min(max_level, trace.address_bits) + 1)
    )
    for name in FAST_ENGINES:
        assert _histograms(trace, name, max_level) == reference, name


@given(case=bounded_cases(max_length=40, max_bits=5))
@settings(max_examples=30, deadline=None)
def test_preludes_agree_under_any_legal_bound(case):
    trace, max_level = case
    reference = _histograms(trace, "serial", max_level, prelude="python")
    for prelude in engines.PRELUDE_MODES:
        assert (
            _histograms(trace, "serial", max_level, prelude=prelude)
            == reference
        ), prelude


@given(
    case=bounded_cases(max_length=60, max_bits=5),
    cut_seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=40, deadline=None)
def test_sessions_agree_under_any_chunking(case, cut_seed):
    import random

    trace, max_level = case
    reference = _histograms(trace, "serial", max_level)
    rng = random.Random(cut_seed)
    cuts = sorted(
        {0, len(trace)}
        | set(rng.sample(range(len(trace) + 1), min(len(trace), 4)))
    )
    session = TraceSession(trace.address_bits, max_level=max_level)
    for start, stop in zip(cuts, cuts[1:]):
        session.append(trace[start:stop])
    if len(trace) == 0:
        session.append([])
    assert session.histograms() == reference


@given(bits=st.integers(min_value=1, max_value=8), level=st.integers(min_value=0, max_value=24))
@settings(max_examples=30, deadline=None)
def test_empty_traces_yield_empty_levels(bits, level):
    trace = Trace([], address_bits=bits)
    for name in FAST_ENGINES:
        histograms = _histograms(trace, name, level)
        assert set(histograms) == set(range(min(level, bits) + 1))
        assert all(not h.counts for h in histograms.values())
