"""Property-based tests of the cache simulator."""

from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig, ReplacementKind
from repro.cache.simulator import CacheSimulator, simulate_trace
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace

addresses = st.lists(st.integers(0, 255), min_size=0, max_size=150)
depth_logs = st.integers(0, 5)
assocs = st.integers(1, 4)


@given(addrs=addresses, depth_log=depth_logs, assoc=assocs)
@settings(max_examples=150, deadline=None)
def test_accounting_identity(addrs, depth_log, assoc):
    trace = Trace(addrs, address_bits=8)
    result = simulate_trace(trace, CacheConfig(depth=1 << depth_log, associativity=assoc))
    assert result.hits + result.cold_misses + result.non_cold_misses == len(addrs)


@given(addrs=addresses, depth_log=depth_logs, assoc=assocs)
@settings(max_examples=150, deadline=None)
def test_cold_misses_equal_unique_lines(addrs, depth_log, assoc):
    trace = Trace(addrs, address_bits=8)
    result = simulate_trace(trace, CacheConfig(depth=1 << depth_log, associativity=assoc))
    assert result.cold_misses == len(set(addrs))


@given(addrs=addresses, depth_log=depth_logs)
@settings(max_examples=100, deadline=None)
def test_lru_inclusion_property(addrs, depth_log):
    """Misses are non-increasing in associativity for LRU caches."""
    trace = Trace(addrs, address_bits=8)
    previous = None
    for assoc in (1, 2, 3, 4, 6):
        misses = simulate_trace(
            trace, CacheConfig(depth=1 << depth_log, associativity=assoc)
        ).non_cold_misses
        if previous is not None:
            assert misses <= previous
        previous = misses


@given(addrs=addresses)
@settings(max_examples=100, deadline=None)
def test_full_capacity_cache_never_misses_twice(addrs):
    """A cache with one way per possible address never evicts anything."""
    trace = Trace(addrs, address_bits=8)
    result = simulate_trace(trace, CacheConfig(depth=256, associativity=1))
    assert result.non_cold_misses == 0


@given(
    addrs=addresses,
    depth_log=depth_logs,
    assoc=assocs,
    kind_choices=st.lists(st.sampled_from([AccessKind.READ, AccessKind.WRITE]), max_size=150),
)
@settings(max_examples=100, deadline=None)
def test_writeback_bounded_by_writes(addrs, depth_log, assoc, kind_choices):
    """Each write-back needs a write that dirtied the line since the last one.

    So total write-backs (evictions plus the final flush) never exceed the
    number of write accesses, and with at least one write, the flush
    guarantees at least one write-back overall only if the dirty line was
    never already written back — hence the weaker zero-writes corollary.
    """
    kinds = (kind_choices + [AccessKind.READ] * len(addrs))[: len(addrs)]
    config = CacheConfig(depth=1 << depth_log, associativity=assoc)
    sim = CacheSimulator(config)
    writes = 0
    for addr, kind in zip(addrs, kinds):
        sim.access(addr, kind)
        if kind is AccessKind.WRITE:
            writes += 1
    sim.flush()
    assert sim.writebacks <= writes
    if writes == 0:
        assert sim.writebacks == 0


@given(addrs=addresses, depth_log=depth_logs, assoc=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_plru_and_lru_agree_when_working_set_fits(addrs, depth_log, assoc):
    """With no evictions, every sane policy produces the same hit counts."""
    trace = Trace(addrs, address_bits=8)
    # Choose a capacity that provably fits everything: one way per address.
    big_lru = simulate_trace(trace, CacheConfig(depth=256, associativity=1))
    big_plru = simulate_trace(
        trace,
        CacheConfig(depth=256, associativity=1, replacement=ReplacementKind.PLRU),
    )
    big_fifo = simulate_trace(
        trace,
        CacheConfig(depth=256, associativity=1, replacement=ReplacementKind.FIFO),
    )
    assert big_lru.hits == big_plru.hits == big_fifo.hits
