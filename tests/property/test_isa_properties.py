"""Property-based tests of the VM: random straight-line ALU programs must
match a Python golden interpreter exactly."""

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.isa.machine import Machine
from repro.isa.instructions import to_signed

WORD = 0xFFFFFFFF

# (mnemonic, python semantics over unsigned 32-bit words)
_OPS = {
    "add": lambda a, b: (a + b) & WORD,
    "sub": lambda a, b: (a - b) & WORD,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: ~(a | b) & WORD,
    "sll": lambda a, b: (a << (b & 31)) & WORD,
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: (to_signed(a) >> (b & 31)) & WORD,
    "slt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "sltu": lambda a, b: 1 if a < b else 0,
    "mul": lambda a, b: (a * b) & WORD,
}

ops = st.sampled_from(sorted(_OPS))
regs = st.integers(1, 13)  # leave r0/sp/ra alone


@st.composite
def programs(draw):
    """A random straight-line ALU program plus its expected register file."""
    lines = []
    state = [0] * 16
    # Seed some registers with random values.
    for reg in range(1, 8):
        value = draw(st.integers(0, WORD))
        lines.append(f"li r{reg}, {value}")
        state[reg] = value
    for _ in range(draw(st.integers(0, 25))):
        op = draw(ops)
        rd, rs, rt = draw(regs), draw(regs), draw(regs)
        lines.append(f"{op} r{rd}, r{rs}, r{rt}")
        state[rd] = _OPS[op](state[rs], state[rt])
    lines.append("halt")
    return "\n".join(lines), state


@given(case=programs())
@settings(max_examples=200, deadline=None)
def test_random_alu_programs_match_golden_interpreter(case):
    source, expected = case
    machine = Machine(assemble(source), trace=False)
    machine.run()
    for reg in range(1, 14):
        assert machine.register(reg) == expected[reg], source


@given(case=programs())
@settings(max_examples=50, deadline=None)
def test_instruction_trace_length_equals_executed(case):
    source, _ = case
    machine = Machine(assemble(source))
    machine.run()
    assert len(machine.instruction_trace()) == machine.instructions_executed
