"""Property-based sweep-spec round-trips (hypothesis).

Any valid spec must survive ``to_yaml_text`` -> ``spec_from_yaml``
bit-exactly (the YAML file *is* the sweep's identity — it feeds the
plan fingerprint), and injecting an unknown field anywhere in the
document must be rejected, whatever the rest of the document looks
like.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sweep.spec import (
    SPEC_SCHEMA,
    SweepSpecError,
    spec_from_dict,
    spec_from_yaml,
)

WORKLOADS = ("crc", "fir", "adpcm", "bcnt", "qurt")
ENGINES = ("serial", "parallel", "parallel-shm", "streaming", "vectorized",
           "auto")
PRELUDES = ("auto", "fast", "python")
POLICIES = ("lru", "fifo")
WARMTH = ("cold", "warm")
SCALES = ("tiny", "small", "default", "large")

small = st.integers(min_value=1, max_value=64)


@st.composite
def trace_entries(draw):
    kind = draw(st.sampled_from(("workload", "loop", "loop-mix", "zipf",
                                 "markov", "random")))
    if kind == "workload":
        return draw(st.sampled_from(WORKLOADS))
    if kind in ("loop", "loop-mix"):
        return f"{kind}:{draw(small)}x{draw(small)}"
    n = draw(st.integers(min_value=8, max_value=512))
    unique = draw(st.integers(min_value=1, max_value=8))
    seed_suffix = draw(st.sampled_from(("", ":3")))
    if kind == "zipf":
        return f"zipf:{n}:{unique}{seed_suffix}"
    if kind == "random":
        return f"random:{n}:{unique}{seed_suffix}"
    return f"markov:{n}:{unique}:0.9{seed_suffix}"


def axis_subset(values):
    return st.lists(
        st.sampled_from(values), min_size=1, max_size=len(values), unique=True
    )


@st.composite
def spec_documents(draw):
    document = {
        "schema": SPEC_SCHEMA,
        "name": draw(
            st.text(alphabet="abcdefghij-", min_size=1, max_size=12)
        ),
        "seed": draw(st.integers(min_value=0, max_value=9)),
        "scale": draw(st.sampled_from(SCALES)),
        "axes": {
            "traces": draw(
                st.lists(trace_entries(), min_size=1, max_size=4, unique=True)
            ),
            "engines": draw(axis_subset(ENGINES)),
            "preludes": draw(axis_subset(PRELUDES)),
            "warmth": draw(axis_subset(WARMTH)),
            "policies": draw(axis_subset(POLICIES)),
            "levels": draw(axis_subset((1, 2))),
        },
        "budgets": draw(
            st.lists(
                st.integers(min_value=0, max_value=128),
                min_size=1,
                max_size=4,
                unique=True,
            )
        ),
        "percents": draw(
            st.lists(
                st.sampled_from((0.5, 1.0, 5.0, 25.0)),
                min_size=0,
                max_size=2,
                unique=True,
            )
        ),
        "execution": {
            "workers": draw(st.integers(min_value=1, max_value=8)),
            "timeout_s": draw(st.sampled_from((1.0, 60.0, 300.0))),
            "retries": draw(st.integers(min_value=0, max_value=3)),
            "backoff_s": draw(st.sampled_from((0.01, 0.25, 1.0))),
        },
        "report": {
            "tolerance": draw(st.sampled_from((0.25, 1.0, 9.0))),
            "baselines": draw(
                st.lists(
                    st.sampled_from(
                        ("BENCH_postlude.json", "BENCH_prelude.json")
                    ),
                    min_size=0,
                    max_size=2,
                    unique=True,
                )
            ),
        },
    }
    if draw(st.booleans()):
        document["max_depth"] = draw(st.sampled_from((8, 16, 64)))
    if draw(st.booleans()):
        document["l2_depth"] = draw(st.sampled_from((16, 32, 64)))
    if draw(st.booleans()):
        document["include"] = [
            {"engine": draw(st.sampled_from(ENGINES)),
             "prelude": draw(st.sampled_from(PRELUDES))}
        ]
    if draw(st.booleans()):
        document["exclude"] = [{"warmth": draw(st.sampled_from(WARMTH))}]
    return document


@settings(max_examples=60, deadline=None)
@given(document=spec_documents())
def test_yaml_round_trip_is_identity(document):
    spec = spec_from_dict(document)
    assert spec_from_yaml(spec.to_yaml_text()) == spec


@settings(max_examples=60, deadline=None)
@given(document=spec_documents())
def test_to_dict_round_trip_is_identity(document):
    spec = spec_from_dict(document)
    assert spec_from_dict(spec.to_dict()) == spec


@settings(max_examples=40, deadline=None)
@given(
    document=spec_documents(),
    section=st.sampled_from(("top", "axes", "execution", "report", "rule")),
    field=st.text(alphabet="xyz_", min_size=1, max_size=8),
)
def test_unknown_field_injection_rejected(document, section, field):
    known = {
        "top": set(document),
        "axes": set(document["axes"]),
        "execution": set(document["execution"]),
        "report": set(document["report"]),
        "rule": {"trace", "engine", "prelude", "warmth", "policy", "level"},
    }[section]
    if field in known:
        field = field + "_unknown"
    if section == "top":
        document[field] = 1
    elif section == "rule":
        document["include"] = [{"engine": "serial", field: 1}]
    else:
        document[section][field] = 1
    try:
        spec_from_dict(document)
    except SweepSpecError:
        return
    raise AssertionError(
        f"unknown field {field!r} in {section} was not rejected"
    )
