"""Property-based tests for the victim buffer, 3C and traffic modules."""

from hypothesis import given, settings, strategies as st

from repro.analysis.threec import classify_misses
from repro.analysis.traffic import estimate_traffic
from repro.cache.config import CacheConfig, WritePolicy
from repro.cache.simulator import simulate_trace
from repro.cache.victim import simulate_victim
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace

addresses = st.lists(st.integers(0, 127), min_size=0, max_size=100)


@given(addrs=addresses, depth_log=st.integers(0, 4), entries=st.integers(0, 6))
@settings(max_examples=100, deadline=None)
def test_victim_buffer_never_hurts_and_accounts_correctly(
    addrs, depth_log, entries
):
    trace = Trace(addrs, address_bits=7)
    config = CacheConfig(depth=1 << depth_log, associativity=1)
    plain = simulate_trace(trace, config)
    buffered = simulate_victim(trace, config, entries)
    # Accounting identity.
    assert (
        buffered.main_hits
        + buffered.victim_hits
        + buffered.cold_misses
        + buffered.non_cold_misses
        == len(addrs)
    )
    # Cold misses are policy-independent; the buffer never adds misses.
    assert buffered.cold_misses == plain.cold_misses
    assert buffered.non_cold_misses <= plain.non_cold_misses
    if entries == 0:
        assert buffered.non_cold_misses == plain.non_cold_misses


@given(addrs=addresses, entries_small=st.integers(0, 3), extra=st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_more_victim_entries_never_hurt(addrs, entries_small, extra):
    trace = Trace(addrs, address_bits=7)
    config = CacheConfig(depth=8, associativity=1)
    small = simulate_victim(trace, config, entries_small)
    large = simulate_victim(trace, config, entries_small + extra)
    assert large.non_cold_misses <= small.non_cold_misses


@given(
    addrs=st.lists(st.integers(0, 63), min_size=1, max_size=80),
    depth_log=st.integers(0, 4),
    assoc=st.integers(1, 3),
)
@settings(max_examples=100, deadline=None)
def test_three_c_identities(addrs, depth_log, assoc):
    trace = Trace(addrs, address_bits=6)
    explorer = AnalyticalCacheExplorer(trace)
    breakdown = classify_misses(explorer, 1 << depth_log, assoc)
    assert breakdown.compulsory == trace.unique_count()
    assert breakdown.capacity + breakdown.conflict == explorer.misses(
        1 << depth_log, assoc
    )
    assert breakdown.capacity >= 0


@given(
    addrs=st.lists(st.integers(0, 63), min_size=0, max_size=80),
    writes=st.lists(st.booleans(), max_size=80),
    depth_log=st.integers(0, 4),
)
@settings(max_examples=80, deadline=None)
def test_traffic_accounting(addrs, writes, depth_log):
    kinds = [
        AccessKind.WRITE if (i < len(writes) and writes[i]) else AccessKind.READ
        for i in range(len(addrs))
    ]
    trace = Trace(addrs, address_bits=6, kinds=kinds)
    write_count = sum(1 for k in kinds if k is AccessKind.WRITE)
    config = CacheConfig(depth=1 << depth_log, associativity=2)
    estimate = estimate_traffic(trace, config)
    # Fill traffic matches simulated misses; write-backs bounded by writes.
    assert estimate.fill_words == simulate_trace(trace, config).misses
    assert estimate.writeback_words <= write_count
    assert estimate.writethrough_words == 0  # write-back policy default
    # Under write-through, store words equal store count exactly.
    wt_config = CacheConfig(
        depth=1 << depth_log,
        associativity=2,
        write_policy=WritePolicy.WRITE_THROUGH,
    )
    wt = estimate_traffic(trace, wt_config)
    assert wt.writethrough_words == write_count
    assert wt.writeback_words == 0
