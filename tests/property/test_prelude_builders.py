"""Property-based MRCT-builder equivalence (hypothesis).

Every MRCT builder — the paper's incremental ``build_mrct``, the
quadratic ``build_mrct_naive`` oracle, the Fenwick/segment-tree
``build_mrct_fenwick`` and (with NumPy) the bit-matrix
``build_mrct_fast`` — must produce the same conflict sets in the same
occurrence order on arbitrary traces, including the degenerate shapes a
random sampler rarely hits (single reference, all-unique traces).
"""

from hypothesis import given, settings, strategies as st

from repro.core.mrct import build_mrct, build_mrct_naive
from repro.core.prelude_fast import (
    build_mrct_auto,
    build_mrct_fenwick,
    build_packed_mrct,
)
from repro.core.vectorized import numpy_available
from repro.trace.strip import strip_trace
from repro.trace.trace import Trace


@st.composite
def reuse_traces(draw, max_length=150, max_bits=9):
    """Traces with deliberate reuse: references drawn from a small pool."""
    bits = draw(st.integers(min_value=3, max_value=max_bits))
    pool = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=1,
            max_size=30,
        )
    )
    sequence = draw(
        st.lists(st.sampled_from(pool), min_size=1, max_size=max_length)
    )
    return Trace(sequence, address_bits=bits)


def _all_builders():
    builders = [build_mrct, build_mrct_naive, build_mrct_fenwick, build_mrct_auto]
    if numpy_available():
        from repro.core.prelude_fast import build_mrct_fast

        builders.append(build_mrct_fast)
    return builders


def assert_builders_agree(trace):
    stripped = strip_trace(trace)
    reference = build_mrct(stripped)
    for builder in _all_builders():
        table = builder(stripped)
        # Identical sets AND identical occurrence order, per identifier.
        assert table.n_unique == reference.n_unique, builder.__name__
        assert table.sets == reference.sets, builder.__name__


@given(trace=reuse_traces())
@settings(max_examples=80, deadline=None)
def test_builders_agree_on_random_traces(trace):
    assert_builders_agree(trace)


@given(address=st.integers(min_value=0, max_value=255))
@settings(max_examples=20, deadline=None)
def test_builders_agree_on_single_reference(address):
    assert_builders_agree(Trace([address], address_bits=8))


@given(length=st.integers(min_value=1, max_value=120))
@settings(max_examples=20, deadline=None)
def test_builders_agree_on_all_unique_traces(length):
    assert_builders_agree(Trace(list(range(length))))


@given(trace=reuse_traces())
@settings(max_examples=40, deadline=None)
def test_packed_matrix_is_weighted_mrct(trace):
    """The packed bit-matrix is the MRCT as a weighted row multiset."""
    if not numpy_available():
        return
    stripped = strip_trace(trace)
    packed = build_packed_mrct(stripped)
    reference = build_mrct(stripped)
    expected = {}
    for ident, sets in enumerate(reference.sets):
        for conflicts in sets:
            expected[(ident, conflicts)] = (
                expected.get((ident, conflicts), 0) + 1
            )
    actual = {}
    for row in range(packed.n_rows):
        key = (
            int(packed.idents[row]),
            int.from_bytes(packed.matrix[row].tobytes(), "little"),
        )
        actual[key] = actual.get(key, 0) + int(packed.weights[row])
    assert actual == expected
