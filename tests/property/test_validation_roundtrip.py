"""Property test: the simulator-backed validation layer round-trips.

For every explored instance, the analytically minimal associativity must
equal the simulator-derived minimal one: simulation at ``(D, A)`` meets
the budget with exactly the predicted miss count, and simulation one way
below (``A - 1``) fails it.  This is the contract the verification
oracle's instance check (:func:`repro.core.validation.validate_instances`
plus :func:`repro.core.validation.check_minimality`) is built on.
"""

from hypothesis import given, settings, strategies as st

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.validation import check_minimality, validate_instances
from repro.trace.trace import Trace

traces = st.builds(
    Trace,
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=100),
    address_bits=st.just(6),
)


@given(trace=traces, budget=st.integers(0, 20))
@settings(max_examples=100, deadline=None)
def test_validate_instances_round_trips(trace, budget):
    """Predicted misses == simulated misses, within budget, every instance."""
    result = AnalyticalCacheExplorer(trace).explore(budget)
    records = validate_instances(trace, result)
    assert len(records) == len(result.instances)
    for record in records:
        assert record.exact, (
            f"{record.instance}: predicted {record.predicted_misses}, "
            f"simulated {record.simulated.non_cold_misses}"
        )
        assert record.within_budget
        assert record.ok


@given(trace=traces, budget=st.integers(0, 20))
@settings(max_examples=100, deadline=None)
def test_minimality_round_trips(trace, budget):
    """One associativity step below every emitted A fails the budget."""
    result = AnalyticalCacheExplorer(trace).explore(budget)
    records = check_minimality(trace, result)
    probed = {r.instance for r in records}
    for inst in result.instances:
        if inst.associativity >= 2:
            assert inst in probed
    for record in records:
        assert record.minimal, (
            f"{record.instance}: A-1 simulates to {record.misses_below} "
            f"misses, within budget {record.budget} — emitted A not minimal"
        )


@given(trace=traces, budget=st.integers(0, 20))
@settings(max_examples=50, deadline=None)
def test_analytical_minimum_equals_simulated_minimum(trace, budget):
    """The two minima coincide: argmin_A(sim misses <= K) == emitted A."""
    from repro.cache.config import CacheConfig
    from repro.cache.simulator import simulate_trace

    result = AnalyticalCacheExplorer(trace).explore(budget)
    for inst in result.instances:
        sim_min = None
        for assoc in range(1, inst.associativity + 1):
            misses = simulate_trace(
                trace, CacheConfig(depth=inst.depth, associativity=assoc)
            ).non_cold_misses
            if misses <= budget:
                sim_min = assoc
                break
        assert sim_min == inst.associativity
