"""Property-based tests of the analytical core (hypothesis).

The central invariant — analytical miss counts equal simulated LRU miss
counts exactly — plus the structural invariants of the prelude data
structures, checked over arbitrary traces.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig
from repro.cache.onepass import stack_distance_profile
from repro.cache.simulator import simulate_trace
from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.mrct import build_mrct, build_mrct_naive
from repro.core.zerosets import build_zero_one_sets
from repro.trace.strip import strip_trace, strip_trace_sorted
from repro.trace.trace import Trace

# Small address spaces keep shrinking effective while covering all the
# interesting conflict structure.
traces = st.builds(
    Trace,
    st.lists(st.integers(min_value=0, max_value=63), min_size=0, max_size=120),
    address_bits=st.just(6),
)
nonempty_traces = st.builds(
    Trace,
    st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=120),
    address_bits=st.just(6),
)


@given(trace=nonempty_traces, depth_log=st.integers(0, 6), assoc=st.integers(1, 5))
@settings(max_examples=150, deadline=None)
def test_analytical_equals_simulated_misses(trace, depth_log, assoc):
    """THE invariant: analytical == simulated for LRU, any (D, A)."""
    depth = 1 << depth_log
    analytical = AnalyticalCacheExplorer(trace).misses(depth, assoc)
    simulated = simulate_trace(
        trace, CacheConfig(depth=depth, associativity=assoc)
    ).non_cold_misses
    assert analytical == simulated


@given(trace=nonempty_traces, budget=st.integers(0, 30))
@settings(max_examples=100, deadline=None)
def test_explored_instances_meet_budget_and_are_minimal(trace, budget):
    explorer = AnalyticalCacheExplorer(trace)
    result = explorer.explore(budget)
    for inst, misses in zip(result.instances, result.misses):
        assert misses <= budget
        if inst.associativity > 1:
            assert explorer.misses(inst.depth, inst.associativity - 1) > budget


@given(trace=traces)
@settings(max_examples=100, deadline=None)
def test_strip_variants_agree(trace):
    fast = strip_trace(trace)
    slow = strip_trace_sorted(trace)
    assert fast.unique_addresses == slow.unique_addresses
    assert list(fast.id_sequence) == list(slow.id_sequence)


@given(trace=traces)
@settings(max_examples=100, deadline=None)
def test_mrct_builders_agree(trace):
    stripped = strip_trace(trace)
    assert build_mrct(stripped).sets == build_mrct_naive(stripped).sets


@given(trace=traces)
@settings(max_examples=100, deadline=None)
def test_mrct_counts_non_cold_occurrences(trace):
    stripped = strip_trace(trace)
    mrct = build_mrct(stripped)
    assert mrct.total_conflict_sets == len(trace) - stripped.n_unique


@given(trace=traces)
@settings(max_examples=100, deadline=None)
def test_zero_one_sets_partition(trace):
    zerosets = build_zero_one_sets(strip_trace(trace))
    for bit in range(zerosets.address_bits):
        zero, one = zerosets.pair(bit)
        assert zero & one == 0
        assert zero | one == zerosets.universe


@given(trace=nonempty_traces, depth_log=st.integers(0, 6))
@settings(max_examples=100, deadline=None)
def test_level_histogram_equals_stack_distance_profile(trace, depth_log):
    """The MRCT/BCAT histogram must equal Mattson per-set distances."""
    depth = 1 << depth_log
    explorer = AnalyticalCacheExplorer(trace)
    histogram = explorer.histograms[depth_log]
    profile = stack_distance_profile(trace, depth)
    for assoc in range(1, 8):
        assert histogram.misses(assoc) == profile.non_cold_misses(assoc)


@given(trace=nonempty_traces)
@settings(max_examples=100, deadline=None)
def test_zero_budget_associativities_monotone_in_depth(trace):
    result = AnalyticalCacheExplorer(trace).explore(0)
    assocs = [inst.associativity for inst in result]
    assert assocs == sorted(assocs, reverse=True)


@given(trace=nonempty_traces, depth_log=st.integers(0, 6))
@settings(max_examples=100, deadline=None)
def test_misses_monotone_in_associativity(trace, depth_log):
    explorer = AnalyticalCacheExplorer(trace)
    depth = 1 << depth_log
    counts = [explorer.misses(depth, a) for a in range(1, 8)]
    assert counts == sorted(counts, reverse=True)
    # And large-enough associativity always reaches zero misses.
    assert explorer.misses(depth, trace.unique_count() + 1) == 0
