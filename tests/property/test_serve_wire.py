"""Property tests: the serve wire protocol is a lossless bijection.

Two round-trip identities, over randomized inputs:

* request → wire → request preserves every wire-visible field (the
  request dataclass has identity equality, so fields are compared via
  the canonical wire form), and the wire JSON itself survives an actual
  ``json.dumps``/``loads`` cycle;
* report → wire → report is exact for every mode, including multi-trace
  instance ordering and the line-sweep per-line miss counts that the
  pre-serve ``to_json_dict`` used to drop.

Plus the strictness property the protocol promises: injecting *any*
unknown field at any level is rejected.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.request import ExplorationRequest, explore_request
from repro.serve.protocol import (
    ProtocolError,
    request_from_wire,
    request_key,
    request_to_wire,
    response_from_wire,
    response_to_wire,
)
from repro.trace.reference import AccessKind
from repro.trace.trace import Trace


@st.composite
def traces(draw, min_size: int = 1, max_size: int = 40):
    addresses = draw(
        st.lists(
            st.integers(min_value=0, max_value=63),
            min_size=min_size,
            max_size=max_size,
        )
    )
    kinds = None
    if draw(st.booleans()):
        kinds = draw(
            st.lists(
                st.sampled_from(list(AccessKind)),
                min_size=len(addresses),
                max_size=len(addresses),
            )
        )
    name = draw(st.text("abcxyz-", min_size=1, max_size=8))
    return Trace(addresses, address_bits=6, kinds=kinds, name=name)


@st.composite
def requests(draw):
    mode = draw(st.sampled_from(["single", "sum", "each", "linesize"]))
    n_traces = draw(st.integers(1, 3)) if mode in ("sum", "each") else 1
    budgets = tuple(
        draw(st.lists(st.integers(0, 30), min_size=1, max_size=3))
    )
    percents = ()
    if mode == "single" and draw(st.booleans()):
        percents = tuple(
            draw(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=2))
        )
    drawn = tuple(draw(traces()) for _ in range(n_traces))
    # multi-trace exploration requires unique names within one request
    for index, trace in enumerate(drawn):
        trace.name = f"{trace.name}-{index}"
    return ExplorationRequest(
        traces=drawn,
        mode=mode,
        budgets=budgets,
        percents=percents,
        max_depth=draw(st.sampled_from([None, 4, 16])),
        include_depth_one=draw(st.booleans()) if mode == "single" else False,
        line_sizes=(1, 2, 4) if mode == "linesize" else ExplorationRequest.__dataclass_fields__["line_sizes"].default,
        engine=draw(st.sampled_from(["auto", "serial"])),
        processes=draw(st.integers(1, 4)),
        prelude=draw(st.sampled_from(["auto", "python"])),
    )


@given(request=requests())
@settings(max_examples=60, deadline=None)
def test_request_wire_round_trip_identity(request):
    """request → wire → request is the identity on wire-visible fields."""
    wire = request_to_wire(request)
    # the document must be real JSON, not merely JSON-shaped
    wire = json.loads(json.dumps(wire))
    rebuilt = request_from_wire(wire)
    assert request_to_wire(rebuilt) == request_to_wire(request)
    assert rebuilt.traces == request.traces
    for theirs, ours in zip(rebuilt.traces, request.traces):
        assert theirs.name == ours.name
        assert theirs.has_kinds == ours.has_kinds
    # and the dedup key is stable across the cycle
    assert request_key(wire) == request_key(request_to_wire(rebuilt))


@given(request=requests(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_unknown_fields_rejected_everywhere(request, data):
    """Injecting an unknown field at any level fails loudly."""
    wire = json.loads(json.dumps(request_to_wire(request)))
    target = data.draw(
        st.sampled_from(["request", "trace"]), label="injection level"
    )
    name = data.draw(
        st.text("qz_", min_size=1, max_size=6).filter(
            lambda s: s not in wire and s not in wire["traces"][0]
        ),
        label="field name",
    )
    if target == "request":
        wire[name] = 1
    else:
        wire["traces"][0][name] = 1
    with pytest.raises(ProtocolError, match="unknown fields"):
        request_from_wire(wire)


@given(request=requests())
@settings(max_examples=25, deadline=None)
def test_report_wire_round_trip_identity(request):
    """report → wire → report is exact, through real JSON, every mode."""
    report = explore_request(request)
    wire = json.loads(json.dumps(response_to_wire(report)))
    rebuilt = response_from_wire(wire)
    assert rebuilt.to_json_dict() == report.to_json_dict()
    assert rebuilt.mode == report.mode
    assert rebuilt.engine == report.engine
    assert rebuilt.budgets == report.budgets
    if report.mode in ("sum", "each"):
        assert tuple(
            tuple((i.depth, i.associativity) for i in r.instances)
            for r in rebuilt.multi_results
        ) == tuple(
            tuple((i.depth, i.associativity) for i in r.instances)
            for r in report.multi_results
        )
    if report.mode == "linesize":
        for theirs, ours in zip(rebuilt.line_sweeps, report.line_sweeps):
            assert [
                (li.line_words, li.non_cold_misses, li.cold_misses)
                for li in theirs.instances
            ] == [
                (li.line_words, li.non_cold_misses, li.cold_misses)
                for li in ours.instances
            ]
