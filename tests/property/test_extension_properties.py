"""Property-based tests for the extension modules (hypothesis).

Covers the line-size transformation, Puzak trace compaction, miss
streams / hierarchy composition and the derived curves — each checked
against either the simulator or a first-principles recomputation.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.curves import associativity_curve, capacity_curve
from repro.analysis.workingset import reuse_distance_histogram
from repro.cache.config import CacheConfig
from repro.cache.simulator import miss_stream, simulate_trace
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.compaction import compact_trace
from repro.trace.trace import Trace

traces = st.builds(
    Trace,
    st.lists(st.integers(min_value=0, max_value=127), min_size=1, max_size=100),
    address_bits=st.just(7),
)


@given(trace=traces, line_log=st.integers(0, 3), depth_log=st.integers(0, 4),
       assoc=st.integers(1, 4))
@settings(max_examples=120, deadline=None)
def test_line_trace_analysis_equals_multiword_simulation(
    trace, line_log, depth_log, assoc
):
    """Analytical on the line trace == simulator with multiword lines."""
    line_words = 1 << line_log
    depth = 1 << depth_log
    analytical = AnalyticalCacheExplorer(
        trace.to_line_trace(line_words)
    ).misses(depth, assoc)
    simulated = simulate_trace(
        trace,
        CacheConfig(depth=depth, associativity=assoc, line_words=line_words),
    ).non_cold_misses
    assert analytical == simulated


@given(trace=traces, filter_log=st.integers(0, 3), extra_log=st.integers(0, 3),
       assoc=st.integers(1, 3))
@settings(max_examples=120, deadline=None)
def test_compaction_preserves_misses_above_filter_depth(
    trace, filter_log, extra_log, assoc
):
    """The Puzak theorem, fuzzed: exact at every depth >= filter depth."""
    filter_depth = 1 << filter_log
    depth = filter_depth << extra_log
    compacted = compact_trace(trace, filter_depth).trace
    config = CacheConfig(depth=depth, associativity=assoc)
    full = simulate_trace(trace, config)
    short = simulate_trace(compacted, config)
    assert full.non_cold_misses == short.non_cold_misses
    assert full.cold_misses == short.cold_misses


@given(trace=traces, filter_log=st.integers(0, 3))
@settings(max_examples=100, deadline=None)
def test_compaction_preserves_unique_references(trace, filter_log):
    compacted = compact_trace(trace, 1 << filter_log).trace
    assert set(compacted) == set(trace)
    assert len(compacted) <= len(trace)


@given(trace=traces, depth_log=st.integers(0, 4), assoc=st.integers(1, 3))
@settings(max_examples=100, deadline=None)
def test_miss_stream_replay_reproduces_miss_count(trace, depth_log, assoc):
    """Replaying the miss stream through an identical cache misses always."""
    config = CacheConfig(depth=1 << depth_log, associativity=assoc)
    stream, result = miss_stream(trace, config)
    assert len(stream) == result.misses
    # An L2 at least as capable as L1 only sees its own cold misses
    # beyond the L1 cold set when it is *smaller*; with the exact same
    # geometry every streamed reference misses again (it was evicted or
    # cold in an identical cache seeing a superset of the accesses).
    replay = simulate_trace(stream, config)
    assert replay.hits + replay.misses == len(stream)


@given(trace=traces, depth_log=st.integers(0, 4))
@settings(max_examples=80, deadline=None)
def test_associativity_curve_matches_point_queries(trace, depth_log):
    explorer = AnalyticalCacheExplorer(trace)
    depth = 1 << depth_log
    curve = associativity_curve(explorer, depth)
    for point in curve:
        assert point.misses == explorer.misses(depth, point.x)
    assert curve[-1].misses == 0


@given(trace=traces)
@settings(max_examples=80, deadline=None)
def test_capacity_curve_monotone_and_realizable(trace):
    explorer = AnalyticalCacheExplorer(trace)
    curve = capacity_curve(explorer, max_capacity=256)
    misses = [p.misses for p in curve]
    assert misses == sorted(misses, reverse=True)
    for point in curve:
        assert point.instance.size_words == point.x
        assert explorer.misses(
            point.instance.depth, point.instance.associativity
        ) == point.misses


@given(trace=traces)
@settings(max_examples=80, deadline=None)
def test_reuse_histogram_counts_non_cold_accesses(trace):
    histogram = reuse_distance_histogram(trace)
    assert sum(histogram.values()) == len(trace) - trace.unique_count()
