"""Property-based tests for multi-trace exploration and sensitivity."""

from hypothesis import given, settings, strategies as st

from repro.core.explorer import AnalyticalCacheExplorer
from repro.core.multi import MultiTraceExplorer
from repro.core.sensitivity import budget_sensitivity
from repro.trace.trace import Trace


def _traces(draw_lists):
    out = []
    for i, addrs in enumerate(draw_lists):
        trace = Trace(addrs, address_bits=6)
        trace.name = f"t{i}"
        out.append(trace)
    return out


trace_lists = st.lists(
    st.lists(st.integers(0, 63), min_size=1, max_size=60),
    min_size=1,
    max_size=3,
)


@given(lists=trace_lists, budget=st.integers(0, 20))
@settings(max_examples=80, deadline=None)
def test_sum_mode_budget_and_minimality(lists, budget):
    traces = _traces(lists)
    explorer = MultiTraceExplorer(traces)
    result = explorer.explore_sum(budget)
    individuals = [AnalyticalCacheExplorer(t) for t in traces]
    for index, inst in enumerate(result.instances):
        total = sum(
            e.misses(inst.depth, inst.associativity) for e in individuals
        )
        assert total <= budget
        assert result.total_misses(index) == total
        if inst.associativity > 1:
            below = sum(
                e.misses(inst.depth, inst.associativity - 1)
                for e in individuals
            )
            assert below > budget


@given(lists=trace_lists, budget=st.integers(0, 20))
@settings(max_examples=80, deadline=None)
def test_each_mode_is_max_of_individuals(lists, budget):
    traces = _traces(lists)
    result = MultiTraceExplorer(traces).explore_each(budget)
    individuals = {
        t.name: AnalyticalCacheExplorer(t).explore(budget).as_dict()
        for t in traces
    }
    for inst in result.instances:
        expected = max(
            mapping.get(inst.depth, 1) for mapping in individuals.values()
        )
        assert inst.associativity == expected


@given(
    addrs=st.lists(st.integers(0, 63), min_size=1, max_size=80),
    depth_log=st.integers(1, 6),
)
@settings(max_examples=80, deadline=None)
def test_sensitivity_staircase_consistent_with_exploration(addrs, depth_log):
    trace = Trace(addrs, address_bits=6)
    explorer = AnalyticalCacheExplorer(trace)
    depth = 1 << depth_log
    steps = budget_sensitivity(explorer, depth)
    # Contiguity and agreement at every boundary.
    assert steps[0].min_budget == 0
    assert steps[-1].associativity == 1
    histogram = explorer.histograms[depth_log]
    for step in steps:
        # The defining property: at min_budget, this A is the answer.
        assert histogram.min_associativity(step.min_budget) == step.associativity
        if not step.unbounded:
            assert (
                histogram.min_associativity(step.max_budget)
                == step.associativity
            )
            assert (
                histogram.min_associativity(step.max_budget + 1)
                < step.associativity
            )
