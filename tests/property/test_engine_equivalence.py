"""Property-based engine equivalence (hypothesis).

Random traces — varying address width, skewed reuse — must drive every
engine to the same histograms, and those histograms must match
brute-force LRU simulation for every (depth, associativity) probed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.config import CacheConfig
from repro.cache.simulator import simulate_trace
from repro.core import engines
from repro.trace.trace import Trace

FAST_ENGINES = ("serial", "streaming", "vectorized")


@st.composite
def reuse_traces(draw, max_length=120, max_bits=8):
    """Traces with deliberate reuse: references drawn from a small pool."""
    bits = draw(st.integers(min_value=3, max_value=max_bits))
    pool = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << bits) - 1),
            min_size=1,
            max_size=24,
        )
    )
    sequence = draw(
        st.lists(st.sampled_from(pool), min_size=1, max_size=max_length)
    )
    return Trace(sequence, address_bits=bits)


def _histograms_per_engine(trace, names, processes=2):
    inputs = engines.EngineInputs(trace)
    results = {}
    for name in names:
        spec = engines.resolve_engine(name, inputs)
        options = spec.filter_options({"processes": processes})
        results[name] = spec.compute(inputs, **options)
    return results


@given(trace=reuse_traces())
@settings(max_examples=60, deadline=None)
def test_engines_agree_on_random_traces(trace):
    results = _histograms_per_engine(trace, FAST_ENGINES)
    reference = results["serial"]
    for name, histograms in results.items():
        assert histograms == reference, name


@given(
    trace=reuse_traces(),
    depth_log=st.integers(min_value=0, max_value=8),
    assoc=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_engines_match_brute_force_simulation(trace, depth_log, assoc):
    """Histogram miss counts == simulated LRU misses, for every engine."""
    depth = 1 << depth_log
    simulated = simulate_trace(
        trace, CacheConfig(depth=depth, associativity=assoc)
    ).non_cold_misses
    inputs = engines.EngineInputs(trace)
    for name in FAST_ENGINES:
        histograms = engines.compute_histograms(name, inputs)
        histogram = histograms.get(depth_log)
        # Depths beyond the BCAT are conflict-free: zero non-cold misses.
        analytical = histogram.misses(assoc) if histogram is not None else 0
        assert analytical == simulated, name


@pytest.mark.slow
@given(trace=reuse_traces(max_length=3000, max_bits=11))
@settings(max_examples=25, deadline=None)
def test_all_engines_agree_on_larger_traces(trace):
    """Including the multiprocessing engine, on traces up to a few thousand
    references with wider address ranges."""
    names = engines.engine_names(include_auto=False)
    results = _histograms_per_engine(trace, names)
    reference = results["serial"]
    for name, histograms in results.items():
        assert histograms == reference, name
    # And the full (depth, associativity) grid agrees with brute force.
    for depth_log in range(0, trace.address_bits + 1):
        depth = 1 << depth_log
        for assoc in (1, 2, 5):
            simulated = simulate_trace(
                trace, CacheConfig(depth=depth, associativity=assoc)
            ).non_cold_misses
            if depth_log in reference:
                analytical = reference[depth_log].misses(assoc)
            else:
                analytical = 0
            assert analytical == simulated, (depth, assoc)
