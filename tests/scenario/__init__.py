"""Scenario tier tests."""
