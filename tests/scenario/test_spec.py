"""ScenarioSpec: the frozen, validated exploration contract."""

import pytest

from repro.scenario import COST_MODELS, ScenarioSpec


class TestDefaults:
    def test_default_spec_is_the_baseline(self):
        spec = ScenarioSpec()
        assert spec.is_baseline()
        assert spec.policy == "lru"
        assert spec.l2_depth is None
        assert spec.cost_model is None
        assert spec.levels == 1

    def test_any_scenario_dimension_leaves_the_baseline(self):
        assert not ScenarioSpec(policy="fifo").is_baseline()
        assert not ScenarioSpec(l2_depth=16).is_baseline()
        assert not ScenarioSpec(cost_model="energy").is_baseline()

    def test_levels_counts_the_hierarchy(self):
        assert ScenarioSpec(l2_depth=8).levels == 2

    def test_spec_is_frozen_and_hashable(self):
        spec = ScenarioSpec(policy="fifo")
        with pytest.raises(AttributeError):
            spec.policy = "lru"
        assert spec == ScenarioSpec(policy="fifo")
        assert hash(spec) == hash(ScenarioSpec(policy="fifo"))


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            ScenarioSpec(policy="mru")

    def test_unknown_cost_model(self):
        with pytest.raises(ValueError, match="cost_model"):
            ScenarioSpec(cost_model="carbon")

    def test_l2_depth_must_be_a_power_of_two(self):
        with pytest.raises(ValueError, match="l2_depth"):
            ScenarioSpec(l2_depth=12)

    def test_machinery_knobs_still_validated(self):
        with pytest.raises(ValueError, match="unknown engine"):
            ScenarioSpec(engine="warp")
        with pytest.raises(ValueError, match="prelude"):
            ScenarioSpec(prelude="fastest")
        with pytest.raises(ValueError, match="processes"):
            ScenarioSpec(processes=0)
        with pytest.raises(ValueError, match="max_depth"):
            ScenarioSpec(max_depth=7)

    def test_replace_revalidates(self):
        spec = ScenarioSpec()
        assert spec.replace(policy="fifo").policy == "fifo"
        with pytest.raises(ValueError, match="policy"):
            spec.replace(policy="mru")


class TestWireForm:
    def test_json_dict_carries_the_scenario_triple_only(self):
        spec = ScenarioSpec(
            engine="serial", policy="fifo", l2_depth=8, cost_model="time"
        )
        assert spec.to_json_dict() == {
            "policy": "fifo",
            "l2_depth": 8,
            "cost_model": "time",
        }

    def test_cost_models_are_the_documented_triple(self):
        assert COST_MODELS == ("energy", "area", "time")
