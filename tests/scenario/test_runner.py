"""The scenario runner: L2 exactness against multilevel, cost rankings."""

import pytest

from repro.cache.config import CacheConfig, ReplacementKind
from repro.cache.multilevel import simulate_two_level
from repro.core import engines as _engines
from repro.scenario import (
    ScenarioSpec,
    cost_ranking,
    explore_second_level,
    scenario_extras,
)
from repro.trace.synthetic import random_trace, skewed_trace


@pytest.fixture(scope="module")
def trace():
    return random_trace(900, footprint=150, seed=21)


class TestSecondLevel:
    @pytest.mark.parametrize("policy", ["lru", "fifo"])
    def test_l2_counters_match_the_composed_simulation(self, trace, policy):
        spec = ScenarioSpec(policy=policy, l2_depth=16)
        explorer = _engines.policy_explorer(policy, trace)
        budget = explorer.statistics.budget(10.0)
        winner = explorer.explore(budget).smallest()
        entry = explore_second_level(trace, winner, budget, spec)

        replacement = ReplacementKind(policy)
        l1_config = winner.to_config(replacement=replacement)
        for inst in entry["result"]["instances"]:
            l2_config = CacheConfig(
                depth=inst["depth"],
                associativity=inst["associativity"],
                line_words=1,
                replacement=replacement,
            )
            two = simulate_two_level(trace, l1_config, l2_config)
            assert inst["misses"] == two.l2.non_cold_misses, inst
            assert entry["l1_non_cold_misses"] == two.l1.non_cold_misses
            assert entry["l1_cold_misses"] == two.l1.cold_misses

    def test_l2_depths_bounded_by_the_spec(self, trace):
        spec = ScenarioSpec(l2_depth=8)
        explorer = _engines.policy_explorer("lru", trace)
        winner = explorer.explore(0).smallest()
        entry = explore_second_level(trace, winner, 0, spec)
        assert entry["result"]["instances"]
        assert all(
            inst["depth"] <= 8 for inst in entry["result"]["instances"]
        )

    def test_entry_shape(self, trace):
        spec = ScenarioSpec(l2_depth=4)
        explorer = _engines.policy_explorer("lru", trace)
        winner = explorer.explore(0).smallest()
        entry = explore_second_level(trace, winner, 0, spec)
        assert entry["budget"] == 0
        assert entry["l1"] == {
            "depth": winner.depth,
            "associativity": winner.associativity,
        }
        assert entry["miss_trace_name"].endswith("/missL1")
        assert entry["miss_trace_length"] > 0


class TestCostRanking:
    @pytest.mark.parametrize("model", ["energy", "area", "time"])
    def test_designs_sorted_by_the_selected_cost(self, trace, model):
        explorer = _engines.policy_explorer("lru", trace)
        result = explorer.explore_percent(10.0)
        ranking = cost_ranking(
            explorer, result, model, address_bits=trace.address_bits
        )
        costs = [d["cost"] for d in ranking["designs"]]
        assert costs == sorted(costs)
        assert len(ranking["designs"]) == len(result.instances)
        key = {
            "energy": "run_energy",
            "area": "area_bits",
            "time": "access_time",
        }[model]
        for design in ranking["designs"]:
            assert design["cost"] == design[key]


class TestScenarioExtras:
    def test_baseline_produces_no_section(self, trace):
        explorer = _engines.policy_explorer("lru", trace)
        result = explorer.explore(0)
        assert (
            scenario_extras(trace, ScenarioSpec(), [0], [result], explorer)
            is None
        )

    def test_full_scenario_section(self):
        trace = skewed_trace(500, footprint=60, hot_fraction=0.2, seed=3)
        spec = ScenarioSpec(policy="fifo", l2_depth=8, cost_model="energy")
        explorer = _engines.policy_explorer("fifo", trace)
        budgets = [0, explorer.statistics.budget(20.0)]
        results = explorer.explore_many(budgets)
        extras = scenario_extras(trace, spec, budgets, results, explorer)
        assert extras["policy"] == "fifo"
        assert extras["levels"] == 2
        assert extras["l2"]["l2_depth"] == 8
        assert len(extras["l2"]["explorations"]) == len(budgets)
        assert extras["cost"]["model"] == "energy"
        assert len(extras["cost"]["rankings"]) == len(budgets)
