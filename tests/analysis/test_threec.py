"""Unit tests for the 3C miss classification."""

import pytest

from repro.analysis.threec import classify_misses
from repro.core.explorer import AnalyticalCacheExplorer
from repro.trace.synthetic import loop_nest_trace, zipf_trace
from repro.trace.trace import Trace


class TestClassification:
    def test_components_sum_to_totals(self):
        explorer = AnalyticalCacheExplorer(zipf_trace(400, 60, seed=0))
        breakdown = classify_misses(explorer, depth=8, associativity=1)
        assert breakdown.non_cold == breakdown.capacity + breakdown.conflict
        assert breakdown.total == breakdown.compulsory + breakdown.non_cold
        assert breakdown.non_cold == explorer.misses(8, 1)

    def test_compulsory_equals_unique_references(self):
        trace = zipf_trace(300, 50, seed=1)
        explorer = AnalyticalCacheExplorer(trace)
        breakdown = classify_misses(explorer, 4, 2)
        assert breakdown.compulsory == trace.unique_count()

    def test_pure_conflict_example(self):
        # 0 and 4 thrash a depth-4 DM cache, but a 4-line FA cache holds
        # both: every non-cold miss is a conflict miss.
        explorer = AnalyticalCacheExplorer(Trace([0, 4] * 10, address_bits=4))
        breakdown = classify_misses(explorer, depth=4, associativity=1)
        assert breakdown.capacity == 0
        assert breakdown.conflict == 18

    def test_pure_capacity_example(self):
        # Loop over 8 lines in a 4-line FA cache: all capacity misses.
        explorer = AnalyticalCacheExplorer(loop_nest_trace(8, 5))
        breakdown = classify_misses(explorer, depth=4, associativity=1)
        assert breakdown.capacity > 0
        # Depth-4 DM on a sequential loop behaves exactly like FA-LRU
        # here (both miss everything), so conflict is zero.
        assert breakdown.conflict == 0

    def test_negative_conflict_anomaly_is_representable(self):
        """Restricted placement can beat fully associative LRU."""
        # Loop over 5 lines with capacity 4: FA-LRU misses everything;
        # a 4-set DM cache keeps lines 1..3 stable (only 0 and 4 collide).
        trace = loop_nest_trace(5, 10)
        explorer = AnalyticalCacheExplorer(trace)
        breakdown = classify_misses(explorer, depth=4, associativity=1)
        assert breakdown.conflict < 0

    def test_validation(self):
        explorer = AnalyticalCacheExplorer(Trace([0, 1]))
        with pytest.raises(ValueError):
            classify_misses(explorer, 3, 1)
        with pytest.raises(ValueError):
            classify_misses(explorer, 2, 0)
