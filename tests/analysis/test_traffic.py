"""Unit tests for memory-traffic analysis."""

import pytest

from repro.analysis.traffic import compare_write_policies, estimate_traffic
from repro.cache.config import CacheConfig, WritePolicy
from repro.trace.reference import AccessKind
from repro.trace.synthetic import loop_nest_trace
from repro.trace.trace import Trace


def _rw_trace(reads, writes):
    """reads of address 0..n, then writes to the same addresses."""
    addrs = list(range(reads)) + list(range(writes))
    kinds = [AccessKind.READ] * reads + [AccessKind.WRITE] * writes
    return Trace(addrs, kinds=kinds)


class TestEstimateTraffic:
    def test_fill_traffic_counts_all_misses(self):
        trace = loop_nest_trace(8, 3)
        config = CacheConfig(depth=4, associativity=1)
        estimate = estimate_traffic(trace, config)
        from repro.cache.simulator import simulate_trace

        assert estimate.fill_words == simulate_trace(trace, config).misses

    def test_line_size_multiplies_fill_words(self):
        from repro.trace.synthetic import sequential_trace

        trace = sequential_trace(64)  # pure streaming: no reuse
        small = estimate_traffic(trace, CacheConfig(depth=4, associativity=1))
        wide = estimate_traffic(
            trace, CacheConfig(depth=4, associativity=1, line_words=4)
        )
        # Wide lines fetch 4 words per miss but miss 4x less on a pure
        # stream: identical fill traffic (64 words either way).
        assert small.fill_words == wide.fill_words == 64

    def test_writeback_includes_final_flush(self):
        # One write, never evicted: the flush must still count it.
        trace = Trace([0], kinds=[AccessKind.WRITE])
        estimate = estimate_traffic(trace, CacheConfig(depth=2, associativity=1))
        assert estimate.writeback_words == 1

    def test_write_through_counts_every_store(self):
        trace = _rw_trace(0, 10)
        config = CacheConfig(
            depth=4, associativity=1, write_policy=WritePolicy.WRITE_THROUGH
        )
        estimate = estimate_traffic(trace, config)
        assert estimate.writethrough_words == 10
        assert estimate.writeback_words == 0

    def test_untyped_trace_is_read_only(self):
        estimate = estimate_traffic(
            loop_nest_trace(4, 2), CacheConfig(depth=4, associativity=1)
        )
        assert estimate.writeback_words == 0
        assert estimate.writethrough_words == 0

    def test_total_words(self):
        trace = _rw_trace(5, 5)
        estimate = estimate_traffic(trace, CacheConfig(depth=8, associativity=1))
        assert estimate.total_words == (
            estimate.fill_words
            + estimate.writeback_words
            + estimate.writethrough_words
        )


class TestCompareWritePolicies:
    def test_write_back_wins_on_repeated_stores(self):
        # 50 stores to one word: write-through pays 50, write-back pays 1.
        trace = Trace([7] * 50, kinds=[AccessKind.WRITE] * 50)
        estimates = compare_write_policies(trace, depth=4, associativity=1)
        wb = estimates["write-back"]
        wt = estimates["write-through"]
        assert wb.writeback_words == 1
        assert wt.writethrough_words == 50
        assert wb.total_words < wt.total_words

    def test_write_through_can_win_on_scattered_single_stores(self):
        # One store per line with wide lines: write-back flushes a whole
        # line per store, write-through moves one word.
        addrs = [i * 4 for i in range(16)]
        trace = Trace(addrs, kinds=[AccessKind.WRITE] * 16)
        estimates = compare_write_policies(
            trace, depth=2, associativity=1, line_words=4
        )
        wb = estimates["write-back"]
        wt = estimates["write-through"]
        assert wt.writethrough_words < wb.writeback_words

    def test_fill_traffic_identical_across_policies(self):
        trace = _rw_trace(20, 20)
        estimates = compare_write_policies(trace, depth=8, associativity=2)
        assert (
            estimates["write-back"].fill_words
            == estimates["write-through"].fill_words
        )
