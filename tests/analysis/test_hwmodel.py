"""Unit tests for the CACTI-style hardware cost model."""

import pytest

from repro.analysis.hwmodel import estimate_hardware
from repro.cache.config import CacheConfig


def _config(depth=64, assoc=2, line=1):
    return CacheConfig(depth=depth, associativity=assoc, line_words=line)


class TestMonotonicity:
    def test_area_grows_with_every_axis(self):
        base = estimate_hardware(_config()).area_bits
        assert estimate_hardware(_config(depth=128)).area_bits > base
        assert estimate_hardware(_config(assoc=4)).area_bits > base
        assert estimate_hardware(_config(line=4)).area_bits > base

    def test_energy_grows_with_ways_and_line(self):
        base = estimate_hardware(_config()).access_energy
        assert estimate_hardware(_config(assoc=4)).access_energy > base
        assert estimate_hardware(_config(line=4)).access_energy > base

    def test_energy_nearly_flat_in_depth(self):
        """Depth adds rows, not bits-per-access; only tag width shrinks."""
        shallow = estimate_hardware(_config(depth=16)).access_energy
        deep = estimate_hardware(_config(depth=1024)).access_energy
        assert deep <= shallow  # narrower tags
        assert deep > 0.8 * shallow

    def test_access_time_grows_with_depth_and_ways(self):
        base = estimate_hardware(_config()).access_time
        assert estimate_hardware(_config(depth=256)).access_time > base
        assert estimate_hardware(_config(assoc=8)).access_time > base


class TestAbsolutes:
    def test_data_array_dominates_area(self):
        estimate = estimate_hardware(_config(depth=256, assoc=1))
        assert estimate.area_bits >= 256 * 32  # at least the data bits

    def test_tag_width_follows_address_bits(self):
        wide = estimate_hardware(_config(), address_bits=40)
        narrow = estimate_hardware(_config(), address_bits=20)
        assert wide.area_bits > narrow.area_bits

    def test_bad_address_bits(self):
        with pytest.raises(ValueError):
            estimate_hardware(_config(), address_bits=0)


class TestTotalEnergy:
    def test_misses_add_refill_energy(self):
        estimate = estimate_hardware(_config(line=4))
        no_misses = estimate.total_energy(accesses=1000, misses=0)
        with_misses = estimate.total_energy(accesses=1000, misses=10)
        assert with_misses > no_misses
        # Each miss refills line_words=4 words.
        assert with_misses - no_misses == pytest.approx(10 * 4 * 8.0)

    def test_scales_with_accesses(self):
        estimate = estimate_hardware(_config())
        assert estimate.total_energy(2000, 0) == pytest.approx(
            2 * estimate.total_energy(1000, 0)
        )

    def test_negative_inputs_rejected(self):
        estimate = estimate_hardware(_config())
        with pytest.raises(ValueError):
            estimate.total_energy(-1, 0)
        with pytest.raises(ValueError):
            estimate.total_energy(0, -1)
